//! # gathering-patterns
//!
//! A Rust reproduction of *"On Discovery of Gathering Patterns from
//! Trajectories"* (Kai Zheng, Yu Zheng, Nicholas Jing Yuan, Shuo Shang —
//! ICDE 2013).
//!
//! This facade crate re-exports the workspace crates so downstream users can
//! depend on a single package:
//!
//! * [`geo`] — points, MBRs, Hausdorff distance, grid geometry.
//! * [`trajectory`] — moving-object trajectories and the trajectory database.
//! * [`clustering`] — DBSCAN snapshot clustering.
//! * [`index`] — R-tree and grid indexes over snapshot clusters.
//! * [`core`] — crowds, gatherings, TAD/TAD\*, incremental discovery.
//! * [`shard`] — sharded multi-engine ingest with the exact cross-shard
//!   crowd merge.
//! * [`store`] — durable pattern store, engine checkpoints and the
//!   concurrent monitoring service.
//! * [`baselines`] — flock, convoy, swarm and moving-cluster miners.
//! * [`workload`] — synthetic taxi-trajectory workload generator.
//!
//! ## Quickstart
//!
//! ```
//! use gathering_patterns::prelude::*;
//!
//! // Generate a small synthetic scene with one planted gathering.
//! let scenario = ScenarioConfig::small_demo(42);
//! let dataset = generate_scenario(&scenario);
//!
//! // Configure the discovery pipeline.
//! let config = GatheringConfig::builder()
//!     .clustering(ClusteringParams::new(60.0, 3))
//!     .crowd(CrowdParams::new(3, 3, 120.0))
//!     .gathering(GatheringParams::new(3, 2))
//!     .build()
//!     .expect("valid parameters");
//!
//! let pipeline = GatheringPipeline::new(config);
//! let result = pipeline.discover(&dataset.database);
//! println!("found {} gatherings", result.gatherings.len());
//! ```

pub use gpdt_baselines as baselines;
pub use gpdt_clustering as clustering;
pub use gpdt_core as core;
pub use gpdt_geo as geo;
pub use gpdt_index as index;
pub use gpdt_obs as obs;
pub use gpdt_shard as shard;
pub use gpdt_store as store;
pub use gpdt_trajectory as trajectory;
pub use gpdt_workload as workload;

/// Commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use gpdt_clustering::{ClusterDatabase, ClusteringParams, SnapshotCluster};
    pub use gpdt_core::{
        Crowd, CrowdParams, EngineUpdate, Gathering, GatheringConfig, GatheringEngine,
        GatheringParams, GatheringPipeline, RangeSearchStrategy, TadVariant,
    };
    pub use gpdt_geo::{Mbr, Point};
    pub use gpdt_obs::{ServeContext, TelemetryServer};
    pub use gpdt_shard::{GridPartitioner, Partitioner, ShardedEngine};
    pub use gpdt_store::{
        EngineCheckpoint, MonitorService, PatternRecord, PatternStore, StoredGathering,
    };
    pub use gpdt_trajectory::{ObjectId, Timestamp, Trajectory, TrajectoryDatabase};
    pub use gpdt_workload::{generate_scenario, ScenarioConfig, Weather};
}
