//! Traffic-jam detection: the paper's motivating application.
//!
//! Generates a rush-hour scenario with planted traffic jams and venue
//! hotspots, runs the gathering pipeline, and checks the discovered
//! gatherings against the planted ground truth: jams (durable, committed
//! membership) should be recovered as gatherings, while venue drop-off spots
//! (high churn) should at best appear as crowds.
//!
//! Run with `cargo run --example traffic_jam_detection --release`.

use gathering_patterns::prelude::*;
use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};
use gpdt_workload::{EventKind, EventRates};

fn main() {
    // A rush-hour slice with aggressive jam rates so the example always has
    // ground truth to compare against.
    let mut config = ScenarioConfig::small_demo(7);
    config.num_taxis = 300;
    config.duration = 180;
    config.area_size = 12_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [6.0, 6.0, 6.0],
        venues_per_hour: [4.0, 4.0, 4.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    let scenario = generate_scenario(&config);

    let jams = scenario.events_of_kind(EventKind::TrafficJam);
    let venues = scenario.events_of_kind(EventKind::Venue);
    println!(
        "planted ground truth: {} traffic jams, {} venue hotspots",
        jams.len(),
        venues.len()
    );

    let pipeline_config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(12, 15, 300.0))
        .gathering(GatheringParams::new(10, 12))
        .build()
        .expect("consistent parameters");
    let result = GatheringPipeline::new(pipeline_config).discover(&scenario.database);
    println!(
        "discovered {} closed crowds and {} closed gatherings",
        result.crowd_count(),
        result.gathering_count()
    );

    // Match each planted jam against the discovered gatherings by time
    // overlap and participator membership.
    let mut recovered = 0usize;
    for jam in &jams {
        let hit = result.gatherings.iter().find(|g| {
            let overlap = g.crowd().interval().intersect(&jam.interval).is_some();
            let committed = jam
                .core_members
                .iter()
                .filter(|m| g.participators().contains(m))
                .count();
            overlap && committed >= jam.core_members.len() / 2
        });
        match hit {
            Some(g) => {
                recovered += 1;
                println!(
                    "  jam at ({:7.0},{:7.0}) minutes {:>3}..{:<3} -> gathering with {} participators, minutes {}..{}",
                    jam.center.x,
                    jam.center.y,
                    jam.interval.start,
                    jam.interval.end,
                    g.participators().len(),
                    g.crowd().interval().start,
                    g.crowd().interval().end,
                );
            }
            None => println!(
                "  jam at ({:7.0},{:7.0}) minutes {:>3}..{:<3} -> NOT recovered",
                jam.center.x, jam.center.y, jam.interval.start, jam.interval.end
            ),
        }
    }
    println!(
        "recovered {recovered}/{} planted jams as gatherings",
        jams.len()
    );

    // Venue hotspots should not produce gatherings: their members churn too
    // fast to become participators.  A false positive is a gathering whose
    // crowd passes through the venue site while it is active and whose
    // participators are drawn from the venue's churners.
    let venue_gatherings = venues
        .iter()
        .filter(|v| {
            result.gatherings.iter().any(|g| {
                let overlaps = g.crowd().interval().intersect(&v.interval).is_some();
                let at_venue = g.crowd().cluster_ids().iter().any(|&id| {
                    result
                        .clusters
                        .cluster(id)
                        .is_some_and(|c| c.centroid().distance(&v.center) < 500.0)
                });
                overlaps
                    && at_venue
                    && v.transient_members
                        .iter()
                        .filter(|m| g.participators().contains(m))
                        .count()
                        >= 5
            })
        })
        .count();
    println!(
        "venue hotspots wrongly reported as gatherings: {venue_gatherings}/{}",
        venues.len()
    );
}
