//! Incremental monitoring: handle trajectory data that arrives in batches.
//!
//! A monitoring deployment receives new GPS data periodically (the paper
//! appends a day at a time).  Re-running discovery from scratch on the whole
//! history gets slower with every batch; the incremental algorithms of
//! §III-C only look at the cluster sequences that can still change.
//!
//! This example feeds a three-hour scenario to the pipeline in 30-minute
//! batches and prints what each update adds, then cross-checks the final
//! state against a from-scratch run.
//!
//! Run with `cargo run --example incremental_monitoring --release`.

use gathering_patterns::prelude::*;
use gpdt_clustering::ClusterDatabase;
use gpdt_core::incremental::IncrementalDiscovery;
use gpdt_core::{ClusteringParams, CrowdDiscovery, CrowdParams, GatheringParams};
use gpdt_trajectory::TimeInterval;
use gpdt_workload::EventRates;

fn main() {
    let mut config = ScenarioConfig::small_demo(11);
    config.num_taxis = 250;
    config.duration = 180;
    config.area_size = 10_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [5.0, 5.0, 5.0],
        venues_per_hour: [3.0, 3.0, 3.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    let scenario = generate_scenario(&config);

    let clustering = ClusteringParams::new(200.0, 5);
    let crowd_params = CrowdParams::new(12, 15, 300.0);
    let gathering_params = GatheringParams::new(10, 12);

    let mut monitor = IncrementalDiscovery::new(
        crowd_params,
        gathering_params,
        RangeSearchStrategy::Grid,
        TadVariant::TadStar,
    );

    let batch_minutes = 30u32;
    for batch_idx in 0..(config.duration / batch_minutes) {
        let interval = TimeInterval::new(
            batch_idx * batch_minutes,
            (batch_idx + 1) * batch_minutes - 1,
        );
        // In a real deployment this batch would come from the GPS feed; here
        // we cluster the corresponding slice of the synthetic database.
        let batch = ClusterDatabase::build_interval(&scenario.database, &clustering, interval);
        let update = monitor.ingest(batch);
        println!(
            "batch {:>2} (minutes {:>3}..{:<3}): {} crowds finalised ({} extended from the frontier), {} gatherings",
            batch_idx + 1,
            interval.start,
            interval.end,
            update.new_closed_crowds,
            update.extended_from_frontier,
            update.new_gatherings,
        );
    }

    let final_crowds = monitor.closed_crowds();
    let final_gatherings = monitor.gatherings();
    println!(
        "\nafter all batches: {} closed crowds, {} closed gatherings",
        final_crowds.len(),
        final_gatherings.len()
    );

    // Cross-check against a from-scratch batch run over the full history.
    let full_clusters = ClusterDatabase::build(&scenario.database, &clustering);
    let batch_run =
        CrowdDiscovery::new(crowd_params, RangeSearchStrategy::Grid).run(&full_clusters);
    println!(
        "from-scratch run finds {} closed crowds — incremental and batch results {}",
        batch_run.closed_crowds.len(),
        if batch_run.closed_crowds.len() == final_crowds.len() {
            "agree"
        } else {
            "DISAGREE (this would be a bug)"
        }
    );
}
