//! Incremental monitoring: handle trajectory data that arrives in batches.
//!
//! A monitoring deployment receives new GPS data periodically (the paper
//! appends a day at a time).  Re-running discovery from scratch on the whole
//! history gets slower with every batch; the streaming [`GatheringEngine`]
//! clusters only the newly arrived snapshots and resumes crowd discovery
//! from its saved frontier (Lemma 4), updating gatherings with the Theorem 2
//! shortcut.
//!
//! This example replays a three-hour scenario into the engine in 30-minute
//! slices and prints what each update adds, then cross-checks the final
//! state against a from-scratch batch run — which is itself just the
//! one-big-batch special case of the same engine.
//!
//! Run with `cargo run --example incremental_monitoring --release`.

use gathering_patterns::prelude::*;
use gpdt_workload::EventRates;

fn main() {
    let mut config = ScenarioConfig::small_demo(11);
    config.num_taxis = 250;
    config.duration = 180;
    config.area_size = 10_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [5.0, 5.0, 5.0],
        venues_per_hour: [3.0, 3.0, 3.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    let scenario = generate_scenario(&config);

    let discovery_config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(12, 15, 300.0))
        .gathering(GatheringParams::new(10, 12))
        .build()
        .expect("valid parameters");

    let mut monitor = GatheringEngine::new(discovery_config);

    let batch_minutes = 30u32;
    for batch_idx in 0..(config.duration / batch_minutes) {
        let through = (batch_idx + 1) * batch_minutes - 1;
        // In a real deployment the new GPS points would be appended to the
        // database between calls; here the history already exists and the
        // engine replays it slice by slice, clustering only the new ticks.
        let update = monitor.ingest_trajectories_until(&scenario.database, through);
        println!(
            "batch {:>2} (minutes {:>3}..{:<3}): {} crowds finalised ({} extended from the frontier), {} gatherings",
            batch_idx + 1,
            batch_idx * batch_minutes,
            through,
            update.new_closed_crowds,
            update.extended_from_frontier,
            update.new_gatherings,
        );
    }

    let final_crowds = monitor.closed_crowds();
    let final_gatherings = monitor.gatherings();
    println!(
        "\nafter all batches: {} closed crowds, {} closed gatherings",
        final_crowds.len(),
        final_gatherings.len()
    );

    // Cross-check against a from-scratch batch run over the full history.
    let batch_run = GatheringPipeline::new(discovery_config).discover(&scenario.database);
    println!(
        "from-scratch run finds {} closed crowds — incremental and batch results {}",
        batch_run.crowds.len(),
        if batch_run.crowds == final_crowds && batch_run.gatherings == final_gatherings {
            "agree"
        } else {
            "DISAGREE (this would be a bug)"
        }
    );
}
