//! Pattern comparison: gathering vs convoy vs swarm vs moving cluster.
//!
//! Reproduces the intuition of the paper's Figure 1 on three hand-crafted
//! scenes:
//!
//! 1. A *stable event with churn* (a celebration / jam): members come and go
//!    but a committed core stays — a gathering, but not a convoy or swarm of
//!    the full attendance.
//! 2. A *travelling platoon*: objects move together across the city — a
//!    convoy and swarm, and (because it moves smoothly) also a crowd, but its
//!    members never linger anywhere.
//! 3. A *busy intersection*: different vehicles pass through a dense spot at
//!    every minute — a dense area, but neither a gathering nor a convoy.
//!
//! Run with `cargo run --example pattern_comparison --release`.

use gathering_patterns::prelude::*;
use gpdt_baselines::{
    discover_closed_swarms, discover_convoys, discover_moving_clusters, ConvoyParams,
    MovingClusterParams, SwarmParams,
};
use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};
use gpdt_trajectory::Trajectory;

/// Scene 1: an event at a fixed venue.  Ten core attendees stay for the whole
/// 30 minutes; a rotating cast of visitors stays 3 minutes each.
fn stable_event_scene() -> TrajectoryDatabase {
    let mut trajectories = Vec::new();
    let venue = (5_000.0, 5_000.0);
    for i in 0..10u32 {
        let (dx, dy) = ((i % 5) as f64 * 20.0, (i / 5) as f64 * 20.0);
        trajectories.push(Trajectory::from_points(
            ObjectId::new(i),
            (0..30u32)
                .map(|t| (t, (venue.0 + dx, venue.1 + dy + (t % 3) as f64)))
                .collect::<Vec<_>>(),
        ));
    }
    // Visitors: each present for 3 minutes, then far away.
    for v in 0..9u32 {
        let id = 100 + v;
        let start = v * 3;
        trajectories.push(Trajectory::from_points(
            ObjectId::new(id),
            (0..30u32)
                .map(|t| {
                    if t >= start && t < start + 3 {
                        (t, (venue.0 + 60.0, venue.1 + v as f64 * 10.0))
                    } else {
                        (t, (40_000.0 + id as f64 * 1_000.0, 40_000.0))
                    }
                })
                .collect::<Vec<_>>(),
        ));
    }
    TrajectoryDatabase::from_trajectories(trajectories)
}

/// Scene 2: a platoon of 12 vehicles crossing the city together.
fn platoon_scene() -> TrajectoryDatabase {
    let mut trajectories = Vec::new();
    for i in 0..12u32 {
        let (dx, dy) = ((i % 4) as f64 * 25.0, (i / 4) as f64 * 25.0);
        trajectories.push(Trajectory::from_points(
            ObjectId::new(i),
            (0..30u32)
                .map(|t| (t, (1_000.0 + t as f64 * 250.0 + dx, 2_000.0 + dy)))
                .collect::<Vec<_>>(),
        ));
    }
    TrajectoryDatabase::from_trajectories(trajectories)
}

/// Scene 3: a busy intersection — every minute a different set of vehicles
/// occupies it.
fn intersection_scene() -> TrajectoryDatabase {
    let spot = (3_000.0, 3_000.0);
    let mut trajectories = Vec::new();
    for wave in 0..30u32 {
        for j in 0..12u32 {
            let id = 1_000 + wave * 12 + j;
            trajectories.push(Trajectory::from_points(
                ObjectId::new(id),
                (0..30u32)
                    .map(|t| {
                        if t == wave {
                            (t, (spot.0 + j as f64 * 15.0, spot.1))
                        } else {
                            (t, (80_000.0 + id as f64 * 500.0, 80_000.0))
                        }
                    })
                    .collect::<Vec<_>>(),
            ));
        }
    }
    TrajectoryDatabase::from_trajectories(trajectories)
}

fn analyse(name: &str, db: &TrajectoryDatabase) {
    let clustering = ClusteringParams::new(200.0, 5);
    let config = GatheringConfig::builder()
        .clustering(clustering)
        .crowd(CrowdParams::new(8, 10, 300.0))
        .gathering(GatheringParams::new(6, 8))
        .build()
        .expect("consistent parameters");
    let result = GatheringPipeline::new(config).discover(db);

    let convoys = discover_convoys(db, &ConvoyParams::new(8, 10, clustering));
    let swarms = discover_closed_swarms(db, &SwarmParams::new(8, 10, clustering));
    let moving = discover_moving_clusters(db, &MovingClusterParams::new(0.6, 10, clustering));

    println!(
        "{name:<22} crowds: {:>2}  gatherings: {:>2}  convoys: {:>2}  swarms: {:>2}  moving clusters: {:>2}",
        result.crowd_count(),
        result.gathering_count(),
        convoys.len(),
        swarms.len(),
        moving.len()
    );
}

fn main() {
    println!("pattern counts per scene (thresholds: 8 objects, ~10 minutes)\n");
    analyse("stable event + churn", &stable_event_scene());
    analyse("travelling platoon", &platoon_scene());
    analyse("busy intersection", &intersection_scene());
    println!(
        "\nExpected: the stable event is a gathering (committed core) even though its full \
         attendance is never a convoy/swarm; the platoon is a convoy/swarm/moving cluster; the \
         intersection produces at most transient density but no gathering."
    );
}
