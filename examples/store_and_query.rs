//! Durable monitoring end to end: stream → checkpoint → crash → restore →
//! query.
//!
//! A production monitor cannot afford to lose its discovery state: the
//! Lemma 4 frontier represents hours of streamed data, and analysts ask
//! questions ("what gathered near the stadium last night?") long after
//! discovery moved on.  This example walks the full durability story of the
//! `gpdt-store` layer:
//!
//! 1. the first half of a day is streamed through a [`MonitorService`],
//!    which persists every finalized crowd into a [`PatternStore`] while
//!    serving queries, and ends with an engine checkpoint written to disk;
//! 2. the process "crashes" (engine dropped, nothing but the files remain);
//! 3. a fresh engine is restored from the checkpoint file, reopens the same
//!    store, and streams the second half;
//! 4. the store answers region × time-window, per-object and top-k queries —
//!    and the whole interrupted run is verified against an uninterrupted
//!    reference engine, exiting non-zero on any mismatch (CI runs this).
//!
//! Run with `cargo run --example store_and_query --release`.

use gathering_patterns::prelude::*;
use gpdt_core::GatheringEngine;
use gpdt_trajectory::TimeInterval;
use gpdt_workload::EventRates;
use std::io::Write;

/// One-shot GET against the example's own telemetry endpoint; returns the
/// response body.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to own telemetry port");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").as_bytes())
        .expect("send scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response)
}

/// The `"status"` value of a `/health` JSON body.
fn health_status(body: &str) -> &str {
    body.split_once("\"status\":\"")
        .and_then(|(_, rest)| rest.split('"').next())
        .unwrap_or("unparsable")
}

fn main() {
    // A crash in the demo should leave the flight-recorder trail on disk.
    gpdt_obs::install_panic_hook();
    // The live telemetry plane, self-scraped: the demo binds its own
    // /metrics + /health + /flightrec endpoint on a loopback port and asks
    // it how the run is doing — once mid-stream, once after the crash
    // recovery.  (A real deployment sets `GPDT_METRICS_ADDR` and points
    // Prometheus at it; the self-scrape keeps the demo dependency-free.)
    let telemetry = TelemetryServer::bind("127.0.0.1:0", ServeContext::global())
        .expect("bind the telemetry endpoint on a loopback port");
    let mut config = ScenarioConfig::small_demo(23);
    config.num_taxis = 250;
    config.duration = 120;
    config.area_size = 10_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [5.0, 5.0, 5.0],
        venues_per_hour: [3.0, 3.0, 3.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    let scenario = generate_scenario(&config);

    let discovery_config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(12, 15, 300.0))
        .gathering(GatheringParams::new(10, 12))
        .build()
        .expect("valid parameters");

    // `GPDT_SCRATCH_DIR` overrides where the throwaway store/checkpoint
    // land, consistently with the bench binaries (see `gpdt_bench::env`).
    let base = gpdt_bench::env::scratch_dir("store-example");
    std::fs::create_dir_all(&base).expect("create example directory");
    let store_dir = base.join("patterns");
    let checkpoint_path = base.join("engine.ckpt");

    // ---- Phase 1: monitor the first half of the day, then checkpoint. ----
    let half = config.duration / 2;
    let store = PatternStore::open(&store_dir).expect("open fresh store");
    let engine = GatheringEngine::new(discovery_config);
    let outcome = MonitorService::run(engine, store, |handle| {
        for t in 0..half {
            let batch = ClusterDatabase::build_interval(
                &scenario.database,
                &discovery_config.clustering,
                TimeInterval::new(t, t),
            );
            handle.ingest(batch);
        }
        // A consistent (checkpoint, store) pair: the service flushes and
        // fsyncs the store before serialising the engine.
        handle.checkpoint().expect("checkpoint the engine")
    });
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    std::fs::File::create(&checkpoint_path)
        .and_then(|mut f| f.write_all(&outcome.value))
        .expect("write checkpoint file");
    println!(
        "phase 1: streamed minutes 0..{half}, stored {} finalized crowds, checkpoint = {} bytes",
        outcome.store.len(),
        outcome.value.len()
    );
    // Ask the telemetry plane how the first half went, the way an external
    // monitor would — over HTTP, before the crash.
    let health = scrape(telemetry.local_addr(), "/health");
    println!(
        "         self-scrape http://{}/health → status \"{}\"",
        telemetry.local_addr(),
        health_status(&health)
    );

    // ---- Phase 2: crash. Drop every in-memory structure. ----
    drop(outcome);
    println!(
        "phase 2: process \"crashed\" — only {} remains",
        base.display()
    );

    // ---- Phase 3: restore from the files and stream the rest. ----
    let bytes = std::fs::read(&checkpoint_path).expect("read checkpoint file");
    let restored = gpdt_store::restore_from_slice(&bytes).expect("restore engine");
    println!(
        "phase 3: engine restored at t={:?}, resuming the stream",
        restored.time_domain().map(|d| d.end)
    );
    let store = PatternStore::open(&store_dir).expect("reopen store");
    assert_eq!(store.len(), restored.finalized_records().len());
    let outcome = MonitorService::run(restored, store, |handle| {
        for t in half..config.duration {
            let batch = ClusterDatabase::build_interval(
                &scenario.database,
                &discovery_config.clustering,
                TimeInterval::new(t, t),
            );
            handle.ingest(batch);
        }
        handle.flush();
    });
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    let engine = outcome.engine;
    let mut store = outcome.store;
    // A clean *final* shutdown also archives the still-open frontier crowds
    // that are already long enough to count as closed.  This makes the store
    // a finished archive: it now holds records the engine never finalized,
    // so it must not be handed back to `MonitorService::run` for resumption
    // (the service detects this and refuses to append).  To keep a stream
    // resumable instead, skip this step — the frontier lives in the
    // checkpoint.
    store
        .archive_closed_frontier(&engine)
        .expect("archive frontier records");
    store.sync().expect("fsync the store");
    println!(
        "         streamed minutes {half}..{}, store now holds {} records in {} segment(s)",
        config.duration,
        store.len(),
        store.segment_count()
    );
    // The endpoint survived the "crash" (only the engine was dropped, the
    // process lived) and now reports the recovered run.
    let health = scrape(telemetry.local_addr(), "/health");
    let status = health_status(&health);
    println!("         self-scrape after recovery → status \"{status}\"");
    assert!(
        status == "up" || !gpdt_obs::enabled(),
        "a recovered, non-degraded run must report up: {health}"
    );

    // ---- Phase 4: query the durable history. ----
    // Aim a region × time window at the densest stored gathering — the
    // "what happened near the stadium last night?" question an analyst asks.
    let focus = store
        .top_k_gatherings(1)
        .first()
        .map(|hit| hit.gathering.clone())
        .expect("at least one stored gathering");
    let region = Mbr::new(
        focus.mbr.min_x - 200.0,
        focus.mbr.min_y - 200.0,
        focus.mbr.max_x + 200.0,
        focus.mbr.max_y + 200.0,
    );
    let window = TimeInterval::new(
        focus.interval.start.saturating_sub(10),
        focus.interval.end + 10,
    );
    let hits = store.query_gatherings(&region, window);
    println!(
        "\nphase 4: {} gathering(s) active in a {:.0} m × {:.0} m region during minutes {}..{}",
        hits.len(),
        region.max_x - region.min_x,
        region.max_y - region.min_y,
        window.start,
        window.end
    );
    assert!(
        !hits.is_empty(),
        "the focused query must find its gathering"
    );
    for hit in hits.iter().take(3) {
        println!(
            "  record {:>3}: minutes {:>3}..{:<3} with {} participators",
            hit.record,
            hit.gathering.interval.start,
            hit.gathering.interval.end,
            hit.gathering.participators.len()
        );
    }
    let top = store.top_k_gatherings(3);
    println!("top {} gatherings by participator count:", top.len());
    for hit in &top {
        println!(
            "  record {:>3}: {} participators over minutes {}..{}",
            hit.record,
            hit.gathering.participators.len(),
            hit.gathering.interval.start,
            hit.gathering.interval.end
        );
    }
    if let Some(object) = top
        .first()
        .and_then(|hit| hit.gathering.participators.first())
        .copied()
    {
        let history = store.object_history(object);
        println!(
            "object {object} participated in {} stored gathering(s)",
            history.len()
        );
        assert!(!history.is_empty());
    }

    // ---- Verification: the interrupted run equals an uninterrupted one. ----
    let mut reference = GatheringEngine::new(discovery_config);
    reference.ingest_trajectories(&scenario.database);
    let ok = engine.closed_crowds() == reference.closed_crowds()
        && engine.gatherings() == reference.gatherings();
    println!(
        "\ncheckpoint → crash → restore produced {} the uninterrupted run",
        if ok {
            "exactly the output of"
        } else {
            "DIFFERENT output from (this would be a bug)"
        }
    );
    // ---- What the run recorded about itself (GPDT_OBS=off silences). ----
    if gpdt_obs::enabled() {
        let snap = gpdt_obs::registry().snapshot();
        println!("\nobservability — counters:");
        for (name, value) in &snap.counters {
            println!("  {name:<28} {value}");
        }
        println!("observability — stage latencies (count / mean / p95, ns):");
        for (name, h) in &snap.histograms {
            println!(
                "  {name:<28} {:>8} / {:>9} / {:>9}",
                h.count,
                h.mean(),
                h.quantile(0.95)
            );
        }
        let flight = gpdt_obs::flight();
        let events = flight.events();
        println!(
            "flight recorder — {} event(s) recorded, last {}:",
            flight.recorded(),
            events.len().min(5)
        );
        for e in events.iter().rev().take(5).rev() {
            let tick = e.tick.map_or_else(|| "-".into(), |t| t.to_string());
            println!("  #{:<4} t={tick:<5} {:<24} {}", e.seq, e.kind, e.detail);
        }
    }

    std::fs::remove_dir_all(&base).expect("clean up example directory");
    assert!(ok, "restored discovery output diverged");
}
