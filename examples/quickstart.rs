//! Quickstart: generate a small synthetic scene and discover its gathering
//! patterns.
//!
//! Run with `cargo run --example quickstart --release`.

use gathering_patterns::prelude::*;
use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};

fn main() {
    // 1. A small synthetic scene: ~60 taxis over one hour of a morning peak,
    //    with traffic jams, venue drop-offs and convoy flows planted by the
    //    generator.
    let scenario = generate_scenario(&ScenarioConfig::small_demo(42));
    println!(
        "generated {} taxis x {} minutes ({} samples), {} planted events",
        scenario.database.len(),
        scenario.config.duration,
        scenario.database.total_samples(),
        scenario.events.len()
    );

    // 2. Configure the discovery pipeline.  The thresholds are scaled-down
    //    versions of the paper's defaults, appropriate for the small fleet.
    let config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(10, 15, 300.0))
        .gathering(GatheringParams::new(8, 10))
        .build()
        .expect("consistent parameters");

    // 3. Run snapshot clustering, closed-crowd discovery and closed-gathering
    //    detection in one call.
    let result = GatheringPipeline::new(config).discover(&scenario.database);

    println!(
        "snapshot clusters: {}, closed crowds: {}, closed gatherings: {}",
        result.clusters.total_clusters(),
        result.crowd_count(),
        result.gathering_count()
    );

    // 4. Inspect the gatherings.
    for (i, gathering) in result.gatherings.iter().enumerate() {
        let interval = gathering.crowd().interval();
        println!(
            "gathering #{i}: minutes {}..={} ({} min), {} participators",
            interval.start,
            interval.end,
            gathering.lifetime(),
            gathering.participators().len(),
        );
    }
    if result.gatherings.is_empty() {
        println!("no gathering found at these thresholds — try lowering mp/kp");
    }
}
