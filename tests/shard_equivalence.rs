//! Randomized sharding-equivalence suite: for every tested shard count,
//! partitioner and range-search strategy, the `ShardedEngine`'s canonical
//! output (closed crowds *and* closed gatherings) must be identical to a
//! single `GatheringEngine` over the same stream — the sharding analogue of
//! the batch-slicing independence bar set by `streaming_equivalence.rs`.
//!
//! The workloads are built to stress the merge: groups of objects drift
//! across grid-cell borders, split, approach each other and churn members,
//! so crowds regularly straddle shard boundaries, seed spuriously on the
//! far side and branch through cross-shard edges.

use gpdt_core::{
    ClusteringParams, CrowdParams, GatheringConfig, GatheringEngine, GatheringParams,
    RangeSearchStrategy, RetentionPolicy, TadVariant,
};
use gpdt_shard::{GridPartitioner, Partitioner, ShardedEngine};
use gpdt_trajectory::{ObjectId, Timestamp, Trajectory, TrajectoryDatabase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(45.0, 3))
        .crowd(CrowdParams::new(3, 3, 110.0))
        .gathering(GatheringParams::new(3, 3))
        .build()
        .unwrap()
}

/// Groups doing a correlated random walk: most steps stay within `δ` so the
/// group's cluster chain survives, occasional teleports break it, member
/// churn makes some clusters drop below `mc`/`mp`, and the walk freely
/// wanders across the 200-unit grid cells used by the spatial partitioner.
fn random_scenario(rng: &mut StdRng, groups: usize, ticks: u32) -> TrajectoryDatabase {
    let mut trajectories: Vec<(ObjectId, Vec<(Timestamp, (f64, f64))>)> = Vec::new();
    let mut next_id = 0u32;
    for _ in 0..groups {
        let members = rng.gen_range(4usize..7);
        let ids: Vec<ObjectId> = (0..members)
            .map(|_| {
                let id = ObjectId::new(next_id);
                next_id += 1;
                id
            })
            .collect();
        let mut cx = rng.gen_range(-500.0..500.0);
        let mut cy = rng.gen_range(-500.0..500.0);
        let mut group: Vec<(ObjectId, Vec<(Timestamp, (f64, f64))>)> =
            ids.iter().map(|&id| (id, Vec::new())).collect();
        for t in 0..ticks {
            if rng.gen_range(0u32..12) == 0 {
                // Teleport: breaks the crowd chain.
                cx = rng.gen_range(-500.0..500.0);
                cy = rng.gen_range(-500.0..500.0);
            } else {
                // Drift, frequently crossing the 200-unit cell borders.
                cx += rng.gen_range(-70.0..70.0);
                cy += rng.gen_range(-70.0..70.0);
            }
            for (k, (_, points)) in group.iter_mut().enumerate() {
                // Member churn: an object occasionally wanders off for a
                // tick, shrinking the cluster (or dissolving it).
                if rng.gen_range(0u32..10) == 0 {
                    points.push((t, (cx + 5_000.0 + k as f64 * 900.0, cy - 7_000.0)));
                } else {
                    let jitter_x = rng.gen_range(-12.0..12.0);
                    let jitter_y = rng.gen_range(-12.0..12.0);
                    points.push((t, (cx + k as f64 * 9.0 + jitter_x, cy + jitter_y)));
                }
            }
        }
        trajectories.extend(group);
    }
    TrajectoryDatabase::from_trajectories(
        trajectories
            .into_iter()
            .map(|(id, points)| Trajectory::from_points(id, points)),
    )
}

/// Feeds the database in random slices.
fn ingest_sliced_single(engine: &mut GatheringEngine, db: &TrajectoryDatabase, rng: &mut StdRng) {
    let domain = db.time_domain().unwrap();
    let mut at = domain.start;
    while at <= domain.end {
        let end = (at + rng.gen_range(1u32..6)).min(domain.end);
        engine.ingest_trajectories_until(db, end);
        at = end + 1;
    }
}

fn ingest_sliced_sharded(engine: &mut ShardedEngine, db: &TrajectoryDatabase, rng: &mut StdRng) {
    let domain = db.time_domain().unwrap();
    let mut at = domain.start;
    while at <= domain.end {
        let end = (at + rng.gen_range(1u32..6)).min(domain.end);
        engine.ingest_trajectories_until(db, end);
        at = end + 1;
    }
}

#[test]
fn sharded_output_is_canonical_for_all_shard_counts_partitioners_strategies() {
    let mut rng = StdRng::seed_from_u64(0x5AAD_0001);
    let mut crowds_seen = 0usize;
    let mut cross_edges_seen = 0u64;
    for trial in 0..5 {
        let ticks = rng.gen_range(22u32..34);
        let db = random_scenario(&mut rng, 4, ticks);
        let variant = if trial % 2 == 0 {
            TadVariant::TadStar
        } else {
            TadVariant::Tad
        };

        let mut single = GatheringEngine::new(config()).with_variant(variant);
        single.ingest_trajectories(&db);
        let reference = (single.closed_crowds(), single.gatherings());
        crowds_seen += reference.0.len();

        let partitioners = [
            Partitioner::Grid(GridPartitioner::new(200.0)),
            Partitioner::HashByObject,
        ];
        for strategy in RangeSearchStrategy::ALL {
            for partitioner in partitioners {
                for shards in SHARD_COUNTS {
                    let mut sharded = ShardedEngine::new(config(), shards, partitioner)
                        .with_strategy(strategy)
                        .with_variant(variant);
                    ingest_sliced_sharded(&mut sharded, &db, &mut rng);
                    assert_eq!(
                        sharded.closed_crowds(),
                        reference.0,
                        "crowds diverged: trial {trial}, {shards} shards, {partitioner}, {strategy}"
                    );
                    assert_eq!(
                        sharded.gatherings(),
                        reference.1,
                        "gatherings diverged: trial {trial}, {shards} shards, {partitioner}, {strategy}"
                    );
                    cross_edges_seen += sharded.stats().cross_edges;
                }
            }
        }
    }
    // The scenarios must actually exercise the interesting machinery.
    assert!(crowds_seen > 10, "workload produced too few crowds");
    assert!(
        cross_edges_seen > 50,
        "workload never crossed shard borders"
    );
}

#[test]
fn sharded_slicing_matches_single_engine_slicing() {
    // Both sides sliced randomly (differently): output must still agree.
    let mut rng = StdRng::seed_from_u64(0x5AAD_0002);
    for _ in 0..3 {
        let db = random_scenario(&mut rng, 3, 26);
        let mut single = GatheringEngine::new(config());
        ingest_sliced_single(&mut single, &db, &mut rng);

        let mut sharded =
            ShardedEngine::new(config(), 4, Partitioner::Grid(GridPartitioner::new(200.0)));
        ingest_sliced_sharded(&mut sharded, &db, &mut rng);
        assert_eq!(sharded.closed_crowds(), single.closed_crowds());
        assert_eq!(sharded.gatherings(), single.gatherings());
    }
}

#[test]
fn bounded_retention_never_changes_sharded_output() {
    let mut rng = StdRng::seed_from_u64(0x5AAD_0003);
    for _ in 0..2 {
        let db = random_scenario(&mut rng, 3, 30);
        let mut single = GatheringEngine::new(config());
        single.ingest_trajectories(&db);

        for partitioner in [
            Partitioner::Grid(GridPartitioner::new(200.0)),
            Partitioner::HashByObject,
        ] {
            let mut bounded = ShardedEngine::new(config(), 4, partitioner)
                .with_retention(RetentionPolicy::Bounded);
            ingest_sliced_sharded(&mut bounded, &db, &mut rng);
            assert_eq!(bounded.closed_crowds(), single.closed_crowds());
            assert_eq!(bounded.gatherings(), single.gatherings());
        }
    }
}

#[test]
fn sharded_crash_and_restore_reproduces_the_uninterrupted_run() {
    // Crash at a random tick boundary, restore from the checkpoint bytes,
    // feed the remainder: the restored run must be indistinguishable from
    // the uninterrupted sharded run (and hence from the single engine).
    use gpdt_store::{restore_sharded_from_slice, sharded_checkpoint_to_vec};

    let mut rng = StdRng::seed_from_u64(0x5AAD_0005);
    for trial in 0..3 {
        let ticks = rng.gen_range(20u32..30);
        let db = random_scenario(&mut rng, 3, ticks);
        let partitioner = if trial == 2 {
            Partitioner::HashByObject
        } else {
            Partitioner::Grid(GridPartitioner::new(200.0))
        };
        let crash_at = rng.gen_range(1u32..ticks - 1);

        let mut engine = ShardedEngine::new(config(), 4, partitioner);
        engine.ingest_trajectories_until(&db, crash_at);
        let bytes = sharded_checkpoint_to_vec(&engine);
        drop(engine); // the "crash"

        let mut restored = restore_sharded_from_slice(&bytes).expect("checkpoint restores");
        restored.ingest_trajectories(&db);

        let mut uninterrupted = ShardedEngine::new(config(), 4, partitioner);
        uninterrupted.ingest_trajectories_until(&db, crash_at);
        uninterrupted.ingest_trajectories(&db);

        assert_eq!(
            restored.closed_crowds(),
            uninterrupted.closed_crowds(),
            "trial {trial}, crash at t={crash_at}"
        );
        assert_eq!(restored.gatherings(), uninterrupted.gatherings());
        assert_eq!(
            restored.finalized_records().len(),
            uninterrupted.finalized_records().len()
        );

        let mut single = GatheringEngine::new(config());
        single.ingest_trajectories(&db);
        assert_eq!(restored.closed_crowds(), single.closed_crowds());
        assert_eq!(restored.gatherings(), single.gatherings());
    }
}

#[test]
fn brute_force_variant_and_strategy_agree_on_a_small_stream() {
    // The quadratic baseline is kept out of the big loop; one compact stream
    // checks the remaining variant axis under sharding.
    let mut rng = StdRng::seed_from_u64(0x5AAD_0004);
    let db = random_scenario(&mut rng, 2, 16);
    let mut single = GatheringEngine::new(config()).with_variant(TadVariant::BruteForce);
    single.ingest_trajectories(&db);

    let mut sharded =
        ShardedEngine::new(config(), 3, Partitioner::Grid(GridPartitioner::new(200.0)))
            .with_strategy(RangeSearchStrategy::BruteForce)
            .with_variant(TadVariant::BruteForce);
    sharded.ingest_trajectories(&db);
    assert_eq!(sharded.closed_crowds(), single.closed_crowds());
    assert_eq!(sharded.gatherings(), single.gatherings());
}
