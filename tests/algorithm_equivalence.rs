//! Cross-algorithm equivalence on realistic data: every range-search
//! strategy must discover the same closed crowds, and every gathering
//! detection variant must report the same closed gatherings.

use gathering_patterns::prelude::*;
use gpdt_core::{
    detect_closed_gatherings, ClusteringParams, CrowdDiscovery, CrowdParams, GatheringParams,
};
use gpdt_workload::EventRates;

fn clustered_scene(
    seed: u64,
) -> (
    gpdt_clustering::ClusterDatabase,
    CrowdParams,
    GatheringParams,
) {
    let mut config = ScenarioConfig::small_demo(seed);
    config.num_taxis = 220;
    config.duration = 120;
    config.area_size = 9_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [8.0, 8.0, 8.0],
        venues_per_hour: [5.0, 5.0, 5.0],
        convoys_per_hour: [3.0, 3.0, 3.0],
    };
    let scenario = generate_scenario(&config);
    let clusters = ClusterDatabase::build(&scenario.database, &ClusteringParams::new(200.0, 5));
    (
        clusters,
        CrowdParams::new(12, 15, 300.0),
        GatheringParams::new(8, 10),
    )
}

#[test]
fn all_range_search_strategies_find_identical_closed_crowds() {
    for seed in [1u64, 2, 3] {
        let (clusters, crowd_params, _) = clustered_scene(seed);
        let mut reference: Option<Vec<Crowd>> = None;
        for strategy in RangeSearchStrategy::ALL {
            let mut crowds = CrowdDiscovery::new(crowd_params, strategy)
                .run(&clusters)
                .closed_crowds;
            crowds.sort_by_key(|c| (c.start_time(), c.end_time(), c.cluster_ids().to_vec()));
            match &reference {
                None => reference = Some(crowds),
                Some(expected) => assert_eq!(
                    &crowds, expected,
                    "strategy {strategy} disagrees on seed {seed}"
                ),
            }
        }
        assert!(
            reference.map(|r| !r.is_empty()).unwrap_or(false),
            "seed {seed} produced no crowds, the comparison is vacuous"
        );
    }
}

#[test]
fn all_detection_variants_find_identical_closed_gatherings() {
    for seed in [4u64, 5] {
        let (clusters, crowd_params, gathering_params) = clustered_scene(seed);
        let crowds = CrowdDiscovery::new(crowd_params, RangeSearchStrategy::Grid)
            .run(&clusters)
            .closed_crowds;
        assert!(!crowds.is_empty());
        let mut any_gathering = false;
        for crowd in &crowds {
            let mut reference: Option<Vec<Gathering>> = None;
            for variant in TadVariant::ALL {
                let gatherings = detect_closed_gatherings(
                    crowd,
                    &clusters,
                    &gathering_params,
                    crowd_params.kc,
                    variant,
                );
                any_gathering |= !gatherings.is_empty();
                match &reference {
                    None => reference = Some(gatherings),
                    Some(expected) => assert_eq!(
                        &gatherings, expected,
                        "variant {variant} disagrees on seed {seed}"
                    ),
                }
            }
        }
        assert!(any_gathering, "seed {seed} produced no gatherings at all");
    }
}
