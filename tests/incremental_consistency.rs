//! Incremental-vs-batch consistency on realistic data: feeding the cluster
//! stream in batches must yield exactly the crowds and gatherings of a
//! from-scratch run, regardless of how the stream is sliced.  Both paths run
//! through the same `GatheringEngine`; this exercises the Lemma 4 resumption
//! and Theorem 2 reuse against the one-big-batch special case.

use gathering_patterns::prelude::*;
use gpdt_clustering::ClusterDatabase as CDB;
use gpdt_core::incremental::IncrementalDiscovery;
use gpdt_trajectory::TimeInterval;
use gpdt_workload::EventRates;

fn scenario(seed: u64, duration: u32) -> gpdt_workload::GeneratedScenario {
    let mut config = ScenarioConfig::small_demo(seed);
    config.num_taxis = 220;
    config.duration = duration;
    config.area_size = 9_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [7.0, 7.0, 7.0],
        venues_per_hour: [4.0, 4.0, 4.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    generate_scenario(&config)
}

#[test]
fn incremental_ingestion_matches_batch_run_for_several_slicings() {
    let duration = 120u32;
    let scenario = scenario(99, duration);
    let clustering = ClusteringParams::new(200.0, 5);
    let crowd_params = CrowdParams::new(12, 15, 300.0);
    let gathering_params = GatheringParams::new(8, 10);

    // Batch reference: the one-big-batch special case of the engine.
    let config = GatheringConfig::builder()
        .clustering(clustering)
        .crowd(crowd_params)
        .gathering(gathering_params)
        .build()
        .unwrap();
    let full = CDB::build(&scenario.database, &clustering);
    let batch_result = GatheringPipeline::new(config).discover_from_clusters(full);
    assert!(!batch_result.crowds.is_empty());

    for batch_minutes in [20u32, 40, 60] {
        let mut incremental = IncrementalDiscovery::new(
            crowd_params,
            gathering_params,
            RangeSearchStrategy::Grid,
            TadVariant::TadStar,
        );
        let mut start = 0u32;
        while start < duration {
            let end = (start + batch_minutes - 1).min(duration - 1);
            let batch = CDB::build_interval(
                &scenario.database,
                &clustering,
                TimeInterval::new(start, end),
            );
            incremental.ingest(batch);
            start = end + 1;
        }
        assert_eq!(
            incremental.closed_crowds(),
            batch_result.crowds,
            "closed crowds diverge for {batch_minutes}-minute batches"
        );
        assert_eq!(
            incremental.gatherings(),
            batch_result.gatherings,
            "closed gatherings diverge for {batch_minutes}-minute batches"
        );
    }
}
