//! Incremental-vs-batch consistency on realistic data: feeding the cluster
//! stream in batches must yield exactly the crowds and gatherings of a
//! from-scratch run, regardless of how the stream is sliced.

use gathering_patterns::prelude::*;
use gpdt_clustering::ClusterDatabase as CDB;
use gpdt_core::incremental::IncrementalDiscovery;
use gpdt_core::{
    detect_closed_gatherings, ClusteringParams, CrowdDiscovery, CrowdParams, GatheringParams,
};
use gpdt_trajectory::TimeInterval;
use gpdt_workload::EventRates;

fn scenario(seed: u64, duration: u32) -> gpdt_workload::GeneratedScenario {
    let mut config = ScenarioConfig::small_demo(seed);
    config.num_taxis = 220;
    config.duration = duration;
    config.area_size = 9_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [7.0, 7.0, 7.0],
        venues_per_hour: [4.0, 4.0, 4.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    generate_scenario(&config)
}

#[test]
fn incremental_ingestion_matches_batch_run_for_several_slicings() {
    let duration = 120u32;
    let scenario = scenario(99, duration);
    let clustering = ClusteringParams::new(200.0, 5);
    let crowd_params = CrowdParams::new(12, 15, 300.0);
    let gathering_params = GatheringParams::new(8, 10);

    // Batch reference.
    let full = CDB::build(&scenario.database, &clustering);
    let batch_result = CrowdDiscovery::new(crowd_params, RangeSearchStrategy::Grid).run(&full);
    let mut batch_crowds = batch_result.closed_crowds.clone();
    batch_crowds.sort_by_key(|c| (c.start_time(), c.end_time(), c.cluster_ids().to_vec()));
    let mut batch_gatherings: Vec<Gathering> = batch_crowds
        .iter()
        .flat_map(|c| {
            detect_closed_gatherings(
                c,
                &full,
                &gathering_params,
                crowd_params.kc,
                TadVariant::TadStar,
            )
        })
        .collect();
    batch_gatherings.sort_by_key(|g| (g.crowd().start_time(), g.crowd().end_time()));
    assert!(!batch_crowds.is_empty());

    for batch_minutes in [20u32, 40, 60] {
        let mut incremental = IncrementalDiscovery::new(
            crowd_params,
            gathering_params,
            RangeSearchStrategy::Grid,
            TadVariant::TadStar,
        );
        let mut start = 0u32;
        while start < duration {
            let end = (start + batch_minutes - 1).min(duration - 1);
            let batch = CDB::build_interval(
                &scenario.database,
                &clustering,
                TimeInterval::new(start, end),
            );
            incremental.ingest(batch);
            start = end + 1;
        }
        let mut crowds = incremental.closed_crowds();
        crowds.sort_by_key(|c| (c.start_time(), c.end_time(), c.cluster_ids().to_vec()));
        assert_eq!(
            crowds, batch_crowds,
            "closed crowds diverge for {batch_minutes}-minute batches"
        );
        let gatherings = incremental.gatherings();
        assert_eq!(
            gatherings, batch_gatherings,
            "closed gatherings diverge for {batch_minutes}-minute batches"
        );
    }
}
