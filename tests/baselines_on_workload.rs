//! Baseline miners on the synthetic workload: planted convoy flows must be
//! recovered by the convoy and swarm miners, and the gathering pipeline must
//! distinguish jams (gatherings) from platoons and venue churn.

use gathering_patterns::prelude::*;
use gpdt_baselines::{
    discover_closed_swarms_from_clusters, discover_convoys_from_clusters, ConvoyParams, SwarmParams,
};
use gpdt_core::ClusteringParams;
use gpdt_workload::{EventKind, EventRates};

fn convoy_heavy_scenario() -> gpdt_workload::GeneratedScenario {
    let mut config = ScenarioConfig::small_demo(314);
    config.num_taxis = 250;
    config.duration = 120;
    config.area_size = 15_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [2.0, 2.0, 2.0],
        venues_per_hour: [1.0, 1.0, 1.0],
        convoys_per_hour: [10.0, 10.0, 10.0],
    };
    generate_scenario(&config)
}

#[test]
fn planted_convoy_flows_are_found_by_convoy_and_swarm_miners() {
    let scenario = convoy_heavy_scenario();
    let flows = scenario.events_of_kind(EventKind::ConvoyFlow);
    assert!(!flows.is_empty());

    let clustering = ClusteringParams::new(200.0, 5);
    let clusters = ClusterDatabase::build(&scenario.database, &clustering);

    let convoys = discover_convoys_from_clusters(&clusters, &ConvoyParams::new(10, 8, clustering));
    let swarms =
        discover_closed_swarms_from_clusters(&clusters, &SwarmParams::new(10, 8, clustering));
    assert!(!convoys.is_empty(), "no convoys found for planted flows");
    assert!(!swarms.is_empty(), "no swarms found for planted flows");

    // Every sufficiently long planted flow is matched by a convoy that shares
    // most of its members and overlaps it in time.
    for flow in flows.iter().filter(|f| f.duration() >= 10) {
        let matched = convoys.iter().any(|c| {
            let shared = flow
                .core_members
                .iter()
                .filter(|m| c.objects.contains(m))
                .count();
            let overlap = c
                .interval()
                .and_then(|iv| iv.intersect(&flow.interval))
                .is_some();
            shared >= flow.core_members.len() * 2 / 3 && overlap
        });
        assert!(
            matched,
            "planted convoy flow starting at {} was not recovered",
            flow.interval.start
        );
    }
}

#[test]
fn every_gathering_is_explained_by_a_planted_committed_group() {
    // Two kinds of planted events can legitimately satisfy the gathering
    // definition: traffic jams (stationary committed core) and long, slow
    // convoy flows (a platoon whose per-minute Hausdorff drift stays below
    // δ and whose members are committed for the whole flow).  Venue churn
    // and background traffic must never explain a gathering.
    let scenario = convoy_heavy_scenario();
    let config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(gpdt_core::CrowdParams::new(12, 15, 300.0))
        .gathering(gpdt_core::GatheringParams::new(10, 12))
        .build()
        .unwrap();
    let result = GatheringPipeline::new(config).discover(&scenario.database);
    let committed_events: Vec<_> = scenario
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TrafficJam | EventKind::ConvoyFlow))
        .collect();
    for gathering in &result.gatherings {
        let explained = committed_events.iter().any(|event| {
            gathering
                .crowd()
                .interval()
                .intersect(&event.interval)
                .is_some()
                && event
                    .core_members
                    .iter()
                    .filter(|m| gathering.participators().contains(m))
                    .count()
                    >= config.gathering.mp / 2
        });
        assert!(
            explained,
            "a gathering was found that no planted committed group explains ({} participators)",
            gathering.participators().len()
        );
    }
}
