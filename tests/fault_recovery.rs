//! Crash-lattice and fault-recovery suite: every durability claim of the
//! store/service stack, exercised under deterministic fault schedules.
//!
//! * The **crash lattice** kills the storage backend at ≥ 200 seeded
//!   mutating-operation points — covering appends, segment rotations and
//!   checkpoint-cursor writes — recovers, resumes, and requires the final
//!   store to be *byte-identical* to an uninterrupted run (zero data loss
//!   past the last acknowledged fsync).
//! * A second lattice layers transient short writes and fsync failures on
//!   top of the kills, driving the restart-from-cursor path.
//! * **TailRepair** is exercised on real, current-codec (v2 columnar
//!   payload) frames — including a torn write landing exactly on a
//!   segment-rotation boundary — instead of hand-forged v1-era tails.
//! * The **sharded panic lattice** injects a worker panic into every
//!   (batch, shard) cell of a multi-batch ingest and requires in-process
//!   recovery with output byte-identical to a single-engine run.

use gpdt_bench::fault_sweep::{crash_lattice, sweep_workload, LatticeConfig};
use gpdt_clustering::ClusterDatabase;
use gpdt_core::{ClusteringParams, CrowdParams, GatheringConfig, GatheringEngine, GatheringParams};
use gpdt_shard::{GridPartitioner, Partitioner, ShardFault, ShardedEngine};
use gpdt_store::{PatternStore, StoreOptions};
use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpdt-fault-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Crash lattice
// ---------------------------------------------------------------------------

#[test]
fn crash_lattice_200_kill_points_recover_byte_identically() {
    let (config, sets) = sweep_workload(8, 135);
    let cfg = LatticeConfig {
        seed: 0x2013_1CDE,
        points: 200,
        ..LatticeConfig::default()
    };
    let outcome = crash_lattice(&cfg, &config, &sets);
    assert!(outcome.passed(), "violations: {:#?}", outcome.violations);
    assert_eq!(outcome.points, 200);
    // Every sampled point lies inside the reference op schedule, so every
    // kill must actually fire (a lattice that never crashes proves nothing).
    assert_eq!(outcome.kills_fired, 200);
    assert!(outcome.incarnations > 200, "each kill costs a restart");
}

#[test]
fn crash_lattice_with_transient_faults_still_recovers() {
    let (config, sets) = sweep_workload(8, 135);
    let cfg = LatticeConfig {
        seed: 0xFA_0175,
        points: 64,
        transient_write_one_in: Some(7),
        transient_sync_one_in: Some(11),
        ..LatticeConfig::default()
    };
    let outcome = crash_lattice(&cfg, &config, &sets);
    assert!(outcome.passed(), "violations: {:#?}", outcome.violations);
    assert!(
        outcome.transient_restarts > 0,
        "1-in-7 write faults must actually fire somewhere in 64 runs"
    );
}

// ---------------------------------------------------------------------------
// TailRepair on current-codec frames
// ---------------------------------------------------------------------------

/// Discovery output to feed the stores: real records with columnar
/// cluster-set payloads, i.e. frames as today's codec writes them.
fn store_workload() -> (GatheringEngine, usize) {
    let (config, sets) = sweep_workload(6, 90);
    let mut engine = GatheringEngine::new(config);
    engine.ingest_clusters(ClusterDatabase::from_sets(sets));
    let n = engine.finalized_records().len();
    assert!(n >= 6, "workload must finalize several records, got {n}");
    (engine, n)
}

/// Small segments so the record stream spans several rotations.
fn small_segments() -> StoreOptions {
    StoreOptions {
        max_segment_bytes: 512,
        ..StoreOptions::default()
    }
}

/// Appends records `0..n` to a fresh store in `dir`, syncing each one.
fn build_store(dir: &PathBuf, engine: &GatheringEngine, n: usize) -> PatternStore {
    let mut store = PatternStore::open_with(dir, small_segments()).unwrap();
    let cdb = engine.cluster_database();
    for record in &engine.finalized_records()[..n] {
        store.append_crowd_record(record, cdb).unwrap();
        store.sync().unwrap();
    }
    store
}

/// Sorted `(name, bytes)` of every segment file in `dir`.
fn segment_files(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn torn_v2_frame_mid_segment_is_repaired_and_rewritten_identically() {
    let (engine, n) = store_workload();

    let ref_dir = temp_dir("torn-mid-ref");
    let reference = build_store(&ref_dir, &engine, n);
    drop(reference);

    let dir = temp_dir("torn-mid");
    let store = build_store(&dir, &engine, n);
    drop(store);

    // Tear the last frame: drop the final 3 bytes of its checksum, exactly
    // what a crash mid-`write` leaves behind.
    let (last_name, last_bytes) = segment_files(&dir).pop().unwrap();
    assert!(last_bytes.len() > 3);
    let torn_len = last_bytes.len() as u64 - 3;
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(&last_name))
        .unwrap()
        .set_len(torn_len)
        .unwrap();

    let mut store = PatternStore::open_with(&dir, small_segments()).unwrap();
    let repair = store.tail_repair().expect("the torn tail must be reported");
    assert!(repair.segment.ends_with(&last_name));
    assert!(repair.dropped_bytes > 0);
    assert_eq!(store.len(), n - 1, "exactly the torn record is dropped");

    // Re-appending the lost record must reproduce the reference store byte
    // for byte — the repair truncated to a frame boundary, nothing else.
    store
        .append_crowd_record(
            &engine.finalized_records()[n - 1],
            engine.cluster_database(),
        )
        .unwrap();
    store.sync().unwrap();
    drop(store);
    assert_eq!(segment_files(&dir), segment_files(&ref_dir));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn torn_frame_exactly_on_rotation_boundary_is_repaired() {
    let (engine, n) = store_workload();

    let ref_dir = temp_dir("torn-rot-ref");
    drop(build_store(&ref_dir, &engine, n));

    // Build record by record until an append triggers a segment rotation:
    // record `k` is then the *first* frame of the fresh segment.
    let dir = temp_dir("torn-rot");
    let mut store = PatternStore::open_with(&dir, small_segments()).unwrap();
    let cdb = engine.cluster_database();
    let mut rotated_at = None;
    for (k, record) in engine.finalized_records()[..n].iter().enumerate() {
        let before = segment_files(&dir).len();
        store.append_crowd_record(record, cdb).unwrap();
        store.sync().unwrap();
        if segment_files(&dir).len() > before && before > 0 {
            rotated_at = Some(k);
            break;
        }
    }
    let k = rotated_at.expect("512-byte segments must rotate within the workload");
    drop(store);

    // Tear the rotated-into segment down to its header plus a few bytes of
    // the first frame: the crash happened exactly on the rotation boundary,
    // mid-way through the first write into the new segment.
    let (last_name, last_bytes) = segment_files(&dir).pop().unwrap();
    let header = 10u64; // magic (8) + u16 version
    assert!(last_bytes.len() as u64 > header + 5);
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(&last_name))
        .unwrap()
        .set_len(header + 5)
        .unwrap();

    // The earlier segments still hold records, so this is a routine repair,
    // not an `EmptySalvage` refusal.
    let mut store = PatternStore::open_with(&dir, small_segments()).unwrap();
    let repair = store
        .tail_repair()
        .expect("the torn boundary write must be reported");
    assert_eq!(repair.dropped_bytes, 5);
    assert_eq!(store.len(), k, "everything before the rotation survives");

    // Resume the interrupted append stream; the result must equal a store
    // that never crashed.
    for record in &engine.finalized_records()[k..n] {
        store.append_crowd_record(record, cdb).unwrap();
        store.sync().unwrap();
    }
    drop(store);
    assert_eq!(segment_files(&dir), segment_files(&ref_dir));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

// ---------------------------------------------------------------------------
// Sharded panic lattice
// ---------------------------------------------------------------------------

/// Five objects drifting along +x across grid cells, so crowds keep
/// crossing shard borders and every shard does real work.
fn drifting_db(ticks: u32) -> TrajectoryDatabase {
    TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
        Trajectory::from_points(
            ObjectId::new(i),
            (0..ticks)
                .map(|t| (t, (f64::from(t) * 60.0 + f64::from(i) * 8.0, f64::from(i))))
                .collect::<Vec<_>>(),
        )
    }))
}

#[test]
fn sharded_panic_lattice_recovers_in_process_byte_identically() {
    let config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(60.0, 3))
        .crowd(CrowdParams::new(3, 3, 120.0))
        .gathering(GatheringParams::new(3, 3))
        .build()
        .unwrap();
    let db = drifting_db(16);
    let partitioner = Partitioner::Grid(GridPartitioner::new(150.0));
    let shards = 3usize;

    let mut single = GatheringEngine::new(config);
    single.ingest_trajectories(&db);
    let reference = (single.closed_crowds(), single.gatherings());
    assert!(!reference.0.is_empty(), "the drift must form a crowd");

    let mut clean = ShardedEngine::new(config, shards, partitioner);
    clean.ingest_trajectories(&db);
    assert_eq!((clean.closed_crowds(), clean.gatherings()), reference);

    // One panic per (batch, shard) cell of the lattice, each in a fresh
    // engine: recovery must happen inside the process (no restart), and the
    // final output must match both the undisturbed sharded run and the
    // single-engine oracle.
    let ends = [2u32, 4, 6, 8, 10, 12, 14, db.time_domain().unwrap().end];
    for batch in 0..ends.len() {
        for shard in 0..shards {
            let mut faulty = ShardedEngine::new(config, shards, partitioner);
            for (b, end) in ends.iter().enumerate() {
                if b == batch {
                    faulty.inject_shard_fault(shard, ShardFault::PanicOnce);
                }
                faulty.ingest_trajectories_until(&db, *end);
            }
            assert_eq!(
                (faulty.closed_crowds(), faulty.gatherings()),
                reference,
                "batch {batch}, shard {shard}"
            );
            assert_eq!(
                faulty.finalized_records(),
                clean.finalized_records(),
                "batch {batch}, shard {shard}"
            );
            assert_eq!(
                faulty.restarts().iter().sum::<u64>(),
                1,
                "exactly the injected worker is rebuilt (batch {batch}, shard {shard})"
            );
        }
    }
}
