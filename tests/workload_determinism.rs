//! Workload determinism: a `ScenarioConfig` is a complete, reproducible
//! description of its dataset, and the quickstart flow runs end-to-end.

use gathering_patterns::prelude::*;
use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};
use gpdt_trajectory::io;

#[test]
fn same_seed_produces_byte_identical_dataset() {
    let config = ScenarioConfig::small_demo(20260730);
    let a = generate_scenario(&config);
    let b = generate_scenario(&config);

    // The canonical text serialization must match byte for byte.
    let text_a = io::to_string(&a.database);
    let text_b = io::to_string(&b.database);
    assert_eq!(text_a.as_bytes(), text_b.as_bytes());

    // The planted ground truth must match as well.
    assert_eq!(a.events, b.events);
}

#[test]
fn dataset_roundtrips_through_text_format() {
    let scenario = generate_scenario(&ScenarioConfig::small_demo(77));
    let text = io::to_string(&scenario.database);
    let parsed = io::from_str(&text).expect("parse back our own serialization");
    assert_eq!(parsed.len(), scenario.database.len());
    assert_eq!(parsed.total_samples(), scenario.database.total_samples());
    // Re-serializing must reproduce the same bytes (canonical form).
    assert_eq!(io::to_string(&parsed), text);
}

#[test]
fn different_seeds_produce_different_datasets() {
    let a = generate_scenario(&ScenarioConfig::small_demo(1));
    let b = generate_scenario(&ScenarioConfig::small_demo(2));
    assert_ne!(io::to_string(&a.database), io::to_string(&b.database));
}

/// The quickstart example's logic, end-to-end: generate, configure, discover.
#[test]
fn quickstart_flow_runs_end_to_end() {
    let scenario = generate_scenario(&ScenarioConfig::small_demo(42));
    assert!(!scenario.database.is_empty());
    assert_eq!(
        scenario.database.total_samples(),
        scenario.database.len() * scenario.config.duration as usize
    );

    let config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(10, 15, 300.0))
        .gathering(GatheringParams::new(8, 10))
        .build()
        .expect("consistent parameters");

    let result = GatheringPipeline::new(config).discover(&scenario.database);

    // The pipeline must produce a cluster database covering the scenario and
    // internally consistent pattern counts; gatherings are always derived
    // from discovered crowds.
    assert!(result.clusters.total_clusters() > 0);
    assert!(result.gathering_count() <= result.crowd_count() * 4);
    for gathering in &result.gatherings {
        let interval = gathering.crowd().interval();
        assert!(interval.start <= interval.end);
        assert!(!gathering.participators().is_empty());
    }
}
