//! SIMD ≡ scalar bit-identity: every vector kernel must be observationally
//! indistinguishable from the scalar reference at every feature level the
//! machine supports.
//!
//! * Kernel level: random coordinate columns — including the NaN-free edge
//!   shapes (empty, length 1, length ≡ 1 mod the widest lane count,
//!   duplicated points) — through every kernel of every available
//!   [`SimdLevel`], asserting bit-equal outputs against the scalar table.
//! * Entry-point level: the public geometry functions that route through the
//!   global dispatch table return bit-identical results whichever level is
//!   forced.
//! * Engine level: a fig5-slice run with the kernels pinned to scalar
//!   (`GPDT_SIMD=off`) produces a byte-identical checkpoint to a run on the
//!   auto-selected level.

use gpdt_bench::scenarios::clustered_scenario;
use gpdt_clustering::{dbscan, dbscan_columns, ClusterDatabase, ClusteringParams};
use gpdt_core::{
    CrowdParams, GatheringConfig, GatheringEngine, GatheringParams, RangeSearchStrategy,
};
use gpdt_geo::simd::{available_levels, force_dispatch_level, KernelDispatch, SimdLevel};
use gpdt_geo::{hausdorff_distance_views, Mbr, Point, PointColumns, PointsView};
use gpdt_store::checkpoint_to_vec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serialises the tests that mutate the process-global dispatch override.
/// (Forcing a level cannot change any observable result — that is the whole
/// point of this suite — but restoring `None` concurrently with another
/// forced section would make failures non-reproducible.)
static DISPATCH_OVERRIDE: Mutex<()> = Mutex::new(());

/// Runs `f` with the global dispatch forced to `level`, restoring auto
/// resolution afterwards even on panic.
fn with_forced<R>(level: Option<SimdLevel>, f: impl FnOnce() -> R) -> R {
    let _guard = DISPATCH_OVERRIDE.lock().unwrap();
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            force_dispatch_level(None);
        }
    }
    let _restore = Restore;
    force_dispatch_level(level);
    f()
}

/// Column lengths covering the vector-width edge cases: empty, single
/// element, one past a lane boundary for both 2- and 4-wide units, and runs
/// long enough to exercise the block loops plus every tail length.
const EDGE_LENGTHS: [usize; 12] = [0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33];

fn random_columns(rng: &mut StdRng, n: usize, extent: f64) -> (Vec<f64>, Vec<f64>) {
    let mut xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-extent..extent)).collect();
    let mut ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-extent..extent)).collect();
    // Duplicate a random prefix of points over random positions so ties are
    // common (exercises the min/max/compare tie behaviour).
    if n >= 2 && rng.gen_range(0..3) == 0 {
        for _ in 0..n / 2 {
            let (src, dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
            xs[dst] = xs[src];
            ys[dst] = ys[src];
        }
    }
    (xs, ys)
}

#[test]
fn kernels_bit_identical_across_levels_on_random_columns() {
    let mut rng = StdRng::seed_from_u64(0x51D0);
    let scalar = KernelDispatch::for_level(SimdLevel::Scalar).unwrap();
    let levels = available_levels();
    assert!(!levels.is_empty());

    let mut sizes: Vec<usize> = EDGE_LENGTHS.to_vec();
    sizes.extend((0..8).map(|_| rng.gen_range(34..400usize)));

    for &n in &sizes {
        for round in 0..6 {
            let extent = if round % 2 == 0 { 100.0 } else { 10_000.0 };
            let (xs, ys) = random_columns(&mut rng, n, extent);
            let ids: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(7)).collect();
            let px = rng.gen_range(-extent..extent);
            let py = rng.gen_range(-extent..extent);
            // Radii spanning "none match" to "all match", including exact
            // squared distances so ties on the boundary are hit.
            let mut radii = vec![0.0, extent * extent / 16.0, extent * extent * 8.0];
            if n > 0 {
                let k = rng.gen_range(0..n);
                let (dx, dy) = (xs[k] - px, ys[k] - py);
                radii.push(dx * dx + dy * dy);
            }

            let mut want = Vec::new();
            for &r_sq in &radii {
                want.clear();
                scalar.filter_within(&xs, &ys, &ids, px, py, r_sq, &mut want);
                let want_any = scalar.any_within(&xs, &ys, px, py, r_sq);
                for &level in levels {
                    let d = KernelDispatch::for_level(level).unwrap();
                    let mut got = Vec::new();
                    d.filter_within(&xs, &ys, &ids, px, py, r_sq, &mut got);
                    assert_eq!(got, want, "filter_within {level:?} n={n} r_sq={r_sq}");
                    assert_eq!(
                        d.any_within(&xs, &ys, px, py, r_sq),
                        want_any,
                        "any_within {level:?} n={n} r_sq={r_sq}"
                    );
                }
            }

            // Full scans (no early exit) must agree bit-for-bit.
            let want_min = scalar.min_dist_sq_bounded(&xs, &ys, px, py, f64::NEG_INFINITY);
            let want_mm_x = scalar.column_min_max(&xs);
            let want_mm_y = scalar.column_min_max(&ys);
            let want_sum_x = scalar.column_sum(&xs);
            let want_sum_y = scalar.column_sum(&ys);
            for &level in levels {
                let d = KernelDispatch::for_level(level).unwrap();
                assert_eq!(
                    d.min_dist_sq_bounded(&xs, &ys, px, py, f64::NEG_INFINITY)
                        .to_bits(),
                    want_min.to_bits(),
                    "min_dist_sq_bounded {level:?} n={n}"
                );
                let mm_x = d.column_min_max(&xs);
                let mm_y = d.column_min_max(&ys);
                assert_eq!(
                    mm_x.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
                    want_mm_x.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
                    "column_min_max(xs) {level:?} n={n}"
                );
                assert_eq!(
                    mm_y.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
                    want_mm_y.map(|(lo, hi)| (lo.to_bits(), hi.to_bits())),
                    "column_min_max(ys) {level:?} n={n}"
                );
                assert_eq!(
                    d.column_sum(&xs).to_bits(),
                    want_sum_x.to_bits(),
                    "column_sum(xs) {level:?} n={n}"
                );
                assert_eq!(
                    d.column_sum(&ys).to_bits(),
                    want_sum_y.to_bits(),
                    "column_sum(ys) {level:?} n={n}"
                );
            }
        }
    }
}

/// The early-exit variant never returns a value above the true minimum, and
/// any early-exited value is at or below the bound — the only contract the
/// Hausdorff caller relies on for its bit-identical public result.
#[test]
fn bounded_min_early_exit_contract_holds_at_every_level() {
    let mut rng = StdRng::seed_from_u64(0x51D1);
    for _ in 0..80 {
        let n = rng.gen_range(1..200usize);
        let (xs, ys) = random_columns(&mut rng, n, 500.0);
        let px = rng.gen_range(-500.0..500.0);
        let py = rng.gen_range(-500.0..500.0);
        let scalar = KernelDispatch::for_level(SimdLevel::Scalar).unwrap();
        let exact = scalar.min_dist_sq_bounded(&xs, &ys, px, py, f64::NEG_INFINITY);
        for &level in available_levels() {
            let d = KernelDispatch::for_level(level).unwrap();
            for stop in [0.0, exact * 0.5, exact, exact * 2.0, f64::INFINITY] {
                let got = d.min_dist_sq_bounded(&xs, &ys, px, py, stop);
                assert!(got >= exact, "{level:?}: returned below the true minimum");
                assert!(
                    got.to_bits() == exact.to_bits() || got <= stop,
                    "{level:?}: early exit above the bound (got {got}, stop {stop})"
                );
            }
        }
    }
}

#[test]
fn public_entry_points_level_independent() {
    let mut rng = StdRng::seed_from_u64(0x51D2);
    let mut cases = Vec::new();
    for _ in 0..10 {
        let n = rng.gen_range(1..150usize);
        let m = rng.gen_range(1..150usize);
        cases.push((
            random_columns(&mut rng, n, 800.0),
            random_columns(&mut rng, m, 800.0),
        ));
    }
    let params = ClusteringParams::new(120.0, 3);

    // Reference outputs on the scalar kernels...
    let reference: Vec<_> = with_forced(Some(SimdLevel::Scalar), || {
        cases
            .iter()
            .map(|((pxs, pys), (qxs, qys))| {
                let p = PointsView::new(pxs, pys);
                let q = PointsView::new(qxs, qys);
                (
                    hausdorff_distance_views(p, q).to_bits(),
                    Mbr::from_columns(pxs, pys),
                    Point::centroid_columns(pxs, pys),
                    dbscan_columns(p, &params),
                )
            })
            .collect()
    });

    // ...must be reproduced exactly by every other level.
    for &level in available_levels() {
        let got: Vec<_> = with_forced(Some(level), || {
            cases
                .iter()
                .map(|((pxs, pys), (qxs, qys))| {
                    let p = PointsView::new(pxs, pys);
                    let q = PointsView::new(qxs, qys);
                    (
                        hausdorff_distance_views(p, q).to_bits(),
                        Mbr::from_columns(pxs, pys),
                        Point::centroid_columns(pxs, pys),
                        dbscan_columns(p, &params),
                    )
                })
                .collect()
        });
        assert_eq!(got, reference, "{level:?} diverged from scalar");
    }
}

/// AoS and SoA centroids share the canonical striped accumulation order, so
/// they agree bit-for-bit at every dispatch level.
#[test]
fn centroid_layouts_agree_at_every_level() {
    let mut rng = StdRng::seed_from_u64(0x51D3);
    for _ in 0..40 {
        let n = rng.gen_range(1..300usize);
        let (xs, ys) = random_columns(&mut rng, n, 2_000.0);
        let points: Vec<Point> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| Point::new(x, y))
            .collect();
        let aos = Point::centroid(&points).unwrap();
        for &level in available_levels() {
            let soa = with_forced(Some(level), || Point::centroid_columns(&xs, &ys).unwrap());
            assert_eq!(
                (soa.x.to_bits(), soa.y.to_bits()),
                (aos.x.to_bits(), aos.y.to_bits()),
                "{level:?}: SoA centroid diverged from AoS"
            );
        }
    }
}

fn config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(10, 10, 300.0))
        .gathering(GatheringParams::new(8, 8))
        .build()
        .unwrap()
}

/// Ingests `sets` in random contiguous chunks.
fn ingest_sliced(
    engine: &mut GatheringEngine,
    sets: &[gpdt_clustering::SnapshotClusterSet],
    rng: &mut StdRng,
) {
    let mut i = 0;
    while i < sets.len() {
        let take = rng.gen_range(1..=4usize.min(sets.len() - i));
        let chunk: Vec<_> = sets[i..i + take].to_vec();
        engine.ingest_clusters(ClusterDatabase::from_sets(chunk));
        i += take;
    }
}

/// The engine-level guarantee behind the CI `GPDT_SIMD=off` vs `auto` fig5
/// comparison: a full discovery run on forced-scalar kernels checkpoints
/// byte-identically to one on the auto-selected level, for every strategy
/// and under randomized ingest slicing.
#[test]
fn engine_checkpoints_byte_identical_scalar_vs_auto() {
    let cs = clustered_scenario(0x51D4, 120, 60);
    let sets = cs.clusters.clone().into_sets();
    let mut rng = StdRng::seed_from_u64(0x51D5);

    for strategy in RangeSearchStrategy::ALL {
        // `GPDT_SIMD=off`: everything pinned to the scalar kernels.
        let want = with_forced(Some(SimdLevel::Scalar), || {
            let mut engine = GatheringEngine::new(config()).with_strategy(strategy);
            engine.ingest_clusters(cs.clusters.clone());
            checkpoint_to_vec(&engine)
        });
        // `GPDT_SIMD=auto`: best detected level, sliced ingest on top.
        let got = with_forced(None, || {
            let mut engine = GatheringEngine::new(config()).with_strategy(strategy);
            ingest_sliced(&mut engine, &sets, &mut rng);
            checkpoint_to_vec(&engine)
        });
        assert_eq!(
            got, want,
            "{strategy:?}: SIMD level left a byte-level fingerprint in the checkpoint"
        );
    }
}

/// Sanity on the kernel scan itself at engine scale: DBSCAN over a clustered
/// snapshot is identical on AoS scalar input and columnar SIMD input.
#[test]
fn dbscan_layout_and_level_blind_on_clustered_data() {
    let mut rng = StdRng::seed_from_u64(0x51D6);
    for _ in 0..10 {
        // A few dense blobs so core/border/noise cases all occur.
        let mut points = Vec::new();
        for _ in 0..rng.gen_range(2..5) {
            let (cx, cy) = (
                rng.gen_range(-3_000.0..3_000.0),
                rng.gen_range(-3_000.0..3_000.0),
            );
            for _ in 0..rng.gen_range(5..60) {
                points.push(Point::new(
                    cx + rng.gen_range(-150.0..150.0),
                    cy + rng.gen_range(-150.0..150.0),
                ));
            }
        }
        let cols = PointColumns::from_points(&points);
        let params = ClusteringParams::new(100.0, 4);
        let want = dbscan(&points, &params);
        for &level in available_levels() {
            let got = with_forced(Some(level), || dbscan_columns(cols.view(), &params));
            assert_eq!(got, want, "{level:?}");
        }
    }
}
