//! Streaming/batch equivalence: the `GatheringEngine` must produce exactly
//! the crowds and gatherings of `GatheringPipeline::discover`, no matter how
//! the input stream is sliced — one tick at a time, ragged random chunks or
//! one big batch — for every range-search strategy × detection variant
//! combination.

use gathering_patterns::prelude::*;
use gpdt_clustering::ClusterDatabase;
use gpdt_core::{detect_closed_gatherings, discover_closed_crowds};
use gpdt_trajectory::TimeInterval;
use gpdt_workload::EventRates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scenario(seed: u64, duration: u32) -> gpdt_workload::GeneratedScenario {
    let mut config = ScenarioConfig::small_demo(seed);
    config.num_taxis = 150;
    config.duration = duration;
    config.area_size = 8_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [8.0, 8.0, 8.0],
        venues_per_hour: [4.0, 4.0, 4.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    generate_scenario(&config)
}

fn config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(10, 10, 300.0))
        .gathering(GatheringParams::new(8, 8))
        .build()
        .unwrap()
}

/// Sorts crowds into the engine's canonical order.
fn canonical_crowds(mut crowds: Vec<Crowd>) -> Vec<Crowd> {
    crowds.sort_by_key(|c| (c.start_time(), c.end_time(), c.cluster_ids().to_vec()));
    crowds
}

/// Sorts gatherings into the engine's canonical order.
fn canonical_gatherings(mut gatherings: Vec<Gathering>) -> Vec<Gathering> {
    gatherings.sort_by_key(|g| {
        (
            g.crowd().start_time(),
            g.crowd().end_time(),
            g.crowd().cluster_ids().to_vec(),
            g.participators().to_vec(),
        )
    });
    gatherings
}

/// Splits `0..duration` into ragged chunk widths drawn from `rng`.
fn ragged_splits(rng: &mut StdRng, duration: u32) -> Vec<u32> {
    let mut widths = Vec::new();
    let mut covered = 0u32;
    while covered < duration {
        let w = rng.gen_range(1..=7u32).min(duration - covered);
        widths.push(w);
        covered += w;
    }
    widths
}

#[test]
fn engine_matches_pipeline_for_all_slicings_strategies_and_variants() {
    let duration = 60u32;
    let scenario = scenario(4242, duration);
    let config = config();
    let full_clusters = ClusterDatabase::build(&scenario.database, &config.clustering);
    let mut rng = StdRng::seed_from_u64(7);

    for strategy in RangeSearchStrategy::ALL {
        for variant in TadVariant::ALL {
            let pipeline = GatheringPipeline::new(config)
                .with_strategy(strategy)
                .with_variant(variant);
            let reference = pipeline.discover(&scenario.database);
            assert!(
                reference.crowd_count() > 0,
                "the scenario must produce crowds for the test to be meaningful"
            );

            // Anchor the reference outside the engine: the pipeline (which
            // routes through the engine) must match the direct composition of
            // Algorithm 1 and Test-and-Divide, so an engine bug cannot slip
            // through by altering reference and streamed results alike.
            let independent_crowds = canonical_crowds(discover_closed_crowds(
                &full_clusters,
                &config.crowd,
                strategy,
            ));
            assert_eq!(
                reference.crowds, independent_crowds,
                "{strategy}/{variant} independent crowd composition"
            );
            let independent_gatherings = canonical_gatherings(
                independent_crowds
                    .iter()
                    .flat_map(|c| {
                        detect_closed_gatherings(
                            c,
                            &full_clusters,
                            &config.gathering,
                            config.crowd.kc,
                            variant,
                        )
                    })
                    .collect(),
            );
            assert_eq!(
                reference.gatherings, independent_gatherings,
                "{strategy}/{variant} independent gathering composition"
            );

            // Slicing 1: one big batch of pre-built clusters.
            let mut engine = pipeline.engine();
            engine.ingest_clusters(full_clusters.clone());
            assert_eq!(
                engine.closed_crowds(),
                reference.crowds,
                "{strategy}/{variant} one batch"
            );
            assert_eq!(
                engine.gatherings(),
                reference.gatherings,
                "{strategy}/{variant} one batch"
            );

            // Slicing 2: one tick at a time, streamed from the trajectories
            // (the engine clusters each new tick on demand).
            let mut engine = pipeline.engine();
            for t in 0..duration {
                engine.ingest_trajectories_until(&scenario.database, t);
            }
            assert_eq!(
                engine.closed_crowds(),
                reference.crowds,
                "{strategy}/{variant} per tick"
            );
            assert_eq!(
                engine.gatherings(),
                reference.gatherings,
                "{strategy}/{variant} per tick"
            );

            // Slicing 3: ragged random cluster batches.
            let widths = ragged_splits(&mut rng, duration);
            let mut engine = pipeline.engine();
            let mut start = 0u32;
            for w in &widths {
                let interval = TimeInterval::new(start, start + w - 1);
                let batch = ClusterDatabase::build_interval(
                    &scenario.database,
                    &config.clustering,
                    interval,
                );
                engine.ingest_clusters(batch);
                start += w;
            }
            assert_eq!(
                engine.closed_crowds(),
                reference.crowds,
                "{strategy}/{variant} ragged {widths:?}"
            );
            assert_eq!(
                engine.gatherings(),
                reference.gatherings,
                "{strategy}/{variant} ragged {widths:?}"
            );
        }
    }
}

#[test]
fn interleaving_trajectory_and_cluster_ingestion_is_consistent() {
    let duration = 50u32;
    let scenario = scenario(99, duration);
    let config = config();
    let pipeline = GatheringPipeline::new(config);
    let reference = pipeline.discover(&scenario.database);

    // First half streamed from trajectories, second half as cluster batches.
    let mut engine = pipeline.engine();
    engine.ingest_trajectories_until(&scenario.database, duration / 2 - 1);
    let rest = ClusterDatabase::build_interval(
        &scenario.database,
        &config.clustering,
        TimeInterval::new(duration / 2, duration - 1),
    );
    engine.ingest_clusters(rest);
    assert_eq!(engine.closed_crowds(), reference.crowds);
    assert_eq!(engine.gatherings(), reference.gatherings);

    // And the other way round: clusters first, trajectories afterwards (the
    // engine re-aligns its clustering cursor).
    let mut engine = pipeline.engine();
    let head = ClusterDatabase::build_interval(
        &scenario.database,
        &config.clustering,
        TimeInterval::new(0, duration / 2 - 1),
    );
    engine.ingest_clusters(head);
    engine.ingest_trajectories(&scenario.database);
    assert_eq!(engine.closed_crowds(), reference.crowds);
    assert_eq!(engine.gatherings(), reference.gatherings);
}
