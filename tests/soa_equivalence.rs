//! SoA ≡ AoS equivalence: the columnar point layout must be observationally
//! identical to the interleaved `&[Point]` layout at every level.
//!
//! * The kernels — DBSCAN grid scan, Hausdorff distance and threshold test —
//!   return bit-identical results whether fed slices or column views.
//! * The full engine produces **byte-identical checkpoints** for every
//!   range-search strategy, no matter how the ingest stream is sliced: the
//!   columnar arenas, the canonical orders and the columnar codec frames
//!   leave no layout fingerprint in the output.

use gpdt_bench::scenarios::clustered_scenario;
use gpdt_clustering::{dbscan, dbscan_columns, ClusterDatabase, ClusteringParams};
use gpdt_core::{
    CrowdParams, GatheringConfig, GatheringEngine, GatheringParams, RangeSearchStrategy,
};
use gpdt_geo::{
    hausdorff_distance, hausdorff_distance_views, hausdorff_within, hausdorff_within_views, Point,
    PointColumns,
};
use gpdt_store::checkpoint_to_vec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(rng: &mut StdRng, n: usize, extent: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(-extent..extent),
                rng.gen_range(-extent..extent),
            )
        })
        .collect()
}

#[test]
fn kernels_are_layout_blind_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(0x50A);
    for round in 0..40 {
        let n = rng.gen_range(1..200usize);
        let extent = if round % 2 == 0 { 500.0 } else { 5_000.0 };
        let m = rng.gen_range(1..200usize);
        let p = random_points(&mut rng, n, extent);
        let q = random_points(&mut rng, m, extent);
        let pc = PointColumns::from_points(&p);
        let qc = PointColumns::from_points(&q);

        let params = ClusteringParams::new(rng.gen_range(50.0..400.0), rng.gen_range(2..6usize));
        assert_eq!(
            dbscan(&p, &params),
            dbscan_columns(pc.view(), &params),
            "round {round}: dbscan must not see the layout"
        );

        let d_rows = hausdorff_distance(&p, &q);
        let d_cols = hausdorff_distance_views(pc.view(), qc.view());
        assert_eq!(
            d_rows.to_bits(),
            d_cols.to_bits(),
            "round {round}: Hausdorff distance must be bit-identical"
        );
        for threshold in [d_rows * 0.5, d_rows, d_rows * 1.5] {
            assert_eq!(
                hausdorff_within(&p, &q, threshold),
                hausdorff_within_views(pc.view(), qc.view(), threshold),
                "round {round}: threshold test must not see the layout"
            );
        }
    }
}

fn config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(10, 10, 300.0))
        .gathering(GatheringParams::new(8, 8))
        .build()
        .unwrap()
}

/// Ingests `sets` in random contiguous chunks.
fn ingest_sliced(
    engine: &mut GatheringEngine,
    sets: &[gpdt_clustering::SnapshotClusterSet],
    rng: &mut StdRng,
) {
    let mut i = 0;
    while i < sets.len() {
        let take = rng.gen_range(1..=4usize.min(sets.len() - i));
        let chunk: Vec<_> = sets[i..i + take].to_vec();
        engine.ingest_clusters(ClusterDatabase::from_sets(chunk));
        i += take;
    }
}

#[test]
fn engine_checkpoints_are_byte_identical_across_slicings() {
    let cs = clustered_scenario(0xBEEF, 120, 60);
    let sets = cs.clusters.clone().into_sets();
    let mut rng = StdRng::seed_from_u64(0x51C);

    for strategy in RangeSearchStrategy::ALL {
        let mut reference = GatheringEngine::new(config()).with_strategy(strategy);
        reference.ingest_clusters(cs.clusters.clone());
        let want = checkpoint_to_vec(&reference);

        for round in 0..3 {
            let mut engine = GatheringEngine::new(config()).with_strategy(strategy);
            ingest_sliced(&mut engine, &sets, &mut rng);
            assert_eq!(
                checkpoint_to_vec(&engine),
                want,
                "{strategy:?} round {round}: sliced ingest left a byte-level fingerprint"
            );
        }
    }
}
