//! PatternStore query equivalence on real discovery output: the indexed
//! region × time-window queries must return exactly the gatherings a full
//! scan over all stored records finds, the store must survive a reopen
//! byte-identically, and the concurrent `MonitorService` path must produce
//! the same durable state as offline appends.

use gathering_patterns::prelude::*;
use gpdt_core::GatheringEngine;
use gpdt_store::{PatternStore, StoreOptions};
use gpdt_trajectory::TimeInterval;
use gpdt_workload::EventRates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpdt-store-queries-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario(seed: u64, duration: u32) -> gpdt_workload::GeneratedScenario {
    let mut config = ScenarioConfig::small_demo(seed);
    config.num_taxis = 150;
    config.duration = duration;
    config.area_size = 8_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [8.0, 8.0, 8.0],
        venues_per_hour: [5.0, 5.0, 5.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    generate_scenario(&config)
}

fn config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(10, 8, 300.0))
        .gathering(GatheringParams::new(8, 6))
        .build()
        .unwrap()
}

/// Runs discovery to completion and stores every record — including the
/// final frontier's closed crowds, so the store sees everything a batch run
/// reports.
fn populated_store(dir: &PathBuf) -> PatternStore {
    let scenario = scenario(555, 60);
    let config = config();
    let mut engine = GatheringEngine::new(config);
    engine.ingest_trajectories(&scenario.database);

    // Tiny segments force several rotations, so the reopen path replays a
    // multi-segment log.
    let mut store = PatternStore::open_with(
        dir,
        StoreOptions {
            max_segment_bytes: 2048,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let cdb = engine.cluster_database().clone();
    for record in engine.finalized_records() {
        store.append_crowd_record(record, &cdb).unwrap();
    }
    // Frontier crowds long enough to be closed *so far* are patterns too;
    // store them the way a monitor shutting down cleanly would.
    store.archive_closed_frontier(&engine).unwrap();
    store.sync().unwrap();
    assert!(
        store.len() >= 5,
        "scenario must produce a meaningful store, got {} records",
        store.len()
    );
    store
}

#[test]
fn region_time_queries_equal_full_scans_and_survive_reopen() {
    let dir = temp_dir("equivalence");
    let store = populated_store(&dir);
    let mut rng = StdRng::seed_from_u64(77);

    // The store's overall extent, to aim the random query boxes at.
    let extent = store
        .records()
        .iter()
        .fold(None::<Mbr>, |acc, r| match acc {
            None => Some(r.mbr),
            Some(mut m) => {
                m.expand_to_mbr(&r.mbr);
                Some(m)
            }
        })
        .expect("non-empty store");

    let reopened = PatternStore::open(&dir).unwrap();
    assert_eq!(reopened.len(), store.len());
    assert_eq!(reopened.records(), store.records());

    for round in 0..100 {
        let t1 = rng.gen_range(0u32..70);
        let t2 = rng.gen_range(0u32..70);
        let window = TimeInterval::new(t1.min(t2), t1.max(t2));
        let x = rng.gen_range(extent.min_x - 500.0..extent.max_x);
        let y = rng.gen_range(extent.min_y - 500.0..extent.max_y);
        let region = Mbr::new(
            x,
            y,
            x + rng.gen_range(10.0..4_000.0),
            y + rng.gen_range(10.0..4_000.0),
        );

        // Indexed query vs. exhaustive scan.
        let got: Vec<(usize, usize)> = store
            .query_gatherings(&region, window)
            .iter()
            .map(|hit| (hit.record, hit.index))
            .collect();
        let expected: Vec<(usize, usize)> = store
            .records()
            .iter()
            .enumerate()
            .flat_map(|(id, record)| {
                record
                    .gatherings
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| {
                        g.mbr.intersects(&region)
                            && g.interval.start <= window.end
                            && g.interval.end >= window.start
                    })
                    .map(move |(index, _)| (id, index))
            })
            .collect();
        assert_eq!(got, expected, "round {round}: region {region:?} × {window}");

        // The reopened store answers identically.
        let reopened_got: Vec<(usize, usize)> = reopened
            .query_gatherings(&region, window)
            .iter()
            .map(|hit| (hit.record, hit.index))
            .collect();
        assert_eq!(reopened_got, got, "round {round}: reopen mismatch");

        // Interval-only index agrees with a scan as well.
        let ids = store.crowds_in_window(window);
        let expected_ids: Vec<usize> = store
            .records()
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                let iv = r.interval();
                iv.start <= window.end && iv.end >= window.start
            })
            .map(|(id, _)| id)
            .collect();
        assert_eq!(ids, expected_ids, "round {round}: window {window}");
    }

    // Participation histories match a scan, for every object ever stored.
    let mut objects: Vec<ObjectId> = store
        .records()
        .iter()
        .flat_map(|r| r.gatherings.iter().flat_map(|g| g.participators.clone()))
        .collect();
    objects.sort_unstable();
    objects.dedup();
    assert!(!objects.is_empty());
    for object in objects {
        let got: Vec<(usize, usize)> = store
            .object_history(object)
            .iter()
            .map(|hit| (hit.record, hit.index))
            .collect();
        let expected: Vec<(usize, usize)> = store
            .records()
            .iter()
            .enumerate()
            .flat_map(|(id, r)| {
                r.gatherings
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.participators.binary_search(&object).is_ok())
                    .map(move |(index, _)| (id, index))
            })
            .collect();
        assert_eq!(got, expected, "object {object}");
    }

    // Top-k ranking: sorted by participator count, ties by position; the
    // prefix property holds for every k.
    let all = store.top_k_gatherings(usize::MAX);
    let total: usize = store.records().iter().map(|r| r.gatherings.len()).sum();
    assert_eq!(all.len(), total);
    for pair in all.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let key = |h: &gpdt_store::GatheringHit| {
            (
                usize::MAX - h.gathering.participators.len(),
                h.record,
                h.index,
            )
        };
        assert!(key(a) <= key(b), "top-k ordering violated");
    }
    for k in [0, 1, 3, total, total + 5] {
        let top = store.top_k_gatherings(k);
        assert_eq!(top.len(), k.min(total));
        assert_eq!(&all[..top.len()], top.as_slice());
    }

    drop(store);
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn service_produces_the_same_store_as_offline_appends() {
    let duration = 50u32;
    let scenario = scenario(4040, duration);
    let config = config();

    // Offline: run the engine to completion, append all finalized records.
    let offline_dir = temp_dir("offline");
    let mut engine = GatheringEngine::new(config);
    engine.ingest_trajectories(&scenario.database);
    let mut offline = PatternStore::open(&offline_dir).unwrap();
    for record in engine.finalized_records() {
        offline
            .append_crowd_record(record, engine.cluster_database())
            .unwrap();
    }

    // Online: the same stream through the concurrent service, with queries
    // racing the ingestion.
    let service_dir = temp_dir("service");
    let store = PatternStore::open(&service_dir).unwrap();
    let outcome = MonitorService::run(GatheringEngine::new(config), store, |handle| {
        for t in 0..duration {
            let batch = ClusterDatabase::build_interval(
                &scenario.database,
                &config.clustering,
                TimeInterval::new(t, t),
            );
            handle.ingest(batch);
            // Interleave queries with the ingestion to exercise the lock.
            if t % 7 == 0 {
                let _ = handle.top_k(5);
            }
        }
        handle.flush();
    });
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);

    assert_eq!(outcome.store.records(), offline.records());
    assert_eq!(outcome.engine.closed_crowds(), engine.closed_crowds());

    drop(offline);
    drop(outcome);
    std::fs::remove_dir_all(&offline_dir).unwrap();
    std::fs::remove_dir_all(&service_dir).unwrap();
}
