//! End-to-end integration tests: synthetic workload → clustering → crowds →
//! gatherings, checked against the generator's planted ground truth.

use gathering_patterns::prelude::*;
use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};
use gpdt_workload::{EventKind, EventRates};

/// A rush-hour scenario with enough planted structure to be interesting but
/// small enough for CI.
fn scenario() -> gpdt_workload::GeneratedScenario {
    let mut config = ScenarioConfig::small_demo(2024);
    config.num_taxis = 300;
    config.duration = 150;
    config.area_size = 12_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [6.0, 6.0, 6.0],
        venues_per_hour: [4.0, 4.0, 4.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    generate_scenario(&config)
}

fn pipeline_config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(12, 15, 300.0))
        .gathering(GatheringParams::new(10, 12))
        .build()
        .unwrap()
}

#[test]
fn planted_jams_are_recovered_as_gatherings() {
    let scenario = scenario();
    let jams = scenario.events_of_kind(EventKind::TrafficJam);
    assert!(!jams.is_empty(), "the scenario must plant at least one jam");

    let result = GatheringPipeline::new(pipeline_config()).discover(&scenario.database);
    assert!(result.crowd_count() > 0);
    assert!(result.gathering_count() > 0);

    // Every planted jam that ran long enough must be matched by a gathering
    // that overlaps it in time and shares most of its committed core.
    let mut recovered = 0usize;
    for jam in &jams {
        if jam.duration() < 25 {
            continue; // too short for the configured kc once arrival time is accounted for
        }
        let matched = result.gatherings.iter().any(|g| {
            g.crowd().interval().intersect(&jam.interval).is_some()
                && jam
                    .core_members
                    .iter()
                    .filter(|m| g.participators().contains(m))
                    .count()
                    >= jam.core_members.len() / 2
        });
        if matched {
            recovered += 1;
        }
    }
    let eligible = jams.iter().filter(|j| j.duration() >= 25).count();
    assert!(
        recovered * 10 >= eligible * 8,
        "recovered only {recovered}/{eligible} planted jams"
    );
}

#[test]
fn venue_churn_does_not_produce_gatherings_of_transients() {
    let scenario = scenario();
    let venues = scenario.events_of_kind(EventKind::Venue);
    assert!(!venues.is_empty());
    let result = GatheringPipeline::new(pipeline_config()).discover(&scenario.database);

    // No gathering should list five or more of a venue's transient visitors
    // as participators: they never stay `kp` minutes at the venue.  (A taxi
    // that later commits to a jam or convoy is excluded from the check —
    // there it legitimately becomes a participator.)
    let committed_elsewhere: std::collections::HashSet<ObjectId> = scenario
        .events
        .iter()
        .filter(|e| !matches!(e.kind, EventKind::Venue))
        .flat_map(|e| e.core_members.iter().copied())
        .collect();
    for venue in &venues {
        for gathering in &result.gatherings {
            let transient_participators = venue
                .transient_members
                .iter()
                .filter(|m| !committed_elsewhere.contains(m))
                .filter(|m| gathering.participators().contains(m))
                .count();
            assert!(
                transient_participators < 5,
                "a gathering claims {transient_participators} transient venue visitors as participators"
            );
        }
    }
}

#[test]
fn gatherings_respect_configured_thresholds() {
    let scenario = scenario();
    let config = pipeline_config();
    let result = GatheringPipeline::new(config).discover(&scenario.database);
    for gathering in &result.gatherings {
        assert!(gathering.lifetime() >= config.crowd.kc);
        assert!(gathering.participators().len() >= config.gathering.mp);
        // Every cluster of the gathering holds at least mp participators.
        for id in gathering.crowd().cluster_ids() {
            let cluster = result.clusters.cluster(*id).unwrap();
            assert!(cluster.len() >= config.crowd.mc);
            let present = gathering
                .participators()
                .iter()
                .filter(|p| cluster.contains(**p))
                .count();
            assert!(present >= config.gathering.mp);
        }
    }
    for crowd in &result.crowds {
        assert!(crowd.is_valid_crowd(&result.clusters, &config.crowd));
    }
}
