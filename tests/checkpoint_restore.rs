//! Checkpoint/restore equivalence: restoring a `GatheringEngine` from a
//! checkpoint taken at *any* tick boundary and continuing the stream must
//! yield discovery output identical to an uninterrupted run — for every
//! range-search strategy × detection variant combination, like
//! `streaming_equivalence.rs`.
//!
//! The checkpoints cross process-memory in serialised form only (a byte
//! vector standing in for the file a crashed monitor would reload), so the
//! test exercises the full codec round trip of the engine state.

use gathering_patterns::prelude::*;
use gpdt_core::GatheringEngine;
use gpdt_store::{checkpoint_to_vec, restore_from_slice};
use gpdt_trajectory::TimeInterval;
use gpdt_workload::EventRates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scenario(seed: u64, duration: u32) -> gpdt_workload::GeneratedScenario {
    let mut config = ScenarioConfig::small_demo(seed);
    config.num_taxis = 120;
    config.duration = duration;
    config.area_size = 7_000.0;
    config.event_rates = EventRates {
        jams_per_hour: [8.0, 8.0, 8.0],
        venues_per_hour: [4.0, 4.0, 4.0],
        convoys_per_hour: [2.0, 2.0, 2.0],
    };
    generate_scenario(&config)
}

fn config() -> GatheringConfig {
    GatheringConfig::builder()
        .clustering(ClusteringParams::new(200.0, 5))
        .crowd(CrowdParams::new(10, 8, 300.0))
        .gathering(GatheringParams::new(8, 6))
        .build()
        .unwrap()
}

#[test]
fn restore_at_random_boundaries_matches_uninterrupted_run() {
    let duration = 48u32;
    let scenario = scenario(2026, duration);
    let config = config();
    let full_clusters = ClusterDatabase::build(&scenario.database, &config.clustering);
    let mut rng = StdRng::seed_from_u64(41);

    for strategy in RangeSearchStrategy::ALL {
        for variant in TadVariant::ALL {
            // Uninterrupted reference run over the whole stream.
            let mut reference = GatheringEngine::new(config)
                .with_strategy(strategy)
                .with_variant(variant);
            reference.ingest_clusters(full_clusters.clone());
            assert!(
                !reference.closed_crowds().is_empty(),
                "{strategy}/{variant}: the scenario must produce crowds"
            );

            // Interrupted run: stream tick by tick, "crash" at two random
            // boundaries, each time reviving the engine purely from its
            // serialised checkpoint.
            let mut cuts: Vec<u32> = (0..2).map(|_| rng.gen_range(1..duration)).collect();
            cuts.sort_unstable();
            cuts.dedup();

            let mut engine = GatheringEngine::new(config)
                .with_strategy(strategy)
                .with_variant(variant);
            for t in 0..duration {
                let batch = ClusterDatabase::build_interval(
                    &scenario.database,
                    &config.clustering,
                    TimeInterval::new(t, t),
                );
                engine.ingest_clusters(batch);
                if cuts.contains(&t) {
                    let bytes = checkpoint_to_vec(&engine);
                    drop(engine);
                    engine = restore_from_slice(&bytes)
                        .unwrap_or_else(|err| panic!("{strategy}/{variant} restore: {err}"));
                    assert_eq!(
                        engine.strategy(),
                        strategy,
                        "restore must preserve the strategy"
                    );
                    assert_eq!(
                        engine.variant(),
                        variant,
                        "restore must preserve the variant"
                    );
                }
            }

            assert_eq!(
                engine.closed_crowds(),
                reference.closed_crowds(),
                "{strategy}/{variant} crowds after restore at {cuts:?}"
            );
            assert_eq!(
                engine.gatherings(),
                reference.gatherings(),
                "{strategy}/{variant} gatherings after restore at {cuts:?}"
            );
            assert_eq!(
                engine.finalized_records().len(),
                reference.finalized_records().len(),
                "{strategy}/{variant} finalized records after restore at {cuts:?}"
            );
        }
    }
}

#[test]
fn checkpoint_bytes_are_deterministic_and_stable_across_roundtrips() {
    let duration = 30u32;
    let scenario = scenario(7, duration);
    let config = config();
    let mut engine = GatheringEngine::new(config);
    engine.ingest_trajectories(&scenario.database);

    // Checkpointing the same state twice yields identical bytes, and a
    // restored engine checkpoints back to the very same bytes — the format
    // has no hidden nondeterminism (maps, thread state, ...).
    let first = checkpoint_to_vec(&engine);
    let second = checkpoint_to_vec(&engine);
    assert_eq!(first, second);
    let restored = restore_from_slice(&first).unwrap();
    let third = checkpoint_to_vec(&restored);
    assert_eq!(first, third, "restore → checkpoint must be byte-identical");
}

#[test]
fn restored_engine_keeps_ingesting_trajectories() {
    // The checkpoint drops the streaming clusterer's cursor (it is derived
    // state); a restored engine must still pick up trajectory ingestion at
    // the right tick.
    let duration = 36u32;
    let scenario = scenario(99, duration);
    let config = config();

    let mut reference = GatheringEngine::new(config);
    reference.ingest_trajectories(&scenario.database);

    let mut engine = GatheringEngine::new(config);
    engine.ingest_trajectories_until(&scenario.database, duration / 2);
    let bytes = checkpoint_to_vec(&engine);
    let mut restored = restore_from_slice(&bytes).unwrap();
    restored.ingest_trajectories(&scenario.database);

    assert_eq!(restored.closed_crowds(), reference.closed_crowds());
    assert_eq!(restored.gatherings(), reference.gatherings());
    assert_eq!(restored.time_domain(), reference.time_domain());
}
