//! Offline stand-in for the subset of the `criterion` 0.5 API used by the
//! workspace benches.
//!
//! The build container has no network access to crates.io, so this shim keeps
//! the bench targets compiling and runnable. It performs a simple
//! warmup-plus-timed-batch measurement and prints mean wall-clock time per
//! iteration — adequate for relative comparisons, without criterion's
//! statistical machinery. Swap the `[patch]` entry in the workspace manifest
//! for the real crate when building with network access.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies a benchmark within a group, e.g. `BenchmarkId::new("exact", 64)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.name.fmt(f)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup round to populate caches and resolve lazy statics.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iters as u32);
    }
}

fn run_one(full_name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) -> Option<Duration> {
    let mut bencher = Bencher { iters, mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("bench {full_name:<48} {mean:>12.2?}/iter ({iters} iters)"),
        None => println!("bench {full_name:<48} (no measurement)"),
    }
    bencher.mean
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
    reports: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep smoke runs quick; raise via CRITERION_SHIM_ITERS for real timing.
        let iters = std::env::var("CRITERION_SHIM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion {
            iters,
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(mean) = run_one(name, self.iters, &mut f) {
            self.reports.push((name.to_string(), mean));
        }
        self
    }

    /// Measurements recorded so far: `(benchmark name, mean wall time per
    /// iteration)`, in execution order.  An extension over the real
    /// criterion API used by the `micro` binary to serialise its results as
    /// a JSON report.
    pub fn reports(&self) -> &[(String, Duration)] {
        &self.reports
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(1) as u64;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(mean) = run_one(&full, self.criterion.iters, &mut f) {
            self.criterion.reports.push((full, mean));
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(mean) = run_one(&full, self.criterion.iters, &mut |b| f(b, input)) {
            self.criterion.reports.push((full, mean));
        }
        self
    }

    pub fn finish(self) {}
}

/// Throughput hints; accepted and ignored by the shim.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion {
            iters: 3,
            reports: Vec::new(),
        };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.bench_with_input(BenchmarkId::new("f", 1), &5u32, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                })
            });
            g.finish();
        }
        // One warmup + three timed iterations.
        assert_eq!(calls, 4);
        // The measurement is recorded for report serialisation.
        assert_eq!(c.reports().len(), 1);
        assert_eq!(c.reports()[0].0, "t/f/1");
    }
}
