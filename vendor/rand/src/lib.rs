//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a deterministic, dependency-free PRNG with the same call surface
//! the workload generator and benches rely on: `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction family the real `rand_xoshiro` crate uses. It is *not* the
//! bit-for-bit `StdRng` of upstream `rand`; the workspace only requires that
//! streams are deterministic per seed, which the workload determinism tests
//! enforce.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state would make xoshiro emit zeros forever.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Types that can be sampled uniformly from the unit interval / full range,
/// mirroring `rand`'s `Standard` distribution for the types the workspace uses.
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that `Rng::gen_range` accepts, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty f64 range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(offset) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty integer range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $ty;
                }
                let offset = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(offset) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random value generation, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&j));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }
}
