//! Spatial indexes over snapshot clusters.
//!
//! The crowd-discovery range search must repeatedly answer the question
//! *"which clusters at the next timestamp are within Hausdorff distance δ of
//! this cluster?"*.  This crate provides the two index families the paper
//! evaluates (§III-A):
//!
//! * [`rtree`] — an R-tree over cluster MBRs supporting
//!   * the **SR** query (prune with `dmin`, Lemma 2) and
//!   * the **IR** query (prune with the tighter `dside` bound, Lemma 3);
//! * [`grid`] — a grid index sharing one [`gpdt_geo::GridGeometry`] across
//!   all timestamps, with per-cluster cell lists, per-cell inverted lists and
//!   the affect-region pruning + refinement of §III-A.2 (the **GRID**
//!   strategy), which decides `dH ≤ δ` without ever computing an exact
//!   Hausdorff distance.
//!
//! Both indexes are generic over "a set of point sets": they know nothing
//! about object ids or timestamps, which keeps them reusable and keeps this
//! crate's dependencies to `gpdt-geo` only.

pub mod grid;
pub mod rtree;

pub use grid::{GridBuildScratch, GridClusterIndex, PreparedQuery};
pub use rtree::RTree;
