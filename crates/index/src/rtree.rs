//! An R-tree over cluster minimum bounding rectangles.
//!
//! The tree is bulk-loaded with the Sort-Tile-Recursive (STR) algorithm —
//! crowd discovery rebuilds the index for each timestamp from that
//! timestamp's cluster set, so bulk loading is the natural construction — and
//! additionally supports incremental insertion for callers that maintain a
//! long-lived index.
//!
//! Two range queries are provided, matching the paper's two R-tree pruning
//! schemes:
//!
//! * [`RTree::range_by_min_distance`] — the **SR** scheme: report entries
//!   whose MBR is within minimum distance `δ` of the query MBR (`dmin`,
//!   Lemma 2).
//! * [`RTree::range_by_side_distance`] — the **IR** scheme: report entries
//!   within the tighter `dside` bound (Lemma 3).  During traversal a node is
//!   only descended if it intersects *all four* side rectangles of the query
//!   MBR enlarged by `δ`, exactly as described in §III-A.1.

use gpdt_geo::Mbr;

/// Maximum number of entries/children per node.
const MAX_FILL: usize = 16;
/// Minimum number of children for a split node (not used by STR loading but
/// kept for incremental insertion splits).
const MIN_FILL: usize = MAX_FILL / 4;

/// An entry stored in the tree: a rectangle and the caller's identifier for
/// it (typically the index of a snapshot cluster within its timestamp's
/// cluster set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Bounding rectangle of the indexed item.
    pub mbr: Mbr,
    /// Caller-supplied identifier.
    pub id: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { mbr: Mbr, entries: Vec<Entry> },
    Inner { mbr: Mbr, children: Vec<Node> },
}

impl Node {
    fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } => mbr,
            Node::Inner { mbr, .. } => mbr,
        }
    }

    fn recompute_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                let mut m = entries[0].mbr;
                for e in &entries[1..] {
                    m.expand_to_mbr(&e.mbr);
                }
                *mbr = m;
            }
            Node::Inner { mbr, children } => {
                let mut m = *children[0].mbr();
                for c in &children[1..] {
                    m.expand_to_mbr(c.mbr());
                }
                *mbr = m;
            }
        }
    }
}

/// An R-tree over [`Entry`] rectangles.
#[derive(Debug, Clone, Default)]
pub struct RTree {
    root: Option<Node>,
    len: usize,
}

impl RTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bulk-loads the tree with Sort-Tile-Recursive packing.
    pub fn bulk_load(mut entries: Vec<Entry>) -> Self {
        Self::bulk_load_slice(&mut entries)
    }

    /// Like [`RTree::bulk_load`], packing from a mutable slice (sorted in
    /// place) so callers can reuse one entry buffer across many builds.
    pub fn bulk_load_slice(entries: &mut [Entry]) -> Self {
        let len = entries.len();
        if entries.is_empty() {
            return RTree::new();
        }
        // STR: sort by centre x, slice into vertical strips, sort each strip
        // by centre y and pack runs of MAX_FILL entries into leaves.
        entries.sort_by(|a, b| {
            a.mbr
                .center()
                .x
                .partial_cmp(&b.mbr.center().x)
                .expect("finite MBR centres")
        });
        let leaf_count = len.div_ceil(MAX_FILL);
        let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
        let strip_size = len.div_ceil(strip_count);

        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for strip in entries.chunks_mut(strip_size.max(1)) {
            strip.sort_by(|a, b| {
                a.mbr
                    .center()
                    .y
                    .partial_cmp(&b.mbr.center().y)
                    .expect("finite MBR centres")
            });
            for run in strip.chunks(MAX_FILL) {
                let mut node = Node::Leaf {
                    mbr: run[0].mbr,
                    entries: run.to_vec(),
                };
                node.recompute_mbr();
                leaves.push(node);
            }
        }
        let root = Self::pack_upwards(leaves);
        RTree {
            root: Some(root),
            len,
        }
    }

    fn pack_upwards(mut nodes: Vec<Node>) -> Node {
        while nodes.len() > 1 {
            // Re-sort by centre x then tile, mirroring the leaf-level STR
            // pass one level up.
            nodes.sort_by(|a, b| {
                a.mbr()
                    .center()
                    .x
                    .partial_cmp(&b.mbr().center().x)
                    .expect("finite MBR centres")
            });
            let mut next: Vec<Node> = Vec::with_capacity(nodes.len().div_ceil(MAX_FILL));
            let parent_count = nodes.len().div_ceil(MAX_FILL);
            let strip_count = (parent_count as f64).sqrt().ceil() as usize;
            let strip_size = nodes.len().div_ceil(strip_count.max(1));
            let mut strips: Vec<Vec<Node>> = Vec::new();
            let mut current = nodes;
            while !current.is_empty() {
                let rest = current.split_off(current.len().min(strip_size));
                strips.push(current);
                current = rest;
            }
            for mut strip in strips {
                strip.sort_by(|a, b| {
                    a.mbr()
                        .center()
                        .y
                        .partial_cmp(&b.mbr().center().y)
                        .expect("finite MBR centres")
                });
                while !strip.is_empty() {
                    let rest = strip.split_off(strip.len().min(MAX_FILL));
                    let mut node = Node::Inner {
                        mbr: *strip[0].mbr(),
                        children: strip,
                    };
                    node.recompute_mbr();
                    next.push(node);
                    strip = rest;
                }
            }
            nodes = next;
        }
        nodes.pop().expect("non-empty input")
    }

    /// Inserts a single entry (quadratic-split R-tree insertion).
    pub fn insert(&mut self, entry: Entry) {
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    mbr: entry.mbr,
                    entries: vec![entry],
                });
            }
            Some(mut root) => {
                if let Some(sibling) = Self::insert_into(&mut root, entry) {
                    // Root split: grow the tree by one level.
                    let mut new_root = Node::Inner {
                        mbr: *root.mbr(),
                        children: vec![root, sibling],
                    };
                    new_root.recompute_mbr();
                    self.root = Some(new_root);
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    fn insert_into(node: &mut Node, entry: Entry) -> Option<Node> {
        match node {
            Node::Leaf { entries, .. } => {
                entries.push(entry);
                let split = if entries.len() > MAX_FILL {
                    Some(Self::split_leaf(entries))
                } else {
                    None
                };
                node.recompute_mbr();
                split
            }
            Node::Inner { children, .. } => {
                // Choose the child needing the least enlargement (ties: least
                // area).
                let best = children
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let ea = a.mbr().enlargement(&entry.mbr);
                        let eb = b.mbr().enlargement(&entry.mbr);
                        ea.partial_cmp(&eb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(
                                a.mbr()
                                    .area()
                                    .partial_cmp(&b.mbr().area())
                                    .unwrap_or(std::cmp::Ordering::Equal),
                            )
                    })
                    .map(|(i, _)| i)
                    .expect("inner nodes have children");
                let maybe_split = Self::insert_into(&mut children[best], entry);
                if let Some(sibling) = maybe_split {
                    children.push(sibling);
                }
                let split = if children.len() > MAX_FILL {
                    Some(Self::split_inner(children))
                } else {
                    None
                };
                node.recompute_mbr();
                split
            }
        }
    }

    fn split_leaf(entries: &mut Vec<Entry>) -> Node {
        // Simple linear split: separate along the axis with the widest spread
        // of centres.
        entries.sort_by(|a, b| {
            a.mbr
                .center()
                .x
                .partial_cmp(&b.mbr.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let spread_x = entries.last().unwrap().mbr.center().x - entries[0].mbr.center().x;
        let mut by_y = entries.clone();
        by_y.sort_by(|a, b| {
            a.mbr
                .center()
                .y
                .partial_cmp(&b.mbr.center().y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let spread_y = by_y.last().unwrap().mbr.center().y - by_y[0].mbr.center().y;
        if spread_y > spread_x {
            *entries = by_y;
        }
        let keep = entries.len() - MIN_FILL.max(entries.len() / 2);
        let moved = entries.split_off(keep);
        let mut sibling = Node::Leaf {
            mbr: moved[0].mbr,
            entries: moved,
        };
        sibling.recompute_mbr();
        sibling
    }

    fn split_inner(children: &mut Vec<Node>) -> Node {
        children.sort_by(|a, b| {
            a.mbr()
                .center()
                .x
                .partial_cmp(&b.mbr().center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let keep = children.len() - MIN_FILL.max(children.len() / 2);
        let moved = children.split_off(keep);
        let mut sibling = Node::Inner {
            mbr: *moved[0].mbr(),
            children: moved,
        };
        sibling.recompute_mbr();
        sibling
    }

    /// **SR query**: ids of all entries whose MBR is within minimum distance
    /// `delta` of `query` (`dmin(query, entry) ≤ delta`).
    ///
    /// By Lemma 2 this is a superset of the clusters within Hausdorff
    /// distance `delta`; callers refine the survivors.
    pub fn range_by_min_distance(&self, query: &Mbr, delta: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                if node.mbr().min_distance(query) > delta {
                    continue;
                }
                match node {
                    Node::Leaf { entries, .. } => {
                        for e in entries {
                            if query.min_distance(&e.mbr) <= delta {
                                out.push(e.id);
                            }
                        }
                    }
                    Node::Inner { children, .. } => stack.extend(children.iter()),
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// **IR query**: ids of all entries within the `dside` bound of `query`
    /// (`dside(query, entry) ≤ delta`, Lemma 3).
    ///
    /// Traversal enlarges each of the four sides of `query` by `delta`; a
    /// node is descended only if its MBR intersects all four enlarged side
    /// rectangles (a node that misses one cannot contain any entry with
    /// `dside ≤ delta`).
    pub fn range_by_side_distance(&self, query: &Mbr, delta: f64) -> Vec<usize> {
        let side_windows: Vec<Mbr> = query.sides().iter().map(|s| s.enlarged(delta)).collect();
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                if !side_windows.iter().all(|w| w.intersects(node.mbr())) {
                    continue;
                }
                match node {
                    Node::Leaf { entries, .. } => {
                        for e in entries {
                            if query.side_distance(&e.mbr) <= delta {
                                out.push(e.id);
                            }
                        }
                    }
                    Node::Inner { children, .. } => stack.extend(children.iter()),
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Ids of all entries whose MBR intersects `window` (plain window query).
    pub fn window_query(&self, window: &Mbr) -> Vec<usize> {
        self.range_by_min_distance(window, 0.0)
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Inner { children, .. } => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        self.root.as_ref().map(depth).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_geo::Point;

    fn entry(id: usize, x: f64, y: f64, w: f64, h: f64) -> Entry {
        Entry {
            id,
            mbr: Mbr::new(x, y, x + w, y + h),
        }
    }

    fn grid_entries(n: usize, spacing: f64) -> Vec<Entry> {
        (0..n)
            .map(|i| {
                let col = (i % 10) as f64;
                let row = (i / 10) as f64;
                entry(i, col * spacing, row * spacing, 1.0, 1.0)
            })
            .collect()
    }

    /// Brute-force oracles for the two range predicates.
    fn brute_dmin(entries: &[Entry], q: &Mbr, delta: f64) -> Vec<usize> {
        let mut v: Vec<usize> = entries
            .iter()
            .filter(|e| q.min_distance(&e.mbr) <= delta)
            .map(|e| e.id)
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_dside(entries: &[Entry], q: &Mbr, delta: f64) -> Vec<usize> {
        let mut v: Vec<usize> = entries
            .iter()
            .filter(|e| q.side_distance(&e.mbr) <= delta)
            .map(|e| e.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
        let q = Mbr::new(0.0, 0.0, 1.0, 1.0);
        assert!(t.range_by_min_distance(&q, 10.0).is_empty());
        assert!(t.range_by_side_distance(&q, 10.0).is_empty());
    }

    #[test]
    fn bulk_load_stores_all_entries() {
        let entries = grid_entries(57, 10.0);
        let t = RTree::bulk_load(entries.clone());
        assert_eq!(t.len(), 57);
        assert!(t.height() >= 2);
        // A window covering everything returns every id.
        let all = t.window_query(&Mbr::new(-1.0, -1.0, 1000.0, 1000.0));
        assert_eq!(all, (0..57).collect::<Vec<_>>());
    }

    #[test]
    fn dmin_query_matches_bruteforce() {
        let entries = grid_entries(100, 7.0);
        let t = RTree::bulk_load(entries.clone());
        for (qx, qy, delta) in [(0.0, 0.0, 5.0), (35.0, 35.0, 10.0), (70.0, 0.0, 0.5)] {
            let q = Mbr::new(qx, qy, qx + 3.0, qy + 3.0);
            assert_eq!(
                t.range_by_min_distance(&q, delta),
                brute_dmin(&entries, &q, delta),
                "query at ({qx},{qy}) delta {delta}"
            );
        }
    }

    #[test]
    fn dside_query_matches_bruteforce() {
        let entries = grid_entries(100, 7.0);
        let t = RTree::bulk_load(entries.clone());
        for (qx, qy, delta) in [(0.0, 0.0, 5.0), (35.0, 35.0, 12.0), (70.0, 0.0, 3.0)] {
            let q = Mbr::new(qx, qy, qx + 6.0, qy + 6.0);
            assert_eq!(
                t.range_by_side_distance(&q, delta),
                brute_dside(&entries, &q, delta),
                "query at ({qx},{qy}) delta {delta}"
            );
        }
    }

    #[test]
    fn dside_results_are_subset_of_dmin_results() {
        let entries = grid_entries(80, 9.0);
        let t = RTree::bulk_load(entries);
        let q = Mbr::new(20.0, 20.0, 30.0, 30.0);
        let delta = 15.0;
        let dmin_ids = t.range_by_min_distance(&q, delta);
        let dside_ids = t.range_by_side_distance(&q, delta);
        for id in &dside_ids {
            assert!(dmin_ids.contains(id));
        }
        assert!(dside_ids.len() <= dmin_ids.len());
    }

    #[test]
    fn incremental_insert_matches_bulk_load_results() {
        let entries = grid_entries(64, 5.0);
        let bulk = RTree::bulk_load(entries.clone());
        let mut incremental = RTree::new();
        for e in &entries {
            incremental.insert(*e);
        }
        assert_eq!(incremental.len(), bulk.len());
        let q = Mbr::new(11.0, 11.0, 13.0, 13.0);
        for delta in [0.0, 2.0, 8.0, 30.0] {
            assert_eq!(
                incremental.range_by_min_distance(&q, delta),
                bulk.range_by_min_distance(&q, delta)
            );
            assert_eq!(
                incremental.range_by_side_distance(&q, delta),
                bulk.range_by_side_distance(&q, delta)
            );
        }
    }

    #[test]
    fn single_entry_tree() {
        let t = RTree::bulk_load(vec![entry(7, 10.0, 10.0, 2.0, 2.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let q = Mbr::from_point(Point::new(0.0, 10.0));
        assert_eq!(t.range_by_min_distance(&q, 10.0), vec![7]);
        assert!(t.range_by_min_distance(&q, 9.9).is_empty());
    }

    #[test]
    fn window_query_returns_intersecting_only() {
        let entries = vec![
            entry(0, 0.0, 0.0, 1.0, 1.0),
            entry(1, 5.0, 5.0, 1.0, 1.0),
            entry(2, 0.5, 0.5, 1.0, 1.0),
        ];
        let t = RTree::bulk_load(entries);
        assert_eq!(t.window_query(&Mbr::new(0.0, 0.0, 2.0, 2.0)), vec![0, 2]);
        assert_eq!(t.window_query(&Mbr::new(5.5, 5.5, 6.0, 6.0)), vec![1]);
        assert!(t
            .window_query(&Mbr::new(100.0, 100.0, 101.0, 101.0))
            .is_empty());
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mbr(rng: &mut StdRng) -> Mbr {
        let x = rng.gen_range(-500.0..500.0);
        let y = rng.gen_range(-500.0..500.0);
        let w = rng.gen_range(0.0..50.0);
        let h = rng.gen_range(0.0..50.0);
        Mbr::new(x, y, x + w, y + h)
    }

    fn random_entries(rng: &mut StdRng, min: usize, max: usize) -> Vec<Entry> {
        let n = rng.gen_range(min..max);
        (0..n)
            .map(|id| Entry {
                id,
                mbr: random_mbr(rng),
            })
            .collect()
    }

    /// The R-tree dmin query equals a linear scan for random data.
    #[test]
    fn dmin_query_equals_linear_scan() {
        let mut rng = StdRng::seed_from_u64(0xb1);
        for _ in 0..256 {
            let entries = random_entries(&mut rng, 0, 80);
            let query = random_mbr(&mut rng);
            let delta = rng.gen_range(0.0..200.0);
            let tree = RTree::bulk_load(entries.clone());
            let mut expected: Vec<usize> = entries
                .iter()
                .filter(|e| query.min_distance(&e.mbr) <= delta)
                .map(|e| e.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(tree.range_by_min_distance(&query, delta), expected);
        }
    }

    /// The R-tree dside query equals a linear scan for random data.
    #[test]
    fn dside_query_equals_linear_scan() {
        let mut rng = StdRng::seed_from_u64(0xb2);
        for _ in 0..256 {
            let entries = random_entries(&mut rng, 0, 80);
            let query = random_mbr(&mut rng);
            let delta = rng.gen_range(0.0..200.0);
            let tree = RTree::bulk_load(entries.clone());
            let mut expected: Vec<usize> = entries
                .iter()
                .filter(|e| query.side_distance(&e.mbr) <= delta)
                .map(|e| e.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(tree.range_by_side_distance(&query, delta), expected);
        }
    }

    /// Insertion-built trees answer queries identically to bulk-loaded ones.
    #[test]
    fn insert_equals_bulk_load() {
        let mut rng = StdRng::seed_from_u64(0xb3);
        for _ in 0..256 {
            let entries = random_entries(&mut rng, 1, 60);
            let query = random_mbr(&mut rng);
            let delta = rng.gen_range(0.0..100.0);
            let bulk = RTree::bulk_load(entries.clone());
            let mut incr = RTree::new();
            for e in &entries {
                incr.insert(*e);
            }
            assert_eq!(
                bulk.range_by_min_distance(&query, delta),
                incr.range_by_min_distance(&query, delta)
            );
        }
    }
}
