//! The grid index over snapshot clusters (§III-A.2 of the paper).
//!
//! All timestamps share a single [`GridGeometry`] whose cell side is
//! `√2/2·δ`.  For one timestamp's cluster set the index stores
//!
//! * a **cell list** per cluster (`c.cl`) — the cells occupied by the
//!   cluster's points,
//! * an **inverted list** per cell (`g.inv`) — the clusters occupying the
//!   cell, and
//! * the points of each cluster grouped by cell, which the refinement step
//!   uses to answer nearest-neighbour-within-affect-region probes.
//!
//! Everything is laid out flat, CSR-style: one sorted cell array with offset
//! ranges per cluster, one point array grouped by (cluster, cell), and one
//! sorted inverted-list array — cell lookups are binary searches instead of
//! hash probes, and building an index is a handful of bulk writes into
//! reusable buffers ([`GridBuildScratch`]) rather than a web of per-cell
//! `HashMap` allocations.
//!
//! The range search works in a pruning/refinement style:
//!
//! 1. *Pruning* ([`GridClusterIndex::candidates`]): a cluster `cj` survives
//!    only if its cell list intersects the affect region of **every** cell of
//!    the query cluster `ci` — otherwise some point of `ci` is farther than
//!    `δ` from all of `cj`.
//! 2. *Refinement* ([`GridClusterIndex::within_delta`]): points of either
//!    cluster lying in cells shared by both are within `δ` of the other
//!    cluster for free (the cell diagonal is `δ`); only points in the
//!    symmetric difference of the cell lists are probed, and each probe only
//!    inspects the other cluster's points inside the probe cell's affect
//!    region.  This decides `dH ≤ δ` exactly, without ever computing the full
//!    Hausdorff distance.
//!
//! Queries that refine one cluster against many candidates should bucket the
//! query once with [`GridClusterIndex::prepare_query`] and refine through
//! [`GridClusterIndex::within_delta_prepared`].

use gpdt_geo::{CellCoord, GridGeometry, Point, PointAccess};

/// Reusable scratch buffers for [`GridClusterIndex::build_with`]: the
/// per-cluster sort order and cell keys.  Hold one per worker and reuse it
/// across ticks to keep index construction free of temporary allocations.
#[derive(Debug, Clone, Default)]
pub struct GridBuildScratch {
    keys: Vec<CellCoord>,
    order: Vec<u32>,
}

/// Grid index over the clusters of one timestamp.
#[derive(Debug, Clone)]
pub struct GridClusterIndex {
    geometry: GridGeometry,
    /// Per cluster: range into `cells` / `cell_point_starts`.
    cluster_cells: Vec<(u32, u32)>,
    /// Occupied cells, sorted within each cluster's range (`c.cl`).
    cells: Vec<CellCoord>,
    /// Parallel to `cells`: start of the cell's points in the coordinate
    /// columns; the end is the next entry (cells of one cluster cover a
    /// contiguous point range, and a trailing sentinel closes the last
    /// cell).
    cell_point_starts: Vec<u32>,
    /// All clusters' point coordinates, grouped by (cluster, cell), as
    /// parallel columns (SoA) so refinement probes stream dense `f64` runs.
    pxs: Vec<f64>,
    pys: Vec<f64>,
    /// Inverted list (`g.inv`): sorted unique cells …
    inv_cells: Vec<CellCoord>,
    /// … with offset ranges into `inv_ids` (one trailing sentinel).
    inv_starts: Vec<u32>,
    /// Cluster ids occupying each inverted-list cell, ascending.
    inv_ids: Vec<u32>,
}

/// A query cluster bucketed under an index's geometry: its points grouped by
/// cell, ready for repeated refinement probes against many candidates.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// Sorted unique cells of the query cluster (`ci.cl`).
    cells: Vec<CellCoord>,
    /// Offsets into the coordinate columns (one trailing sentinel).
    starts: Vec<u32>,
    /// The query's point coordinates, grouped by cell, as parallel columns.
    qxs: Vec<f64>,
    qys: Vec<f64>,
}

impl PreparedQuery {
    /// The query's cell list (sorted, deduplicated).
    pub fn cells(&self) -> &[CellCoord] {
        &self.cells
    }
}

impl GridClusterIndex {
    /// Builds the index for a set of clusters, given as point sets.
    ///
    /// Cluster `i` in the input is referred to as id `i` in all query
    /// results.
    pub fn build<S: AsRef<[Point]>>(geometry: GridGeometry, clusters: &[S]) -> Self {
        Self::build_with(geometry, clusters, &mut GridBuildScratch::default())
    }

    /// Like [`GridClusterIndex::build`], reusing the caller's scratch
    /// buffers for the intermediate sorts.
    pub fn build_with<S: AsRef<[Point]>>(
        geometry: GridGeometry,
        clusters: &[S],
        scratch: &mut GridBuildScratch,
    ) -> Self {
        let slices: Vec<&[Point]> = clusters.iter().map(|c| c.as_ref()).collect();
        Self::build_access(geometry, &slices, scratch)
    }

    /// Like [`GridClusterIndex::build_with`], generic over the point layout
    /// of the input clusters (`&[Point]` or columnar `PointsView`s).
    pub fn build_access<P: PointAccess>(
        geometry: GridGeometry,
        clusters: &[P],
        scratch: &mut GridBuildScratch,
    ) -> Self {
        let total_points: usize = clusters.iter().map(|c| c.len()).sum();
        let mut index = GridClusterIndex {
            geometry,
            cluster_cells: Vec::with_capacity(clusters.len()),
            cells: Vec::new(),
            cell_point_starts: Vec::new(),
            pxs: Vec::with_capacity(total_points),
            pys: Vec::with_capacity(total_points),
            inv_cells: Vec::new(),
            inv_starts: Vec::new(),
            inv_ids: Vec::new(),
        };
        for cluster in clusters {
            let cell_start = index.cells.len() as u32;
            bucket_points(
                &geometry,
                *cluster,
                scratch,
                &mut index.cells,
                &mut index.cell_point_starts,
                &mut index.pxs,
                &mut index.pys,
            );
            index
                .cluster_cells
                .push((cell_start, index.cells.len() as u32));
        }
        index.cell_point_starts.push(index.pxs.len() as u32);

        // Inverted list: (cell, cluster) pairs sorted by cell then cluster.
        let mut pairs: Vec<(CellCoord, u32)> = Vec::with_capacity(index.cells.len());
        for (id, &(start, end)) in index.cluster_cells.iter().enumerate() {
            for &cell in &index.cells[start as usize..end as usize] {
                pairs.push((cell, id as u32));
            }
        }
        pairs.sort_unstable();
        for &(cell, id) in &pairs {
            if index.inv_cells.last() != Some(&cell) {
                index.inv_cells.push(cell);
                index.inv_starts.push(index.inv_ids.len() as u32);
            }
            index.inv_ids.push(id);
        }
        index.inv_starts.push(index.inv_ids.len() as u32);
        index
    }

    /// The shared grid geometry.
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// Number of indexed clusters.
    pub fn len(&self) -> usize {
        self.cluster_cells.len()
    }

    /// Returns `true` if no cluster is indexed.
    pub fn is_empty(&self) -> bool {
        self.cluster_cells.is_empty()
    }

    /// The cell list of indexed cluster `idx`.
    pub fn cell_list(&self, idx: usize) -> &[CellCoord] {
        let (start, end) = self.cluster_cells[idx];
        &self.cells[start as usize..end as usize]
    }

    /// Computes the cell list of an external (query) cluster under this
    /// index's geometry.
    pub fn cell_list_of(&self, points: &[Point]) -> Vec<CellCoord> {
        self.cell_list_of_access(points)
    }

    /// [`GridClusterIndex::cell_list_of`] generic over the point layout.
    pub fn cell_list_of_access<P: PointAccess>(&self, points: P) -> Vec<CellCoord> {
        let mut cells: Vec<CellCoord> = (0..points.len())
            .map(|i| self.geometry.cell_of_xy(points.x(i), points.y(i)))
            .collect();
        cells.sort();
        cells.dedup();
        cells
    }

    /// Buckets a query cluster's points by cell for repeated refinement
    /// probes (one sort instead of one rebucketing per candidate).
    pub fn prepare_query(&self, points: &[Point]) -> PreparedQuery {
        self.prepare_query_access(points)
    }

    /// [`GridClusterIndex::prepare_query`] generic over the point layout.
    pub fn prepare_query_access<P: PointAccess>(&self, points: P) -> PreparedQuery {
        // Sort (cell, point) pairs directly: refinement probes only scan
        // buckets, so the within-cell point order is irrelevant and no index
        // indirection (or scratch buffer) is needed.
        let mut pairs: Vec<(CellCoord, Point)> = (0..points.len())
            .map(|i| {
                (
                    self.geometry.cell_of_xy(points.x(i), points.y(i)),
                    points.point(i),
                )
            })
            .collect();
        pairs.sort_unstable_by_key(|&(cell, _)| cell);
        let mut query = PreparedQuery {
            cells: Vec::new(),
            starts: Vec::new(),
            qxs: Vec::with_capacity(points.len()),
            qys: Vec::with_capacity(points.len()),
        };
        for &(cell, p) in &pairs {
            if query.cells.last() != Some(&cell) {
                query.cells.push(cell);
                query.starts.push(query.qxs.len() as u32);
            }
            query.qxs.push(p.x);
            query.qys.push(p.y);
        }
        query.starts.push(points.len() as u32);
        query
    }

    /// **Pruning phase**: ids of indexed clusters whose cell list intersects
    /// the affect region of every cell in `query_cells`.
    ///
    /// The result is a superset of the clusters within Hausdorff distance `δ`
    /// of the query cluster (the grid geometry must have been built with
    /// [`GridGeometry::for_delta`] for that `δ`).
    pub fn candidates(&self, query_cells: &[CellCoord]) -> Vec<usize> {
        if query_cells.is_empty() {
            return Vec::new();
        }
        let mut survivors: Vec<u32> = Vec::new();
        let mut reachable: Vec<u32> = Vec::new();
        for (i, cell) in query_cells.iter().enumerate() {
            reachable.clear();
            for (dc, dr) in GridGeometry::AFFECT_OFFSETS {
                let probe = CellCoord::new(cell.col + dc, cell.row + dr);
                if let Ok(pos) = self.inv_cells.binary_search(&probe) {
                    let ids = &self.inv_ids
                        [self.inv_starts[pos] as usize..self.inv_starts[pos + 1] as usize];
                    reachable.extend_from_slice(ids);
                }
            }
            reachable.sort_unstable();
            reachable.dedup();
            if i == 0 {
                std::mem::swap(&mut survivors, &mut reachable);
            } else {
                survivors = intersect_sorted(&survivors, &reachable);
            }
            if survivors.is_empty() {
                return Vec::new();
            }
        }
        survivors.into_iter().map(|id| id as usize).collect()
    }

    /// **Refinement phase**: decides whether the Hausdorff distance between
    /// the query cluster and indexed cluster `candidate` is at most `delta`.
    ///
    /// Buckets the query on every call; callers probing many candidates
    /// should go through [`GridClusterIndex::prepare_query`] and
    /// [`GridClusterIndex::within_delta_prepared`] instead, which bucket the
    /// query once.
    pub fn within_delta(&self, query_points: &[Point], candidate: usize, delta: f64) -> bool {
        self.within_delta_prepared(&self.prepare_query(query_points), candidate, delta)
    }

    /// [`GridClusterIndex::within_delta`] against a pre-bucketed query.
    pub fn within_delta_prepared(
        &self,
        query: &PreparedQuery,
        candidate: usize,
        delta: f64,
    ) -> bool {
        let (cand_start, cand_end) = self.cluster_cells[candidate];
        let candidate_cells = &self.cells[cand_start as usize..cand_end as usize];
        let delta_sq = delta * delta;

        // Direction 1: every query point in a cell NOT shared with the
        // candidate must have a neighbour of the candidate within delta.
        // (Query points in shared cells are within delta of the candidate
        // point(s) in the same cell.)
        for (qi, &cell) in query.cells.iter().enumerate() {
            if candidate_cells.binary_search(&cell).is_ok() {
                continue;
            }
            for k in query.starts[qi] as usize..query.starts[qi + 1] as usize {
                if !self.candidate_has_point_near(
                    candidate,
                    query.qxs[k],
                    query.qys[k],
                    &cell,
                    delta_sq,
                ) {
                    return false;
                }
            }
        }

        // Direction 2: every candidate point in a cell NOT shared with the
        // query must have a query point within delta.
        for ci in cand_start as usize..cand_end as usize {
            let cell = self.cells[ci];
            if query.cells.binary_search(&cell).is_ok() {
                continue;
            }
            for k in self.cell_point_starts[ci] as usize..self.cell_point_starts[ci + 1] as usize {
                if !query_has_point_near(query, self.pxs[k], self.pys[k], &cell, delta_sq) {
                    return false;
                }
            }
        }
        true
    }

    /// Full range search: candidate generation followed by refinement.
    ///
    /// Returns the ids of all indexed clusters within Hausdorff distance
    /// `delta` of the query cluster.
    pub fn range_search(&self, query_points: &[Point], delta: f64) -> Vec<usize> {
        let query = self.prepare_query(query_points);
        self.candidates(query.cells())
            .into_iter()
            .filter(|&c| self.within_delta_prepared(&query, c, delta))
            .collect()
    }

    /// Does `candidate` have a point within `√delta_sq` of `(px, py)`?  Only
    /// the affect region of the point's cell can contain one.
    fn candidate_has_point_near(
        &self,
        candidate: usize,
        px: f64,
        py: f64,
        cell: &CellCoord,
        delta_sq: f64,
    ) -> bool {
        let (cand_start, cand_end) = self.cluster_cells[candidate];
        let candidate_cells = &self.cells[cand_start as usize..cand_end as usize];
        for (dc, dr) in GridGeometry::AFFECT_OFFSETS {
            let probe = CellCoord::new(cell.col + dc, cell.row + dr);
            let Ok(local) = candidate_cells.binary_search(&probe) else {
                continue;
            };
            let ci = cand_start as usize + local;
            let (lo, hi) = (
                self.cell_point_starts[ci] as usize,
                self.cell_point_starts[ci + 1] as usize,
            );
            // The CSR point copies are columnar, so the refinement probe
            // runs on the dispatched SIMD kernel (exact comparison —
            // identical verdict at every level).
            if gpdt_geo::simd::dispatch().any_within(
                &self.pxs[lo..hi],
                &self.pys[lo..hi],
                px,
                py,
                delta_sq,
            ) {
                return true;
            }
        }
        false
    }
}

/// Does the prepared query have a point within `√delta_sq` of `(px, py)`?
fn query_has_point_near(
    query: &PreparedQuery,
    px: f64,
    py: f64,
    cell: &CellCoord,
    delta_sq: f64,
) -> bool {
    for (dc, dr) in GridGeometry::AFFECT_OFFSETS {
        let probe = CellCoord::new(cell.col + dc, cell.row + dr);
        let Ok(qi) = query.cells.binary_search(&probe) else {
            continue;
        };
        let (lo, hi) = (query.starts[qi] as usize, query.starts[qi + 1] as usize);
        if gpdt_geo::simd::dispatch().any_within(
            &query.qxs[lo..hi],
            &query.qys[lo..hi],
            px,
            py,
            delta_sq,
        ) {
            return true;
        }
    }
    false
}

/// Sorts `points` by cell and appends the cluster's sorted unique cells, the
/// per-cell point offsets and the grouped coordinates to the output columns.
fn bucket_points<P: PointAccess>(
    geometry: &GridGeometry,
    points: P,
    scratch: &mut GridBuildScratch,
    cells_out: &mut Vec<CellCoord>,
    starts_out: &mut Vec<u32>,
    xs_out: &mut Vec<f64>,
    ys_out: &mut Vec<f64>,
) {
    scratch.keys.clear();
    scratch
        .keys
        .extend((0..points.len()).map(|i| geometry.cell_of_xy(points.x(i), points.y(i))));
    scratch.order.clear();
    scratch.order.extend(0..points.len() as u32);
    let keys = &scratch.keys;
    scratch
        .order
        .sort_unstable_by_key(|&i| (keys[i as usize], i));
    let mut prev: Option<CellCoord> = None;
    for &i in &scratch.order {
        let cell = scratch.keys[i as usize];
        if prev != Some(cell) {
            cells_out.push(cell);
            starts_out.push(xs_out.len() as u32);
            prev = Some(cell);
        }
        xs_out.push(points.x(i as usize));
        ys_out.push(points.y(i as usize));
    }
}

/// Intersection of two ascending, deduplicated id lists.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_geo::hausdorff_within;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.39996; // golden-angle spiral
                let r = spread * (i as f64 / n as f64).sqrt();
                Point::new(cx + r * angle.cos(), cy + r * angle.sin())
            })
            .collect()
    }

    #[test]
    fn build_populates_cell_and_inverted_lists() {
        let delta = 100.0;
        let geometry = GridGeometry::for_delta(delta);
        let clusters = vec![blob(0.0, 0.0, 10, 30.0), blob(1000.0, 0.0, 8, 20.0)];
        let index = GridClusterIndex::build(geometry, &clusters);
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        assert!(!index.cell_list(0).is_empty());
        assert!(!index.cell_list(1).is_empty());
        // Cell lists are sorted and deduplicated.
        for idx in 0..2 {
            let cl = index.cell_list(idx);
            for w in cl.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn far_clusters_are_pruned() {
        let delta = 100.0;
        let geometry = GridGeometry::for_delta(delta);
        let clusters = vec![blob(0.0, 0.0, 10, 30.0), blob(5000.0, 5000.0, 10, 30.0)];
        let index = GridClusterIndex::build(geometry, &clusters);
        let query = blob(10.0, 10.0, 12, 25.0);
        let cells = index.cell_list_of(&query);
        let candidates = index.candidates(&cells);
        assert!(candidates.contains(&0));
        assert!(!candidates.contains(&1));
    }

    #[test]
    fn identical_cluster_is_always_within_delta() {
        let delta = 50.0;
        let geometry = GridGeometry::for_delta(delta);
        let cluster = blob(500.0, 300.0, 20, 40.0);
        let index = GridClusterIndex::build(geometry, std::slice::from_ref(&cluster));
        assert_eq!(index.range_search(&cluster, delta), vec![0]);
    }

    #[test]
    fn range_search_matches_exact_hausdorff_test() {
        let delta = 120.0;
        let geometry = GridGeometry::for_delta(delta);
        let clusters = vec![
            blob(0.0, 0.0, 15, 50.0),
            blob(80.0, 40.0, 12, 60.0),
            blob(400.0, 0.0, 10, 30.0),
            blob(90.0, -60.0, 18, 45.0),
            blob(-200.0, 150.0, 9, 25.0),
        ];
        let index = GridClusterIndex::build(geometry, &clusters);
        let query = blob(30.0, 10.0, 14, 55.0);
        let got = index.range_search(&query, delta);
        let expected: Vec<usize> = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| hausdorff_within(&query, c, delta))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_query_yields_no_candidates() {
        let geometry = GridGeometry::for_delta(100.0);
        let index = GridClusterIndex::build(geometry, &[blob(0.0, 0.0, 5, 10.0)]);
        assert!(index.candidates(&[]).is_empty());
        assert!(index.range_search(&[], 100.0).is_empty());
    }

    #[test]
    fn empty_index_yields_no_results() {
        let geometry = GridGeometry::for_delta(100.0);
        let index = GridClusterIndex::build::<Vec<Point>>(geometry, &[]);
        assert!(index.is_empty());
        let query = blob(0.0, 0.0, 5, 10.0);
        assert!(index.range_search(&query, 100.0).is_empty());
    }

    #[test]
    fn elongated_cluster_pruned_by_every_cell_requirement() {
        // A candidate overlapping only one end of a long query cluster is
        // pruned because it misses the affect region of the far end's cells.
        let delta = 50.0;
        let geometry = GridGeometry::for_delta(delta);
        let long_query: Vec<Point> = (0..40).map(|i| Point::new(i as f64 * 25.0, 0.0)).collect();
        let near_one_end = blob(0.0, 10.0, 10, 20.0);
        let index = GridClusterIndex::build(geometry, &[near_one_end]);
        let cells = index.cell_list_of(&long_query);
        assert!(index.candidates(&cells).is_empty());
    }

    #[test]
    fn prepared_query_cells_match_cell_list_of() {
        let geometry = GridGeometry::for_delta(75.0);
        let cluster = blob(120.0, -40.0, 25, 90.0);
        let index = GridClusterIndex::build(geometry, std::slice::from_ref(&cluster));
        let prepared = index.prepare_query(&cluster);
        assert_eq!(prepared.cells(), index.cell_list_of(&cluster).as_slice());
        // Every point is in its cell's bucket.
        let total: usize = (0..prepared.cells.len())
            .map(|i| (prepared.starts[i + 1] - prepared.starts[i]) as usize)
            .sum();
        assert_eq!(total, cluster.len());
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use gpdt_geo::hausdorff_within;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cluster(rng: &mut StdRng) -> Vec<Point> {
        let cx = rng.gen_range(-500.0..500.0);
        let cy = rng.gen_range(-500.0..500.0);
        let n = rng.gen_range(1..20);
        (0..n)
            .map(|_| {
                Point::new(
                    cx + rng.gen_range(-80.0..80.0),
                    cy + rng.gen_range(-80.0..80.0),
                )
            })
            .collect()
    }

    fn random_clusters(rng: &mut StdRng) -> Vec<Vec<Point>> {
        let n = rng.gen_range(0..8);
        (0..n).map(|_| random_cluster(rng)).collect()
    }

    /// The grid range search returns exactly the clusters within
    /// Hausdorff distance delta (agrees with the exact predicate), with a
    /// build scratch reused across rounds.
    #[test]
    fn grid_range_search_is_exact() {
        let mut rng = StdRng::seed_from_u64(0xa1);
        let mut scratch = GridBuildScratch::default();
        for _ in 0..256 {
            let clusters = random_clusters(&mut rng);
            let query = random_cluster(&mut rng);
            let delta = rng.gen_range(20.0..400.0);
            let geometry = GridGeometry::for_delta(delta);
            let index = GridClusterIndex::build_with(geometry, &clusters, &mut scratch);
            let got = index.range_search(&query, delta);
            let expected: Vec<usize> = clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| hausdorff_within(&query, c, delta))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected);
        }
    }

    /// Candidate generation never prunes a true result (it is a superset
    /// of the exact answer).
    #[test]
    fn candidates_are_superset_of_exact() {
        let mut rng = StdRng::seed_from_u64(0xa2);
        for _ in 0..256 {
            let clusters = random_clusters(&mut rng);
            let query = random_cluster(&mut rng);
            let delta = rng.gen_range(20.0..400.0);
            let geometry = GridGeometry::for_delta(delta);
            let index = GridClusterIndex::build(geometry, &clusters);
            let cells = index.cell_list_of(&query);
            let candidates = index.candidates(&cells);
            for (i, c) in clusters.iter().enumerate() {
                if hausdorff_within(&query, c, delta) {
                    assert!(candidates.contains(&i), "true result {i} was pruned");
                }
            }
        }
    }

    /// Building from columnar views gives exactly the answers of building
    /// from AoS slices, and columnar prepared queries agree with slice
    /// queries.
    #[test]
    fn columnar_build_and_query_match_slices() {
        use gpdt_geo::PointColumns;
        let mut rng = StdRng::seed_from_u64(0xa4);
        let mut scratch = GridBuildScratch::default();
        for _ in 0..128 {
            let clusters = random_clusters(&mut rng);
            let query = random_cluster(&mut rng);
            let delta = rng.gen_range(20.0..400.0);
            let geometry = GridGeometry::for_delta(delta);
            let cols: Vec<PointColumns> = clusters
                .iter()
                .map(|c| PointColumns::from_points(c))
                .collect();
            let views: Vec<_> = cols.iter().map(|c| c.view()).collect();
            let qcols = PointColumns::from_points(&query);
            let from_views = GridClusterIndex::build_access(geometry, &views, &mut scratch);
            let from_slices = GridClusterIndex::build(geometry, &clusters);
            assert_eq!(
                from_views.cell_list_of_access(qcols.view()),
                from_slices.cell_list_of(&query)
            );
            let prepared = from_views.prepare_query_access(qcols.view());
            let expected = from_slices.range_search(&query, delta);
            let got: Vec<usize> = from_views
                .candidates(prepared.cells())
                .into_iter()
                .filter(|&c| from_views.within_delta_prepared(&prepared, c, delta))
                .collect();
            assert_eq!(got, expected);
        }
    }

    /// A reused build scratch never changes the built index's answers.
    #[test]
    fn scratch_reuse_matches_fresh_build() {
        let mut rng = StdRng::seed_from_u64(0xa3);
        let mut scratch = GridBuildScratch::default();
        for _ in 0..128 {
            let clusters = random_clusters(&mut rng);
            let query = random_cluster(&mut rng);
            let delta = rng.gen_range(20.0..400.0);
            let geometry = GridGeometry::for_delta(delta);
            let reused = GridClusterIndex::build_with(geometry, &clusters, &mut scratch);
            let fresh = GridClusterIndex::build(geometry, &clusters);
            assert_eq!(
                reused.range_search(&query, delta),
                fresh.range_search(&query, delta)
            );
        }
    }
}
