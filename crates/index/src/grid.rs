//! The grid index over snapshot clusters (§III-A.2 of the paper).
//!
//! All timestamps share a single [`GridGeometry`] whose cell side is
//! `√2/2·δ`.  For one timestamp's cluster set the index stores
//!
//! * a **cell list** per cluster (`c.cl`) — the cells occupied by the
//!   cluster's points,
//! * an **inverted list** per cell (`g.inv`) — the clusters occupying the
//!   cell, and
//! * the points of each cluster bucketed by cell, which the refinement step
//!   uses to answer nearest-neighbour-within-affect-region probes.
//!
//! The range search works in a pruning/refinement style:
//!
//! 1. *Pruning* ([`GridClusterIndex::candidates`]): a cluster `cj` survives
//!    only if its cell list intersects the affect region of **every** cell of
//!    the query cluster `ci` — otherwise some point of `ci` is farther than
//!    `δ` from all of `cj`.
//! 2. *Refinement* ([`GridClusterIndex::within_delta`]): points of either
//!    cluster lying in cells shared by both are within `δ` of the other
//!    cluster for free (the cell diagonal is `δ`); only points in the
//!    symmetric difference of the cell lists are probed, and each probe only
//!    inspects the other cluster's points inside the probe cell's affect
//!    region.  This decides `dH ≤ δ` exactly, without ever computing the full
//!    Hausdorff distance.

use std::collections::{HashMap, HashSet};

use gpdt_geo::{CellCoord, GridGeometry, Point};

/// Grid index over the clusters of one timestamp.
#[derive(Debug, Clone)]
pub struct GridClusterIndex {
    geometry: GridGeometry,
    /// Per cluster: sorted list of occupied cells (`c.cl`).
    cell_lists: Vec<Vec<CellCoord>>,
    /// Per cluster: the cluster's points bucketed by cell.
    points_by_cell: Vec<HashMap<CellCoord, Vec<Point>>>,
    /// Per cell: clusters occupying the cell (`g.inv`).
    inverted: HashMap<CellCoord, Vec<usize>>,
}

impl GridClusterIndex {
    /// Builds the index for a set of clusters, given as point sets.
    ///
    /// Cluster `i` in the input is referred to as id `i` in all query
    /// results.
    pub fn build<S: AsRef<[Point]>>(geometry: GridGeometry, clusters: &[S]) -> Self {
        let mut cell_lists = Vec::with_capacity(clusters.len());
        let mut points_by_cell = Vec::with_capacity(clusters.len());
        let mut inverted: HashMap<CellCoord, Vec<usize>> = HashMap::new();
        for (idx, cluster) in clusters.iter().enumerate() {
            let mut by_cell: HashMap<CellCoord, Vec<Point>> = HashMap::new();
            for p in cluster.as_ref() {
                by_cell.entry(geometry.cell_of(p)).or_default().push(*p);
            }
            let mut cells: Vec<CellCoord> = by_cell.keys().copied().collect();
            cells.sort();
            for &cell in &cells {
                inverted.entry(cell).or_default().push(idx);
            }
            cell_lists.push(cells);
            points_by_cell.push(by_cell);
        }
        GridClusterIndex {
            geometry,
            cell_lists,
            points_by_cell,
            inverted,
        }
    }

    /// The shared grid geometry.
    pub fn geometry(&self) -> &GridGeometry {
        &self.geometry
    }

    /// Number of indexed clusters.
    pub fn len(&self) -> usize {
        self.cell_lists.len()
    }

    /// Returns `true` if no cluster is indexed.
    pub fn is_empty(&self) -> bool {
        self.cell_lists.is_empty()
    }

    /// The cell list of indexed cluster `idx`.
    pub fn cell_list(&self, idx: usize) -> &[CellCoord] {
        &self.cell_lists[idx]
    }

    /// Computes the cell list of an external (query) cluster under this
    /// index's geometry.
    pub fn cell_list_of(&self, points: &[Point]) -> Vec<CellCoord> {
        let mut cells: Vec<CellCoord> = points.iter().map(|p| self.geometry.cell_of(p)).collect();
        cells.sort();
        cells.dedup();
        cells
    }

    /// **Pruning phase**: ids of indexed clusters whose cell list intersects
    /// the affect region of every cell in `query_cells`.
    ///
    /// The result is a superset of the clusters within Hausdorff distance `δ`
    /// of the query cluster (the grid geometry must have been built with
    /// [`GridGeometry::for_delta`] for that `δ`).
    pub fn candidates(&self, query_cells: &[CellCoord]) -> Vec<usize> {
        if query_cells.is_empty() {
            return Vec::new();
        }
        let mut survivors: Option<HashSet<usize>> = None;
        for cell in query_cells {
            let mut reachable: HashSet<usize> = HashSet::new();
            for ar_cell in self.geometry.affect_region(cell) {
                if let Some(list) = self.inverted.get(&ar_cell) {
                    reachable.extend(list.iter().copied());
                }
            }
            survivors = Some(match survivors {
                None => reachable,
                Some(prev) => prev.intersection(&reachable).copied().collect(),
            });
            if survivors.as_ref().is_some_and(HashSet::is_empty) {
                return Vec::new();
            }
        }
        let mut out: Vec<usize> = survivors.unwrap_or_default().into_iter().collect();
        out.sort_unstable();
        out
    }

    /// **Refinement phase**: decides whether the Hausdorff distance between
    /// the query cluster and indexed cluster `candidate` is at most `delta`.
    ///
    /// `query_points` are the query cluster's points and `query_cells` its
    /// cell list (as returned by [`Self::cell_list_of`]).
    pub fn within_delta(
        &self,
        query_points: &[Point],
        query_cells: &[CellCoord],
        candidate: usize,
        delta: f64,
    ) -> bool {
        let candidate_cells = &self.cell_lists[candidate];
        let query_cell_set: HashSet<CellCoord> = query_cells.iter().copied().collect();
        let candidate_cell_set: HashSet<CellCoord> = candidate_cells.iter().copied().collect();
        let delta_sq = delta * delta;

        // Direction 1: every query point in a cell NOT shared with the
        // candidate must have a neighbour of the candidate within delta.
        // (Query points in shared cells are within delta of the candidate
        // point(s) in the same cell.)
        for p in query_points {
            let cell = self.geometry.cell_of(p);
            if candidate_cell_set.contains(&cell) {
                continue;
            }
            if !self.candidate_has_point_near(candidate, p, &cell, delta_sq) {
                return false;
            }
        }

        // Direction 2: every candidate point in a cell NOT shared with the
        // query must have a query point within delta.
        let query_by_cell = Self::bucket_by_cell(&self.geometry, query_points);
        for (cell, points) in &self.points_by_cell[candidate] {
            if query_cell_set.contains(cell) {
                continue;
            }
            for p in points {
                if !Self::point_near_in_affect_region(
                    &self.geometry,
                    &query_by_cell,
                    p,
                    cell,
                    delta_sq,
                ) {
                    return false;
                }
            }
        }
        true
    }

    /// Full range search: candidate generation followed by refinement.
    ///
    /// Returns the ids of all indexed clusters within Hausdorff distance
    /// `delta` of the query cluster.
    pub fn range_search(&self, query_points: &[Point], delta: f64) -> Vec<usize> {
        let query_cells = self.cell_list_of(query_points);
        self.candidates(&query_cells)
            .into_iter()
            .filter(|&c| self.within_delta(query_points, &query_cells, c, delta))
            .collect()
    }

    fn candidate_has_point_near(
        &self,
        candidate: usize,
        p: &Point,
        cell: &CellCoord,
        delta_sq: f64,
    ) -> bool {
        let by_cell = &self.points_by_cell[candidate];
        for ar_cell in self.geometry.affect_region(cell) {
            if let Some(points) = by_cell.get(&ar_cell) {
                if points.iter().any(|q| p.distance_sq(q) <= delta_sq) {
                    return true;
                }
            }
        }
        false
    }

    fn bucket_by_cell(geometry: &GridGeometry, points: &[Point]) -> HashMap<CellCoord, Vec<Point>> {
        let mut map: HashMap<CellCoord, Vec<Point>> = HashMap::new();
        for p in points {
            map.entry(geometry.cell_of(p)).or_default().push(*p);
        }
        map
    }

    fn point_near_in_affect_region(
        geometry: &GridGeometry,
        buckets: &HashMap<CellCoord, Vec<Point>>,
        p: &Point,
        cell: &CellCoord,
        delta_sq: f64,
    ) -> bool {
        for ar_cell in geometry.affect_region(cell) {
            if let Some(points) = buckets.get(&ar_cell) {
                if points.iter().any(|q| p.distance_sq(q) <= delta_sq) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_geo::hausdorff_within;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let angle = i as f64 * 2.39996; // golden-angle spiral
                let r = spread * (i as f64 / n as f64).sqrt();
                Point::new(cx + r * angle.cos(), cy + r * angle.sin())
            })
            .collect()
    }

    #[test]
    fn build_populates_cell_and_inverted_lists() {
        let delta = 100.0;
        let geometry = GridGeometry::for_delta(delta);
        let clusters = vec![blob(0.0, 0.0, 10, 30.0), blob(1000.0, 0.0, 8, 20.0)];
        let index = GridClusterIndex::build(geometry, &clusters);
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        assert!(!index.cell_list(0).is_empty());
        assert!(!index.cell_list(1).is_empty());
        // Cell lists are sorted and deduplicated.
        for idx in 0..2 {
            let cl = index.cell_list(idx);
            for w in cl.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn far_clusters_are_pruned() {
        let delta = 100.0;
        let geometry = GridGeometry::for_delta(delta);
        let clusters = vec![blob(0.0, 0.0, 10, 30.0), blob(5000.0, 5000.0, 10, 30.0)];
        let index = GridClusterIndex::build(geometry, &clusters);
        let query = blob(10.0, 10.0, 12, 25.0);
        let cells = index.cell_list_of(&query);
        let candidates = index.candidates(&cells);
        assert!(candidates.contains(&0));
        assert!(!candidates.contains(&1));
    }

    #[test]
    fn identical_cluster_is_always_within_delta() {
        let delta = 50.0;
        let geometry = GridGeometry::for_delta(delta);
        let cluster = blob(500.0, 300.0, 20, 40.0);
        let index = GridClusterIndex::build(geometry, std::slice::from_ref(&cluster));
        assert_eq!(index.range_search(&cluster, delta), vec![0]);
    }

    #[test]
    fn range_search_matches_exact_hausdorff_test() {
        let delta = 120.0;
        let geometry = GridGeometry::for_delta(delta);
        let clusters = vec![
            blob(0.0, 0.0, 15, 50.0),
            blob(80.0, 40.0, 12, 60.0),
            blob(400.0, 0.0, 10, 30.0),
            blob(90.0, -60.0, 18, 45.0),
            blob(-200.0, 150.0, 9, 25.0),
        ];
        let index = GridClusterIndex::build(geometry, &clusters);
        let query = blob(30.0, 10.0, 14, 55.0);
        let got = index.range_search(&query, delta);
        let expected: Vec<usize> = clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| hausdorff_within(&query, c, delta))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_query_yields_no_candidates() {
        let geometry = GridGeometry::for_delta(100.0);
        let index = GridClusterIndex::build(geometry, &[blob(0.0, 0.0, 5, 10.0)]);
        assert!(index.candidates(&[]).is_empty());
        assert!(index.range_search(&[], 100.0).is_empty());
    }

    #[test]
    fn empty_index_yields_no_results() {
        let geometry = GridGeometry::for_delta(100.0);
        let index = GridClusterIndex::build::<Vec<Point>>(geometry, &[]);
        assert!(index.is_empty());
        let query = blob(0.0, 0.0, 5, 10.0);
        assert!(index.range_search(&query, 100.0).is_empty());
    }

    #[test]
    fn elongated_cluster_pruned_by_every_cell_requirement() {
        // A candidate overlapping only one end of a long query cluster is
        // pruned because it misses the affect region of the far end's cells.
        let delta = 50.0;
        let geometry = GridGeometry::for_delta(delta);
        let long_query: Vec<Point> = (0..40).map(|i| Point::new(i as f64 * 25.0, 0.0)).collect();
        let near_one_end = blob(0.0, 10.0, 10, 20.0);
        let index = GridClusterIndex::build(geometry, &[near_one_end]);
        let cells = index.cell_list_of(&long_query);
        assert!(index.candidates(&cells).is_empty());
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use gpdt_geo::hausdorff_within;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cluster(rng: &mut StdRng) -> Vec<Point> {
        let cx = rng.gen_range(-500.0..500.0);
        let cy = rng.gen_range(-500.0..500.0);
        let n = rng.gen_range(1..20);
        (0..n)
            .map(|_| {
                Point::new(
                    cx + rng.gen_range(-80.0..80.0),
                    cy + rng.gen_range(-80.0..80.0),
                )
            })
            .collect()
    }

    fn random_clusters(rng: &mut StdRng) -> Vec<Vec<Point>> {
        let n = rng.gen_range(0..8);
        (0..n).map(|_| random_cluster(rng)).collect()
    }

    /// The grid range search returns exactly the clusters within
    /// Hausdorff distance delta (agrees with the exact predicate).
    #[test]
    fn grid_range_search_is_exact() {
        let mut rng = StdRng::seed_from_u64(0xa1);
        for _ in 0..256 {
            let clusters = random_clusters(&mut rng);
            let query = random_cluster(&mut rng);
            let delta = rng.gen_range(20.0..400.0);
            let geometry = GridGeometry::for_delta(delta);
            let index = GridClusterIndex::build(geometry, &clusters);
            let got = index.range_search(&query, delta);
            let expected: Vec<usize> = clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| hausdorff_within(&query, c, delta))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected);
        }
    }

    /// Candidate generation never prunes a true result (it is a superset
    /// of the exact answer).
    #[test]
    fn candidates_are_superset_of_exact() {
        let mut rng = StdRng::seed_from_u64(0xa2);
        for _ in 0..256 {
            let clusters = random_clusters(&mut rng);
            let query = random_cluster(&mut rng);
            let delta = rng.gen_range(20.0..400.0);
            let geometry = GridGeometry::for_delta(delta);
            let index = GridClusterIndex::build(geometry, &clusters);
            let cells = index.cell_list_of(&query);
            let candidates = index.candidates(&cells);
            for (i, c) in clusters.iter().enumerate() {
                if hausdorff_within(&query, c, delta) {
                    assert!(candidates.contains(&i), "true result {i} was pruned");
                }
            }
        }
    }
}
