//! The sharded discovery engine and its exact cross-shard merge.
//!
//! See the [crate docs](crate) for the correctness argument.  The data flow
//! per ingested batch:
//!
//! ```text
//!                        global cluster batch
//!                               │
//!                    ┌──────────┴──────────┐  Partitioner (per tick)
//!                    ▼                     ▼
//!              shard 0 batch   ...   shard N-1 batch      (+ per-tick layout,
//!                    │                     │                boundary flags)
//!              GatheringEngine       GatheringEngine       scoped threads,
//!              (observer logs        (observer logs        one per shard
//!               boundary prefixes)    boundary prefixes)
//!                    └──────────┬──────────┘
//!                               ▼
//!                        merge replay (sequential, per tick):
//!                          1. find cross-shard edges among boundary clusters
//!                          2. splice logged prefixes onto cross extensions
//!                          3. extend tainted paths against the global tick
//!                               │
//!                               ▼
//!            finalized records = filtered shard output ∪ merged paths
//! ```

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use gpdt_clustering::{ClusterDatabase, ClusterId, SnapshotClusterSet, StreamingClusterer};
use gpdt_core::par::par_map;
use gpdt_core::{
    canonical_crowd_order, canonical_gathering_order, detect_closed_gatherings, Crowd, CrowdRecord,
    Gathering, GatheringConfig, GatheringEngine, RangeSearchStrategy, RetentionPolicy,
    SearcherScratch, TadVariant, TickSearcher,
};
use gpdt_trajectory::{TimeInterval, Timestamp, TrajectoryDatabase};

use crate::partition::Partitioner;

/// Where every global cluster of one tick lives: the per-tick output of the
/// partitioner, kept for remapping shard-local results back to global
/// cluster ids.
#[derive(Debug, Clone)]
struct TickLayout {
    time: Timestamp,
    /// Shard of each global cluster index.
    shard: Vec<u32>,
    /// Within-shard index of each global cluster index.
    local: Vec<u32>,
    /// Per shard: local index → global index.
    to_global: Vec<Vec<u32>>,
    /// Global indices of boundary-adjacent clusters, ascending.
    boundary: Vec<u32>,
}

/// Partitions one tick's cluster set into its [`TickLayout`]: the single
/// source of truth for layout construction, shared by live ingestion and
/// checkpoint restore so a restored engine re-derives byte-identical
/// layouts from the same partitioner.
fn build_layout(
    set: &SnapshotClusterSet,
    partitioner: &Partitioner,
    delta: f64,
    shard_count: usize,
) -> TickLayout {
    let n = set.clusters.len();
    let mut layout = TickLayout {
        time: set.time,
        shard: Vec::with_capacity(n),
        local: Vec::with_capacity(n),
        to_global: vec![Vec::new(); shard_count],
        boundary: Vec::new(),
    };
    for (gidx, cluster) in set.clusters.iter().enumerate() {
        let s = partitioner.shard_of(cluster, shard_count);
        layout.shard.push(s as u32);
        layout.local.push(layout.to_global[s].len() as u32);
        layout.to_global[s].push(gidx as u32);
        if partitioner.is_boundary(cluster, delta, shard_count) {
            layout.boundary.push(gidx as u32);
        }
    }
    layout
}

fn layout_at(layouts: &VecDeque<TickLayout>, t: Timestamp) -> Option<&TickLayout> {
    let first = layouts.front()?.time;
    if t < first {
        return None;
    }
    layouts.get((t - first) as usize)
}

/// Rewrites a shard-local crowd into global cluster ids.
fn remap_crowd(layouts: &VecDeque<TickLayout>, crowd: &Crowd, shard: usize) -> Crowd {
    Crowd::new(
        crowd
            .cluster_ids()
            .iter()
            .map(|id| {
                let layout =
                    layout_at(layouts, id.time).expect("crowd spans retained tick layouts");
                ClusterId::new(id.time, layout.to_global[shard][id.index] as usize)
            })
            .collect(),
    )
}

/// Ingests one shard's partitioned batch into its engine, collecting the
/// per-tick boundary-candidate log the merge replay splices from.  The one
/// ingest body both the parallel workers and the supervisor's rebuild path
/// run, so a rebuilt shard is byte-identical to an undisturbed one.
///
/// `fault`, if armed, fires at the first observer callback — mid-ingest by
/// design, leaving the engine half-mutated for the supervisor to discard.
fn ingest_with_boundary_log(
    engine: &mut GatheringEngine,
    sets: Vec<SnapshotClusterSet>,
    bits: &[Vec<bool>],
    batch_start: Timestamp,
    fault: Option<ShardFault>,
) -> Vec<(Timestamp, Vec<Crowd>)> {
    let mut log: Vec<(Timestamp, Vec<Crowd>)> = Vec::new();
    let mut fired = false;
    let mut observer = |t: Timestamp, candidates: &[Crowd]| {
        if !fired {
            fired = true;
            match fault {
                Some(ShardFault::PanicOnce) => panic!("injected shard worker fault"),
                Some(ShardFault::StallOnce(pause)) => std::thread::sleep(pause),
                None => {}
            }
        }
        let tick_bits = &bits[(t - batch_start) as usize];
        let kept: Vec<Crowd> = candidates
            .iter()
            .filter(|c| tick_bits[c.last().index])
            .cloned()
            .collect();
        if !kept.is_empty() {
            log.push((t, kept));
        }
    };
    engine.ingest_clusters_observed(ClusterDatabase::from_sets(sets), Some(&mut observer));
    log
}

/// Sorted-vec membership sets for cross-edge endpoints.  Small (only
/// boundary clusters actually incident to a cross edge enter), queried on
/// every merge decision, pruned by retention.
#[derive(Debug, Clone, Default)]
struct CrossSet {
    ids: Vec<ClusterId>,
}

impl CrossSet {
    fn insert(&mut self, id: ClusterId) {
        if let Err(pos) = self.ids.binary_search(&id) {
            self.ids.insert(pos, id);
        }
    }

    fn contains(&self, id: &ClusterId) -> bool {
        self.ids.binary_search(id).is_ok()
    }

    fn retain_from(&mut self, t: Timestamp) {
        self.ids.retain(|id| id.time >= t);
    }
}

/// Summary of one sharded ingestion step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedUpdate {
    /// Records (crowd + gatherings) finalized by this batch, after the merge.
    pub new_finalized: usize,
    /// Cross-shard edges discovered in this batch.
    pub new_cross_edges: u64,
    /// Boundary prefixes spliced into the merge sweep in this batch.
    pub new_imported_paths: u64,
    /// Shard-local records dropped because a cross edge invalidated them.
    pub new_dropped_records: u64,
}

/// Per-shard load snapshot (see [`ShardedStats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Ticks resident in the shard's cluster database.
    pub resident_ticks: usize,
    /// Snapshot clusters resident in the shard.
    pub resident_clusters: usize,
    /// Open crowd candidates on the shard's frontier.
    pub open_sequences: usize,
    /// Records the shard has finalized so far (before merge filtering).
    pub finalized_records: usize,
    /// Objects clustered on this shard at the last ingested tick — the
    /// instantaneous balance indicator.
    pub last_tick_objects: usize,
    /// Times this shard's worker was rebuilt from its in-memory snapshot
    /// after a panic or a deadline overrun.
    pub restarts: u64,
}

/// Supervision policy for the per-shard ingest workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSupervision {
    /// Wall-clock budget for one batch's parallel shard ingestion.  A worker
    /// that has not reported back when it expires is abandoned and its shard
    /// rebuilt from the retained snapshot; `None` (the default) waits
    /// indefinitely — panics are still caught and recovered either way.
    pub worker_deadline: Option<Duration>,
    /// Snapshots of the shard engines are refreshed after this many batches;
    /// the coordinator retains the partitioned inputs of every batch since
    /// the last snapshot, so a rebuilt shard replays at most this many
    /// batches.
    pub snapshot_interval: u64,
}

impl Default for ShardSupervision {
    fn default() -> Self {
        ShardSupervision {
            worker_deadline: None,
            snapshot_interval: 16,
        }
    }
}

/// A fault injected into one shard's next ingest worker (chaos testing —
/// see [`ShardedEngine::inject_shard_fault`]).  Fires mid-ingest, at the
/// worker's first per-tick observer callback, so the abandoned engine is
/// genuinely half-mutated when the supervisor rebuilds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// Panic once inside the worker.
    PanicOnce,
    /// Stall the worker for this long before continuing normally (pair with
    /// a shorter [`ShardSupervision::worker_deadline`] to exercise the
    /// abandon-and-rebuild path).
    StallOnce(Duration),
}

/// A point-in-time snapshot of the sharded engine's load and merge cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Number of shards.
    pub shard_count: usize,
    /// Ticks ingested since construction/restore.
    pub ticks_ingested: u64,
    /// Merged finalized records accumulated so far.
    pub finalized_records: usize,
    /// Tainted paths currently tracked by the merge sweep.
    pub open_merge_paths: usize,
    /// Cross-shard edges discovered so far.
    pub cross_edges: u64,
    /// Boundary prefixes spliced into the merge sweep so far.
    pub imported_paths: u64,
    /// Records finalized by the merge sweep itself (cross-border crowds).
    pub merge_finalized: u64,
    /// Shard-local records dropped as invalidated by a cross edge.
    pub dropped_records: u64,
    /// Nanoseconds spent partitioning batches.
    pub partition_nanos: u64,
    /// Nanoseconds spent in parallel shard ingestion (wall clock).
    pub shard_ingest_nanos: u64,
    /// Nanoseconds spent in the sequential merge replay — the overhead a
    /// sharded deployment pays on top of the per-shard sweeps.
    pub merge_nanos: u64,
    /// Per-shard load.
    pub per_shard: Vec<ShardLoad>,
}

impl gpdt_obs::MetricSource for ShardedStats {
    fn metric_prefix(&self) -> &'static str {
        "shard"
    }
    fn metric_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("shard_count", self.shard_count as u64),
            ("ticks_ingested", self.ticks_ingested),
            ("finalized_records", self.finalized_records as u64),
            ("open_merge_paths", self.open_merge_paths as u64),
            ("cross_edges", self.cross_edges),
            ("imported_paths", self.imported_paths),
            ("merge_finalized", self.merge_finalized),
            ("dropped_records", self.dropped_records),
            ("partition_nanos", self.partition_nanos),
            ("shard_ingest_nanos", self.shard_ingest_nanos),
            ("merge_nanos", self.merge_nanos),
            ("restarts", self.per_shard.iter().map(|l| l.restarts).sum()),
        ]
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    ticks: u64,
    cross_edges: u64,
    imported: u64,
    merge_finalized: u64,
    dropped: u64,
    partition_nanos: u64,
    shard_nanos: u64,
    merge_nanos: u64,
}

/// `N` independent [`GatheringEngine`]s behind a single-engine-equivalent
/// facade.  See the [module](self) docs and the crate-level docs.
#[derive(Debug)]
pub struct ShardedEngine {
    config: GatheringConfig,
    strategy: RangeSearchStrategy,
    variant: TadVariant,
    threads: usize,
    retention: RetentionPolicy,
    partitioner: Partitioner,
    shards: Vec<GatheringEngine>,
    /// Finalized records already pulled (and merge-filtered) per shard.
    consumed: Vec<usize>,
    clusterer: StreamingClusterer,
    /// The global cluster database (retention-bounded like the engines').
    cdb: ClusterDatabase,
    layouts: VecDeque<TickLayout>,
    /// Cluster ids with a cross-shard in-edge: locally seeded paths starting
    /// here are spurious (globally absorbed).
    cross_in: CrossSet,
    /// Cluster ids with a cross-shard out-edge: locally closed paths ending
    /// here closed too early (globally extensible).
    cross_out: CrossSet,
    /// The merge sweep's candidate set: every global path containing at
    /// least one cross-shard edge, ending at the current last tick.
    merge: Vec<Crowd>,
    finalized: Vec<CrowdRecord>,
    counters: Counters,
    supervision: ShardSupervision,
    /// Per-shard engine clones taken at the last snapshot point; `None`
    /// until the first supervised ingest (or after a builder invalidated
    /// them).
    snapshots: Option<Vec<GatheringEngine>>,
    /// Partitioned inputs of every batch since the last snapshot, indexed
    /// `[batch][shard]` — what a rebuilt shard replays.
    retained_batches: Vec<Vec<Vec<SnapshotClusterSet>>>,
    /// Per-shard worker rebuild counts.
    restarts: Vec<u64>,
    /// Chaos hooks: a fault each shard's next worker fires mid-ingest.
    pending_faults: Vec<Option<ShardFault>>,
}

impl ShardedEngine {
    /// Creates a sharded engine with `shard_count` shards (≥ 1) and the
    /// default algorithm choices (grid range search, TAD\*, all cores split
    /// across the shards).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(config: GatheringConfig, shard_count: usize, partitioner: Partitioner) -> Self {
        assert!(
            shard_count >= 1,
            "a sharded engine needs at least one shard"
        );
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let per_shard = (threads / shard_count).max(1);
        ShardedEngine {
            config,
            strategy: RangeSearchStrategy::default(),
            variant: TadVariant::default(),
            threads,
            retention: RetentionPolicy::KeepAll,
            partitioner,
            shards: (0..shard_count)
                .map(|_| GatheringEngine::new(config).with_threads(per_shard))
                .collect(),
            consumed: vec![0; shard_count],
            clusterer: StreamingClusterer::new(config.clustering).with_threads(threads),
            cdb: ClusterDatabase::new(),
            layouts: VecDeque::new(),
            cross_in: CrossSet::default(),
            cross_out: CrossSet::default(),
            merge: Vec::new(),
            finalized: Vec::new(),
            counters: Counters::default(),
            supervision: ShardSupervision::default(),
            snapshots: None,
            retained_batches: Vec::new(),
            restarts: vec![0; shard_count],
            pending_faults: vec![None; shard_count],
        }
    }

    /// Drops the supervision snapshots: the builders below reconfigure the
    /// shard engines, so clones taken earlier no longer match them.  A fresh
    /// snapshot is taken at the next ingest.
    fn invalidate_snapshots(&mut self) {
        self.snapshots = None;
        self.retained_batches.clear();
    }

    /// Overrides the range-search strategy (propagated to every shard).
    pub fn with_strategy(mut self, strategy: RangeSearchStrategy) -> Self {
        self.strategy = strategy;
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|e| e.with_strategy(strategy))
            .collect();
        self.invalidate_snapshots();
        self
    }

    /// Overrides the gathering-detection variant (propagated to every shard).
    pub fn with_variant(mut self, variant: TadVariant) -> Self {
        self.variant = variant;
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|e| e.with_variant(variant))
            .collect();
        self.invalidate_snapshots();
        self
    }

    /// Overrides the total worker-thread budget; each shard engine gets an
    /// equal slice (at least one).  Never changes results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        let per_shard = (self.threads / self.shards.len()).max(1);
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|e| e.with_threads(per_shard))
            .collect();
        self.clusterer = self.clusterer.clone().with_threads(self.threads);
        self.invalidate_snapshots();
        self
    }

    /// Overrides the retention policy, on the global database and every
    /// shard alike (see
    /// [`RetentionPolicy`]).  Never changes discovery output.
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self.shards = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|e| e.with_retention(retention))
            .collect();
        self.invalidate_snapshots();
        self
    }

    /// Overrides the worker supervision policy (see [`ShardSupervision`]).
    /// Like the thread budget, a host choice: it never changes results.
    pub fn with_supervision(mut self, supervision: ShardSupervision) -> Self {
        self.supervision = supervision;
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &GatheringConfig {
        &self.config
    }

    /// The configured range-search strategy.
    pub fn strategy(&self) -> RangeSearchStrategy {
        self.strategy
    }

    /// The configured detection variant.
    pub fn variant(&self) -> TadVariant {
        self.variant
    }

    /// The configured partitioner.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The configured total worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured retention policy.
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// The configured worker supervision policy.
    pub fn supervision(&self) -> ShardSupervision {
        self.supervision
    }

    /// Per-shard worker rebuild counts (panics caught + deadline overruns),
    /// indexed by shard.
    pub fn restarts(&self) -> &[u64] {
        &self.restarts
    }

    /// Arms a one-shot fault that `shard`'s next ingest worker fires
    /// mid-ingest — the chaos hook the supervision tests drive.  Output is
    /// unaffected: the supervisor rebuilds the shard and the batch completes
    /// byte-identical to an undisturbed run.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_shard_fault(&mut self, shard: usize, fault: ShardFault) {
        self.pending_faults[shard] = Some(fault);
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines (for inspection and checkpointing).
    pub fn shard_engines(&self) -> &[GatheringEngine] {
        &self.shards
    }

    /// The global (retention-bounded) cluster database.
    pub fn cluster_database(&self) -> &ClusterDatabase {
        &self.cdb
    }

    /// The time interval ingested so far, or `None` before the first batch.
    pub fn time_domain(&self) -> Option<TimeInterval> {
        self.cdb.time_domain()
    }

    /// The merged finalized records, in a canonical per-batch order: crowds
    /// whose discovery can never change again, with shard-local ids already
    /// rewritten to global ones.  The stable feed for a durable store.
    pub fn finalized_records(&self) -> &[CrowdRecord] {
        &self.finalized
    }

    /// The merge sweep's open paths (every tainted path ending at the last
    /// tick), for checkpointing.
    pub fn merge_frontier(&self) -> &[Crowd] {
        &self.merge
    }

    /// Cluster ids carrying a cross-shard in-edge (sorted), for
    /// checkpointing.
    pub fn cross_edge_heads(&self) -> &[ClusterId] {
        &self.cross_in.ids
    }

    /// Cluster ids carrying a cross-shard out-edge (sorted), for
    /// checkpointing.
    pub fn cross_edge_tails(&self) -> &[ClusterId] {
        &self.cross_out.ids
    }

    /// A snapshot of load and merge cost.
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            shard_count: self.shards.len(),
            ticks_ingested: self.counters.ticks,
            finalized_records: self.finalized.len(),
            open_merge_paths: self.merge.len(),
            cross_edges: self.counters.cross_edges,
            imported_paths: self.counters.imported,
            merge_finalized: self.counters.merge_finalized,
            dropped_records: self.counters.dropped,
            partition_nanos: self.counters.partition_nanos,
            shard_ingest_nanos: self.counters.shard_nanos,
            merge_nanos: self.counters.merge_nanos,
            per_shard: self
                .shards
                .iter()
                .enumerate()
                .map(|(s, engine)| {
                    let cdb = engine.cluster_database();
                    let last_tick_objects = cdb
                        .time_domain()
                        .and_then(|d| cdb.set_at(d.end))
                        .map_or(0, |set| set.clusters.iter().map(|c| c.len()).sum());
                    ShardLoad {
                        resident_ticks: cdb.len(),
                        resident_clusters: cdb.total_clusters(),
                        open_sequences: engine.frontier().len(),
                        finalized_records: engine.finalized_records().len(),
                        last_tick_objects,
                        restarts: self.restarts[s],
                    }
                })
                .collect(),
        }
    }

    /// Clusters and ingests every not-yet-seen snapshot of `db` (the
    /// trajectory-level convenience entry; clustering runs globally, exactly
    /// as a single engine would, before the partitioned ingest).
    pub fn ingest_trajectories(&mut self, db: &TrajectoryDatabase) -> ShardedUpdate {
        let Some(domain) = db.time_domain() else {
            return ShardedUpdate::default();
        };
        self.ingest_trajectories_until(db, domain.end)
    }

    /// Like [`Self::ingest_trajectories`] but stops at timestamp `end`.
    pub fn ingest_trajectories_until(
        &mut self,
        db: &TrajectoryDatabase,
        end: Timestamp,
    ) -> ShardedUpdate {
        if let Some(domain) = self.cdb.time_domain() {
            self.clusterer.seek(domain.end + 1);
        }
        let batch = self.clusterer.advance_until(db, end);
        self.ingest_clusters(batch)
    }

    /// Ingests the next batch of (globally clustered) snapshot clusters:
    /// partitions it, feeds every shard in parallel, then runs the merge
    /// replay.  The batch must start exactly one tick after the data
    /// ingested so far.
    pub fn ingest_clusters(&mut self, batch: ClusterDatabase) -> ShardedUpdate {
        if batch.is_empty() {
            return ShardedUpdate::default();
        }
        let batch_domain = batch.time_domain().expect("non-empty batch");
        let before = self.counters;

        // Deferred retention, exactly like the single engine: what the
        // previous batch retired is evicted now, so records finalized then
        // stayed resolvable for any store mirroring `finalized_records`.
        if self.retention == RetentionPolicy::Bounded {
            self.evict_retired_clusters();
        }

        let prev_end = self.cdb.time_domain().map(|d| d.end);

        // 1. Boundary-candidate logs, seeded with each shard's current
        // frontier: the candidate sequences ending at the previous last tick
        // that a cross edge into the first new tick might need as prefixes.
        let shard_count = self.shards.len();
        let mut logs: Vec<Vec<(Timestamp, Vec<Crowd>)>> = vec![Vec::new(); shard_count];
        if let Some(pe) = prev_end {
            let layout = layout_at(&self.layouts, pe).expect("previous tick layout is retained");
            for (s, engine) in self.shards.iter().enumerate() {
                let kept: Vec<Crowd> = engine
                    .frontier()
                    .iter()
                    .map(|(c, _)| c)
                    .filter(|c| {
                        let gidx = layout.to_global[s][c.last().index];
                        layout.boundary.binary_search(&gidx).is_ok()
                    })
                    .cloned()
                    .collect();
                if !kept.is_empty() {
                    logs[s].push((pe, kept));
                }
            }
        }

        // 2. Partition the batch tick by tick: shard assignment, boundary
        // flags, the global↔local index maps and the per-shard sub-batches.
        let t0 = Instant::now();
        let delta = self.config.crowd.delta;
        let mut local_sets: Vec<Vec<SnapshotClusterSet>> =
            vec![Vec::with_capacity(batch.len()); shard_count];
        let mut boundary_bits: Vec<Vec<Vec<bool>>> =
            vec![Vec::with_capacity(batch.len()); shard_count];
        for set in batch.iter() {
            let layout = build_layout(set, &self.partitioner, delta, shard_count);
            let mut bits: Vec<Vec<bool>> = layout
                .to_global
                .iter()
                .map(|locals| vec![false; locals.len()])
                .collect();
            for &gidx in &layout.boundary {
                let s = layout.shard[gidx as usize] as usize;
                bits[s][layout.local[gidx as usize] as usize] = true;
            }
            for (s, tick_bits) in bits.into_iter().enumerate() {
                local_sets[s].push(SnapshotClusterSet {
                    time: set.time,
                    clusters: layout.to_global[s]
                        .iter()
                        .map(|&gidx| set.clusters[gidx as usize].clone())
                        .collect(),
                });
                boundary_bits[s].push(tick_bits);
            }
            self.layouts.push_back(layout);
        }
        let partition_nanos = t0.elapsed().as_nanos() as u64;
        self.counters.partition_nanos += partition_nanos;
        if gpdt_obs::enabled() {
            gpdt_obs::histogram!("shard.partition").record(partition_nanos);
        }

        match self.cdb.time_domain() {
            None => self.cdb = batch,
            Some(_) => self.cdb.append(batch),
        }
        self.counters.ticks += u64::from(batch_domain.len());

        // 3. Parallel shard ingestion, each shard logging its boundary
        // candidates per tick through the observer tap.  Workers own their
        // engine for the batch: a panicking or deadline-overrunning worker
        // is abandoned and its shard rebuilt from the retained snapshot plus
        // a replay of the batches since, so one bad worker cannot poison the
        // coordinator and the rebuilt shard is byte-identical.
        let t1 = Instant::now();
        let batch_start = batch_domain.start;
        if self.snapshots.is_none() {
            self.snapshots = Some(self.shards.clone());
            self.retained_batches.clear();
        }
        let (tx, rx) = mpsc::channel();
        let mut engines: Vec<Option<GatheringEngine>> = self.shards.drain(..).map(Some).collect();
        for (s, sets) in local_sets.iter().enumerate() {
            let mut engine = engines[s].take().expect("each shard engine is taken once");
            let sets = sets.clone();
            let bits = boundary_bits[s].clone();
            let fault = self.pending_faults[s].take();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    ingest_with_boundary_log(&mut engine, sets, &bits, batch_start, fault)
                }));
                // The receiver hangs up once the deadline passes; a failed
                // send is exactly the abandoned-worker case.
                let _ = tx.send((s, outcome.ok().map(|log| (engine, log))));
            });
        }
        drop(tx);
        let mut results: Vec<Option<(GatheringEngine, Vec<(Timestamp, Vec<Crowd>)>)>> =
            (0..shard_count).map(|_| None).collect();
        let mut seen = vec![false; shard_count];
        let mut pending = shard_count;
        while pending > 0 {
            let message = match self.supervision.worker_deadline {
                None => rx.recv().ok(),
                Some(budget) => match budget.checked_sub(t1.elapsed()) {
                    None => None,
                    Some(left) => rx.recv_timeout(left).ok(),
                },
            };
            let Some((s, payload)) = message else { break };
            if seen[s] {
                continue;
            }
            seen[s] = true;
            pending -= 1;
            results[s] = payload;
        }
        drop(rx);
        for (s, slot) in results.into_iter().enumerate() {
            match slot {
                Some((engine, log)) => {
                    self.shards.push(engine);
                    logs[s].extend(log);
                }
                None => {
                    // Panicked, stalled past the deadline, or never reported:
                    // rebuild from the snapshot, replay the retained batches,
                    // then run the current batch inline — with its boundary
                    // log, which the merge replay below still needs.
                    let snapshots = self.snapshots.as_ref().expect("snapshot taken above");
                    let mut engine = snapshots[s].clone();
                    for past in &self.retained_batches {
                        engine.ingest_clusters(ClusterDatabase::from_sets(past[s].clone()));
                    }
                    let log = ingest_with_boundary_log(
                        &mut engine,
                        local_sets[s].clone(),
                        &boundary_bits[s],
                        batch_start,
                        None,
                    );
                    self.shards.push(engine);
                    logs[s].extend(log);
                    self.restarts[s] += 1;
                    if gpdt_obs::enabled() {
                        gpdt_obs::counter!("shard.rebuilds").inc();
                        gpdt_obs::record_event(
                            "shard.rebuild",
                            Some(batch_start),
                            format!(
                                "shard {s} worker lost (panic/deadline); rebuilt from \
                                 snapshot + {} retained batches",
                                self.retained_batches.len()
                            ),
                        );
                    }
                }
            }
        }
        self.retained_batches.push(local_sets);
        if self.retained_batches.len() as u64 >= self.supervision.snapshot_interval.max(1) {
            self.snapshots = Some(self.shards.clone());
            self.retained_batches.clear();
        }
        let shard_nanos = t1.elapsed().as_nanos() as u64;
        self.counters.shard_nanos += shard_nanos;
        if gpdt_obs::enabled() {
            gpdt_obs::histogram!("shard.ingest").record(shard_nanos);
        }

        // 4. Merge replay: one sequential pass over the batch's ticks.
        let t2 = Instant::now();
        let mc = self.config.crowd.mc;
        let kc = self.config.crowd.kc;
        let cdb = &self.cdb;
        let layouts = &self.layouts;
        let cross_in = &mut self.cross_in;
        let cross_out = &mut self.cross_out;
        let counters = &mut self.counters;
        let mut merge = std::mem::take(&mut self.merge);
        let mut merge_closed: Vec<Crowd> = Vec::new();
        let mut scratch = SearcherScratch::new();
        let mut near: Vec<usize> = Vec::new();
        for t in batch_domain.iter() {
            let set = cdb.set_at(t).expect("batch tick was just appended");
            let layout = layout_at(layouts, t).expect("batch tick layout was just pushed");

            // The merge has work at this tick only if tainted paths are open
            // or a qualifying boundary tail at t-1 could start a cross edge;
            // otherwise skip the tick — and its global index build, the
            // dominant replay cost — entirely.
            let prev = t
                .checked_sub(1)
                .and_then(|pt| layout_at(layouts, pt).zip(cdb.set_at(pt)));
            let tails = prev.as_ref().map_or(0, |(pl, ps)| {
                pl.boundary
                    .iter()
                    .filter(|&&gidx| ps.clusters[gidx as usize].len() >= mc)
                    .count()
            });
            let boundary_work = tails > 0;
            if merge.is_empty() && !boundary_work {
                continue;
            }
            // Every strategy returns the same result set (a repo invariant,
            // exercised by the strategy-equivalence tests), so for a handful
            // of probes the early-exit scan beats paying a full per-tick
            // index build — the replay's dominant cost otherwise.
            let tick_strategy = if merge.len() + tails <= 16 {
                RangeSearchStrategy::BruteForce
            } else {
                self.strategy
            };
            let searcher = TickSearcher::build_with(tick_strategy, set, delta, &mut scratch);

            // 4a. Cross-shard edges between t-1 and t, splicing logged
            // prefixes onto each cross extension.  Only boundary clusters
            // can be incident to one (partitioner guarantee).
            let mut imports: Vec<Crowd> = Vec::new();
            if boundary_work {
                let prev_t = t - 1;
                let (prev_layout, prev_set) = prev.expect("boundary_work implies a previous tick");
                for &gidx in &prev_layout.boundary {
                    let tail = &prev_set.clusters[gidx as usize];
                    if tail.len() < mc {
                        continue;
                    }
                    let tail_shard = prev_layout.shard[gidx as usize];
                    searcher.search_into(tail, &mut near);
                    for &didx in &near {
                        if set.clusters[didx].len() < mc || layout.shard[didx] == tail_shard {
                            continue;
                        }
                        // A cross edge.  Its endpoints invalidate local
                        // seeds/closures; its traversals are re-derived
                        // here from the logged prefixes.
                        cross_out.insert(ClusterId::new(prev_t, gidx as usize));
                        cross_in.insert(ClusterId::new(t, didx));
                        counters.cross_edges += 1;
                        let local_tail = prev_layout.local[gidx as usize] as usize;
                        let Some((_, prefixes)) = logs[tail_shard as usize]
                            .iter()
                            .find(|(lt, _)| *lt == prev_t)
                        else {
                            continue;
                        };
                        for prefix in prefixes.iter().filter(|p| p.last().index == local_tail) {
                            let global = remap_crowd(layouts, prefix, tail_shard as usize);
                            // A spuriously seeded prefix is itself the
                            // suffix of tainted paths already tracked by
                            // the merge sweep — importing it would
                            // double-count.
                            if cross_in.contains(&global.cluster_ids()[0]) {
                                continue;
                            }
                            imports.push(global.extended(ClusterId::new(t, didx)));
                            counters.imported += 1;
                        }
                    }
                }
            }

            // 4b. Advance the tainted paths one tick against the *global*
            // cluster set — exactly the single engine's extension rule.
            let mut next_merge: Vec<Crowd> = Vec::with_capacity(merge.len() + imports.len());
            for path in merge.drain(..) {
                let last = cdb
                    .cluster(path.last())
                    .expect("merge paths stay within retained history");
                searcher.search_into(last, &mut near);
                near.retain(|&didx| set.clusters[didx].len() >= mc);
                match near.split_last() {
                    None => {
                        if path.lifetime() >= kc {
                            merge_closed.push(path);
                        }
                    }
                    Some((&last_idx, rest)) => {
                        for &didx in rest {
                            next_merge.push(path.extended(ClusterId::new(t, didx)));
                        }
                        next_merge.push(path.into_extended(ClusterId::new(t, last_idx)));
                    }
                }
            }
            next_merge.extend(imports);
            merge = next_merge;
        }
        self.merge = merge;
        // The replay loop above is the cost sharding *adds*; gathering
        // detection below is work a single engine performs anyway, so it is
        // excluded from the reported merge overhead.
        let merge_nanos = t2.elapsed().as_nanos() as u64;
        counters.merge_nanos += merge_nanos;
        if gpdt_obs::enabled() {
            gpdt_obs::histogram!("shard.merge").record(merge_nanos);
        }

        // Gathering detection for the merged crowds (no shard computed them),
        // fanned out across the thread budget.
        counters.merge_finalized += merge_closed.len() as u64;
        let config = &self.config;
        let variant = self.variant;
        let mut pending: Vec<CrowdRecord> = par_map(&merge_closed, self.threads, |crowd| {
            let gatherings = detect_closed_gatherings(crowd, cdb, &config.gathering, kc, variant);
            CrowdRecord {
                crowd: crowd.clone(),
                gatherings,
            }
        });

        // 5. Pull the shards' newly finalized records, dropping the ones a
        // cross edge invalidated (their corrected counterparts come out of
        // the merge sweep) and rewriting the rest to global ids.
        for s in 0..shard_count {
            let records = self.shards[s].finalized_records();
            for record in &records[self.consumed[s]..] {
                let crowd = remap_crowd(layouts, &record.crowd, s);
                let first = crowd.cluster_ids()[0];
                let last = *crowd.cluster_ids().last().expect("crowds are non-empty");
                if cross_in.contains(&first) || cross_out.contains(&last) {
                    counters.dropped += 1;
                    continue;
                }
                let gatherings = record
                    .gatherings
                    .iter()
                    .map(|g| {
                        Gathering::from_parts(
                            remap_crowd(layouts, g.crowd(), s),
                            g.participators().to_vec(),
                        )
                    })
                    .collect();
                pending.push(CrowdRecord { crowd, gatherings });
            }
            self.consumed[s] = records.len();
        }
        pending.sort_by(|a, b| canonical_crowd_order(&a.crowd, &b.crowd));
        let new_finalized = pending.len();
        self.finalized.extend(pending);

        ShardedUpdate {
            new_finalized,
            new_cross_edges: self.counters.cross_edges - before.cross_edges,
            new_imported_paths: self.counters.imported - before.imported,
            new_dropped_records: self.counters.dropped - before.dropped,
        }
    }

    /// All currently known closed crowds, in the canonical order — identical
    /// to a single engine's [`closed_crowds`](GatheringEngine::closed_crowds)
    /// over the same stream.
    pub fn closed_crowds(&self) -> Vec<Crowd> {
        let kc = self.config.crowd.kc;
        let mut crowds: Vec<Crowd> = self.finalized.iter().map(|r| r.crowd.clone()).collect();
        for (s, engine) in self.shards.iter().enumerate() {
            for (crowd, _) in engine.frontier() {
                if crowd.lifetime() < kc {
                    continue;
                }
                let global = remap_crowd(&self.layouts, crowd, s);
                if self.cross_in.contains(&global.cluster_ids()[0]) {
                    continue; // spurious local seed; the merge sweep owns it
                }
                crowds.push(global);
            }
        }
        crowds.extend(self.merge.iter().filter(|c| c.lifetime() >= kc).cloned());
        crowds.sort_by(canonical_crowd_order);
        crowds
    }

    /// All currently known closed gatherings, in the canonical order —
    /// identical to a single engine's
    /// [`gatherings`](GatheringEngine::gatherings) over the same stream.
    pub fn gatherings(&self) -> Vec<Gathering> {
        let kc = self.config.crowd.kc;
        let mut out: Vec<Gathering> = self
            .finalized
            .iter()
            .flat_map(|r| r.gatherings.iter().cloned())
            .collect();
        for (s, engine) in self.shards.iter().enumerate() {
            for (crowd, gatherings) in engine.frontier() {
                if crowd.lifetime() < kc {
                    continue;
                }
                let global = remap_crowd(&self.layouts, crowd, s);
                if self.cross_in.contains(&global.cluster_ids()[0]) {
                    continue;
                }
                out.extend(gatherings.iter().map(|g| {
                    Gathering::from_parts(
                        remap_crowd(&self.layouts, g.crowd(), s),
                        g.participators().to_vec(),
                    )
                }));
            }
        }
        for path in self.merge.iter().filter(|c| c.lifetime() >= kc) {
            out.extend(detect_closed_gatherings(
                path,
                &self.cdb,
                &self.config.gathering,
                kc,
                self.variant,
            ));
        }
        out.sort_by(canonical_gathering_order);
        out
    }

    /// Evicts every retained tick no future merge or remap step can touch:
    /// older than the trailing `kc` window, every shard-frontier start and
    /// every open merge path's start.  Returns the number of evicted ticks.
    ///
    /// Runs automatically (one ingest step deferred) under
    /// [`RetentionPolicy::Bounded`]; the shard engines evict their own
    /// databases with the same policy.
    pub fn evict_retired_clusters(&mut self) -> usize {
        let Some(domain) = self.cdb.time_domain() else {
            return 0;
        };
        let mut keep_from = (domain.end + 1).saturating_sub(self.config.crowd.kc);
        for engine in &self.shards {
            for (crowd, _) in engine.frontier() {
                keep_from = keep_from.min(crowd.start_time());
            }
        }
        for path in &self.merge {
            keep_from = keep_from.min(path.start_time());
        }
        let evicted = self.cdb.evict_before(keep_from);
        while self
            .layouts
            .front()
            .is_some_and(|layout| layout.time < keep_from)
        {
            self.layouts.pop_front();
        }
        self.cross_in.retain_from(keep_from);
        self.cross_out.retain_from(keep_from);
        evicted
    }

    /// Reassembles a sharded engine from externally persisted state (the
    /// restore half of the `gpdt-store` sharded checkpoint).
    ///
    /// The per-tick layouts are *not* part of the persisted state: the
    /// partitioner is deterministic in the cluster contents, so they are
    /// rebuilt by re-partitioning the stored global database — and
    /// cross-checked against the shard engines' own databases.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency between the parts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        config: GatheringConfig,
        strategy: RangeSearchStrategy,
        variant: TadVariant,
        partitioner: Partitioner,
        shard_engines: Vec<GatheringEngine>,
        cdb: ClusterDatabase,
        merge: Vec<Crowd>,
        cross_in: Vec<ClusterId>,
        cross_out: Vec<ClusterId>,
        finalized: Vec<CrowdRecord>,
    ) -> Result<Self, &'static str> {
        if shard_engines.is_empty() {
            return Err("a sharded engine needs at least one shard");
        }
        let shard_count = shard_engines.len();
        let domain = cdb.time_domain();
        let end = domain.map(|d| d.end);

        // Rebuild the per-tick layouts from the partitioner (the same
        // `build_layout` the live ingest uses, so a restored engine derives
        // byte-identical layouts).
        let delta = config.crowd.delta;
        let layouts: VecDeque<TickLayout> = cdb
            .iter()
            .map(|set| build_layout(set, &partitioner, delta, shard_count))
            .collect();

        // Cross-checks against the shard engines: every retained local tick
        // must hold exactly the clusters the partitioner assigns to that
        // shard, in layout order.  Count-only checking would let a
        // re-encoded checkpoint with swapped shard sections restore and then
        // remap local ids through the wrong `to_global` table.
        for (s, engine) in shard_engines.iter().enumerate() {
            if engine.time_domain().map(|d| d.end) != end {
                return Err("shard engine time domain disagrees with the global database");
            }
            let local = engine.cluster_database();
            for layout in &layouts {
                // A tick absent from the shard was evicted locally; nothing
                // to check there.
                let Some(set) = local.set_at(layout.time) else {
                    continue;
                };
                let global = cdb
                    .set_at(layout.time)
                    .expect("layouts mirror the database");
                if set.len() != layout.to_global[s].len()
                    || !layout.to_global[s]
                        .iter()
                        .zip(&set.clusters)
                        .all(|(&gidx, cluster)| global.clusters[gidx as usize] == *cluster)
                {
                    return Err("shard clusters disagree with the partitioner assignment");
                }
            }
        }
        for path in &merge {
            if Some(path.end_time()) != end {
                return Err("merge path does not end at the last ingested timestamp");
            }
            if path
                .cluster_ids()
                .iter()
                .any(|&id| cdb.cluster(id).is_none())
            {
                return Err("merge path references a cluster missing from the database");
            }
        }
        if cross_in.windows(2).any(|w| w[0] >= w[1]) || cross_out.windows(2).any(|w| w[0] >= w[1]) {
            return Err("cross-edge sets must be sorted and duplicate-free");
        }
        // Finalized records tolerate ticks evicted by bounded retention
        // (anything older than the retained window) but must otherwise
        // resolve — the same leniency the single-engine restore applies.
        let retained_ok = |crowd: &Crowd| {
            crowd
                .cluster_ids()
                .iter()
                .all(|&id| cdb.cluster(id).is_some() || domain.is_some_and(|d| id.time < d.start))
        };
        for record in &finalized {
            if !retained_ok(&record.crowd)
                || record.gatherings.iter().any(|g| !retained_ok(g.crowd()))
            {
                return Err("finalized record references a cluster missing from the database");
            }
        }

        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let per_shard = (threads / shard_count).max(1);
        let mut clusterer = StreamingClusterer::new(config.clustering).with_threads(threads);
        if let Some(d) = domain {
            clusterer.seek(d.end + 1);
        }
        let consumed = shard_engines
            .iter()
            .map(|e| e.finalized_records().len())
            .collect();
        Ok(ShardedEngine {
            config,
            strategy,
            variant,
            threads,
            retention: RetentionPolicy::KeepAll,
            partitioner,
            shards: shard_engines
                .into_iter()
                .map(|e| {
                    e.with_strategy(strategy)
                        .with_variant(variant)
                        .with_threads(per_shard)
                })
                .collect(),
            consumed,
            clusterer,
            cdb,
            layouts,
            cross_in: CrossSet { ids: cross_in },
            cross_out: CrossSet { ids: cross_out },
            merge,
            finalized,
            counters: Counters::default(),
            supervision: ShardSupervision::default(),
            snapshots: None,
            retained_batches: Vec::new(),
            restarts: vec![0; shard_count],
            pending_faults: vec![None; shard_count],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::GridPartitioner;
    use gpdt_core::{ClusteringParams, CrowdParams, GatheringParams};
    use gpdt_trajectory::{ObjectId, Trajectory};

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(60.0, 3))
            .crowd(CrowdParams::new(3, 3, 120.0))
            .gathering(GatheringParams::new(3, 3))
            .build()
            .unwrap()
    }

    /// A blob of five objects drifting steadily along +x: with a small grid
    /// cell it crosses several cell (and shard) borders over its lifetime.
    fn drifting_db(ticks: u32) -> TrajectoryDatabase {
        TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..ticks)
                    .map(|t| (t, (f64::from(t) * 60.0 + f64::from(i) * 8.0, f64::from(i))))
                    .collect::<Vec<_>>(),
            )
        }))
    }

    fn outputs(engine: &ShardedEngine) -> (Vec<Crowd>, Vec<Gathering>) {
        (engine.closed_crowds(), engine.gatherings())
    }

    #[test]
    fn border_crossing_crowd_matches_single_engine() {
        let db = drifting_db(12);
        let mut single = GatheringEngine::new(config());
        single.ingest_trajectories(&db);
        let reference = (single.closed_crowds(), single.gatherings());
        assert!(!reference.0.is_empty(), "the drift must form a crowd");

        for shards in [1usize, 2, 4, 7] {
            // Cell side 150 with delta 120: the blob is boundary-adjacent
            // almost everywhere, exercising the merge hard.
            let partitioner = Partitioner::Grid(GridPartitioner::new(150.0));
            let mut sharded = ShardedEngine::new(config(), shards, partitioner);
            let update = sharded.ingest_trajectories(&db);
            assert_eq!(outputs(&sharded), reference, "{shards} shards");
            if shards > 1 {
                // The drift crosses cells; with >1 shard some crossing must
                // actually change shards for this layout... not guaranteed
                // for every hash layout, so only assert the bookkeeping is
                // consistent.
                let stats = sharded.stats();
                assert_eq!(stats.cross_edges, update.new_cross_edges);
            }
        }
    }

    #[test]
    fn sliced_ingest_matches_one_shot() {
        let db = drifting_db(14);
        let partitioner = Partitioner::Grid(GridPartitioner::new(200.0));
        let mut whole = ShardedEngine::new(config(), 3, partitioner);
        whole.ingest_trajectories(&db);

        let mut sliced = ShardedEngine::new(config(), 3, partitioner);
        for end in [2u32, 3, 7, 8, 13] {
            sliced.ingest_trajectories_until(&db, end);
        }
        assert_eq!(outputs(&sliced), outputs(&whole));
        assert_eq!(
            sliced.finalized_records().len(),
            whole.finalized_records().len()
        );
    }

    #[test]
    fn hash_partitioner_matches_single_engine() {
        let db = drifting_db(10);
        let mut single = GatheringEngine::new(config());
        single.ingest_trajectories(&db);

        let mut sharded = ShardedEngine::new(config(), 4, Partitioner::HashByObject);
        sharded.ingest_trajectories(&db);
        assert_eq!(sharded.closed_crowds(), single.closed_crowds());
        assert_eq!(sharded.gatherings(), single.gatherings());
    }

    #[test]
    fn bounded_retention_is_output_neutral_and_bounded() {
        // Gather-scatter cycles so the frontier resets and eviction can bite.
        let cycles = 8u32;
        let mut trajectories: Vec<(u32, Vec<(u32, (f64, f64))>)> =
            (0..5u32).map(|i| (i, Vec::new())).collect();
        for cycle in 0..cycles {
            for t in 0..7u32 {
                let tick = cycle * 7 + t;
                for (i, points) in trajectories.iter_mut() {
                    let x = if t < 4 {
                        f64::from(cycle) * 130.0 + f64::from(*i) * 9.0
                    } else {
                        f64::from(*i) * 50_000.0 + f64::from(tick) * 11.0
                    };
                    points.push((tick, (x, 0.0)));
                }
            }
        }
        let db = TrajectoryDatabase::from_trajectories(
            trajectories
                .into_iter()
                .map(|(i, pts)| Trajectory::from_points(ObjectId::new(i), pts)),
        );

        let partitioner = Partitioner::Grid(GridPartitioner::new(180.0));
        let mut keep_all = ShardedEngine::new(config(), 3, partitioner);
        let mut bounded =
            ShardedEngine::new(config(), 3, partitioner).with_retention(RetentionPolicy::Bounded);
        let domain = db.time_domain().unwrap();
        let mut max_resident = 0;
        for t in domain.iter() {
            keep_all.ingest_trajectories_until(&db, t);
            bounded.ingest_trajectories_until(&db, t);
            max_resident = max_resident.max(bounded.cluster_database().len());
        }
        assert_eq!(outputs(&bounded), outputs(&keep_all));
        assert_eq!(
            keep_all.cluster_database().len(),
            (7 * cycles) as usize,
            "keep-all retains the full stream"
        );
        assert!(
            max_resident <= 10,
            "bounded retention kept {max_resident} ticks resident"
        );
    }

    #[test]
    fn stats_track_shard_load() {
        let db = drifting_db(9);
        let mut sharded =
            ShardedEngine::new(config(), 2, Partitioner::Grid(GridPartitioner::new(150.0)));
        sharded.ingest_trajectories(&db);
        let stats = sharded.stats();
        assert_eq!(stats.shard_count, 2);
        assert_eq!(stats.ticks_ingested, 9);
        assert_eq!(stats.per_shard.len(), 2);
        let objects: usize = stats.per_shard.iter().map(|s| s.last_tick_objects).sum();
        assert_eq!(objects, 5, "every object is clustered on exactly one shard");
        assert_eq!(stats.finalized_records, sharded.finalized_records().len());
    }

    #[test]
    fn empty_ingest_is_a_no_op() {
        let mut sharded =
            ShardedEngine::new(config(), 2, Partitioner::Grid(GridPartitioner::new(100.0)));
        assert_eq!(
            sharded.ingest_clusters(ClusterDatabase::new()),
            ShardedUpdate::default()
        );
        assert!(sharded.time_domain().is_none());
        assert!(sharded.closed_crowds().is_empty());
        assert!(sharded.gatherings().is_empty());
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let db = drifting_db(10);
        let partitioner = Partitioner::Grid(GridPartitioner::new(150.0));
        let mut sharded = ShardedEngine::new(config(), 3, partitioner);
        sharded.ingest_trajectories_until(&db, 6);
        let reference_now = outputs(&sharded);

        // Disassemble through the public accessors, reassemble, compare —
        // then continue both and compare again.
        let rebuilt = ShardedEngine::from_parts(
            *sharded.config(),
            sharded.strategy(),
            sharded.variant(),
            *sharded.partitioner(),
            sharded
                .shard_engines()
                .iter()
                .map(|e| {
                    GatheringEngine::from_parts(
                        *e.config(),
                        e.strategy(),
                        e.variant(),
                        e.cluster_database().clone(),
                        e.finalized_records().to_vec(),
                        e.frontier().to_vec(),
                    )
                })
                .collect(),
            sharded.cluster_database().clone(),
            sharded.merge_frontier().to_vec(),
            sharded.cross_edge_heads().to_vec(),
            sharded.cross_edge_tails().to_vec(),
            sharded.finalized_records().to_vec(),
        )
        .expect("valid parts reassemble");
        assert_eq!(outputs(&rebuilt), reference_now);

        let mut rebuilt = rebuilt;
        rebuilt.ingest_trajectories(&db);
        sharded.ingest_trajectories(&db);
        assert_eq!(outputs(&rebuilt), outputs(&sharded));

        // A finalized record referencing a cluster absent from the (non-
        // evicted) database is rejected.
        let mut bogus = sharded.finalized_records().to_vec();
        if let Some(first) = bogus.first_mut() {
            first.crowd = Crowd::new(vec![ClusterId::new(first.crowd.start_time(), 999)]);
            let err = ShardedEngine::from_parts(
                *sharded.config(),
                sharded.strategy(),
                sharded.variant(),
                *sharded.partitioner(),
                sharded
                    .shard_engines()
                    .iter()
                    .map(|e| {
                        GatheringEngine::from_parts(
                            *e.config(),
                            e.strategy(),
                            e.variant(),
                            e.cluster_database().clone(),
                            e.finalized_records().to_vec(),
                            e.frontier().to_vec(),
                        )
                    })
                    .collect(),
                sharded.cluster_database().clone(),
                sharded.merge_frontier().to_vec(),
                sharded.cross_edge_heads().to_vec(),
                sharded.cross_edge_tails().to_vec(),
                bogus,
            )
            .unwrap_err();
            assert!(err.contains("finalized record"), "{err}");
        }

        // A merge path not ending at the domain end is rejected.
        let err = ShardedEngine::from_parts(
            *sharded.config(),
            sharded.strategy(),
            sharded.variant(),
            *sharded.partitioner(),
            vec![GatheringEngine::new(*sharded.config())],
            ClusterDatabase::new(),
            vec![Crowd::new(vec![ClusterId::new(3, 0)])],
            Vec::new(),
            Vec::new(),
            Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("merge path"));
    }

    #[test]
    fn panicking_shard_worker_is_rebuilt_byte_identically() {
        let db = drifting_db(14);
        let partitioner = Partitioner::Grid(GridPartitioner::new(150.0));
        let mut clean = ShardedEngine::new(config(), 3, partitioner);
        let mut faulty = ShardedEngine::new(config(), 3, partitioner);
        let domain = db.time_domain().unwrap();
        for (batch, end) in [3u32, 7, 10, domain.end].into_iter().enumerate() {
            if batch == 2 {
                faulty.inject_shard_fault(0, ShardFault::PanicOnce);
                faulty.inject_shard_fault(2, ShardFault::PanicOnce);
            }
            clean.ingest_trajectories_until(&db, end);
            faulty.ingest_trajectories_until(&db, end);
        }
        assert_eq!(outputs(&faulty), outputs(&clean));
        assert_eq!(faulty.finalized_records(), clean.finalized_records());
        assert_eq!(faulty.restarts(), &[1, 0, 1]);
        assert_eq!(clean.restarts(), &[0, 0, 0]);
        let stats = faulty.stats();
        assert_eq!(
            stats.per_shard.iter().map(|l| l.restarts).sum::<u64>(),
            2,
            "restart counts surface in the per-shard load report"
        );
    }

    #[test]
    fn stalled_shard_worker_is_abandoned_and_rebuilt() {
        let db = drifting_db(12);
        let partitioner = Partitioner::Grid(GridPartitioner::new(150.0));
        let mut clean = ShardedEngine::new(config(), 2, partitioner);
        clean.ingest_trajectories(&db);

        let supervision = ShardSupervision {
            worker_deadline: Some(Duration::from_millis(40)),
            snapshot_interval: 2,
        };
        let mut stalled =
            ShardedEngine::new(config(), 2, partitioner).with_supervision(supervision);
        let domain = db.time_domain().unwrap();
        let mut fired = false;
        for end in [2u32, 5, 8, domain.end] {
            if !fired {
                stalled.inject_shard_fault(1, ShardFault::StallOnce(Duration::from_secs(5)));
                fired = true;
            }
            stalled.ingest_trajectories_until(&db, end);
        }
        assert_eq!(outputs(&stalled), outputs(&clean));
        assert_eq!(stalled.restarts(), &[0, 1]);
    }

    #[test]
    fn snapshot_interval_refresh_keeps_rebuilds_exact() {
        // A tiny snapshot interval forces several snapshot refreshes across
        // the batches, and a late fault exercises the replay-from-refresh
        // path rather than replay-from-genesis.
        let db = drifting_db(16);
        let partitioner = Partitioner::Grid(GridPartitioner::new(150.0));
        let mut clean = ShardedEngine::new(config(), 3, partitioner);
        clean.ingest_trajectories(&db);

        let supervision = ShardSupervision {
            worker_deadline: None,
            snapshot_interval: 1,
        };
        let mut faulty = ShardedEngine::new(config(), 3, partitioner).with_supervision(supervision);
        let domain = db.time_domain().unwrap();
        let ends = [1u32, 3, 5, 7, 9, 11, 13, domain.end];
        for (batch, end) in ends.into_iter().enumerate() {
            if batch == 6 {
                faulty.inject_shard_fault(1, ShardFault::PanicOnce);
            }
            faulty.ingest_trajectories_until(&db, end);
        }
        assert_eq!(outputs(&faulty), outputs(&clean));
        assert_eq!(faulty.finalized_records(), clean.finalized_records());
        assert_eq!(faulty.restarts(), &[0, 1, 0]);
    }
}
