//! Sharded multi-engine ingest with an exact cross-shard crowd merge.
//!
//! The discovery work of `gpdt-core` is inherently per-region — snapshot
//! clustering, crowd sweeping and gathering detection all operate on
//! spatially local data — yet a single [`GatheringEngine`] funnels every
//! cluster through one sweep.  This crate partitions the per-tick snapshot
//! clusters across `N` independent engines and recombines their results so
//! that the output is **identical to a single-engine run for any shard
//! count and either partitioner** (the same bar the streaming engine sets
//! for batch-slicing independence).
//!
//! # Why an exact merge is possible
//!
//! Crowd discovery (Algorithm 1) is path enumeration over a static DAG: the
//! nodes are the snapshot clusters with at least `mc` members, and there is
//! an edge between clusters at consecutive ticks iff their Hausdorff
//! distance is at most `δ`.  The closed crowds are exactly the
//! source-to-sink paths of that DAG (length ≥ `kc`), and gathering
//! detection reads only the clusters of its own crowd.  A shard engine
//! therefore discovers exactly the paths of the subgraph induced by its
//! clusters; everything it can get wrong involves a **cross-shard edge**:
//!
//! * a locally seeded path whose start has a cross-shard in-edge is
//!   spurious (globally the start is absorbed by a longer path);
//! * a locally closed path whose end has a cross-shard out-edge closed too
//!   early (globally it extends into the neighbouring shard);
//! * paths containing a cross-shard edge are discovered by no shard at all.
//!
//! The [`ShardedEngine`] merge pass repairs all three deterministically: it
//! detects every cross-shard edge among the boundary-adjacent clusters,
//! drops the local results invalidated by one, and runs its own sweep over
//! the *tainted* paths — splicing shard-recorded boundary prefixes (via the
//! per-tick observer hook of
//! [`CrowdDiscovery::run_resumed_observed`](gpdt_core::CrowdDiscovery::run_resumed_observed))
//! onto cross-edge extensions and carrying them forward against the global
//! cluster sets.  With the spatial [`GridPartitioner`] only clusters whose
//! `δ`-inflated bounding box leaks out of their home cell can be incident
//! to a cross edge, so the merge touches a thin boundary slice; the
//! [`Partitioner::HashByObject`] fallback treats every cluster as boundary
//! (correct for arbitrary data, with merge cost approaching a full sweep).
//!
//! ```
//! use gpdt_core::{GatheringConfig, GatheringEngine};
//! use gpdt_shard::{GridPartitioner, Partitioner, ShardedEngine};
//! use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
//!
//! let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
//!     Trajectory::from_points(
//!         ObjectId::new(i),
//!         (0..8u32).map(|t| (t, (i as f64 * 10.0, t as f64))).collect::<Vec<_>>(),
//!     )
//! }));
//! let config = GatheringConfig::builder()
//!     .clustering(gpdt_core::ClusteringParams::new(60.0, 3))
//!     .crowd(gpdt_core::CrowdParams::new(4, 4, 100.0))
//!     .gathering(gpdt_core::GatheringParams::new(3, 3))
//!     .build()
//!     .unwrap();
//!
//! let partitioner = Partitioner::Grid(GridPartitioner::new(400.0));
//! let mut sharded = ShardedEngine::new(config, 4, partitioner);
//! sharded.ingest_trajectories(&db);
//!
//! let mut single = GatheringEngine::new(config);
//! single.ingest_trajectories(&db);
//! assert_eq!(sharded.closed_crowds(), single.closed_crowds());
//! assert_eq!(sharded.gatherings(), single.gatherings());
//! ```
//!
//! [`GatheringEngine`]: gpdt_core::GatheringEngine

pub mod engine;
pub mod partition;

pub use engine::{
    ShardFault, ShardLoad, ShardSupervision, ShardedEngine, ShardedStats, ShardedUpdate,
};
pub use partition::{GridPartitioner, Partitioner};
