//! Pluggable cluster-to-shard assignment.
//!
//! A [`Partitioner`] deterministically maps every snapshot cluster to one of
//! `N` shards, tick by tick.  Assignment follows the cluster (the moving
//! group), not a static object→shard table: objects migrate, and a crowd's
//! identity is its cluster sequence, so assigning the *group's current home
//! region* keeps consecutive clusters of the same crowd on one shard almost
//! always — the cross-shard residue is exactly what the merge pass repairs.
//!
//! Two strategies are provided:
//!
//! * [`Partitioner::Grid`] — a uniform spatial grid over home regions: a
//!   cluster belongs to the cell containing its centroid, and cells are
//!   mapped to shards by a deterministic hash.  Its load-bearing property is
//!   the **boundary guarantee**: if the cluster's `δ`-inflated bounding box
//!   stays inside cells of its own shard, no cluster of another shard can be
//!   within Hausdorff distance `δ` (all its points — hence its centroid —
//!   would lie in those same cells), so the cluster can never be incident to
//!   a cross-shard edge and the merge pass may ignore it entirely.
//! * [`Partitioner::HashByObject`] — hash of the cluster's lead (minimum)
//!   object id.  No spatial locality and therefore no boundary pruning —
//!   every cluster is treated as boundary-adjacent — but it balances
//!   pathological geometries where one cell would swallow the whole stream.

use gpdt_clustering::SnapshotCluster;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash used to spread
/// cells/objects across shards without clustering artifacts.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform spatial grid assigning clusters (by centroid) to cells, and cells
/// to shards.  See the [module docs](self) for the boundary guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPartitioner {
    origin_x: f64,
    origin_y: f64,
    cell_side: f64,
}

impl GridPartitioner {
    /// Creates a grid with cells of the given side length, anchored at the
    /// origin.  A good default side is a few multiples of `δ`: large enough
    /// that most clusters are interior, small enough that cells spread over
    /// the shards.
    ///
    /// # Panics
    ///
    /// Panics if `cell_side` is not positive and finite.
    pub fn new(cell_side: f64) -> Self {
        Self::with_origin(cell_side, 0.0, 0.0)
    }

    /// Like [`GridPartitioner::new`] with an explicit grid origin.
    ///
    /// # Panics
    ///
    /// Panics if `cell_side` is not positive and finite or an origin
    /// coordinate is not finite.
    pub fn with_origin(cell_side: f64, origin_x: f64, origin_y: f64) -> Self {
        assert!(
            cell_side.is_finite() && cell_side > 0.0,
            "grid cell side must be positive and finite, got {cell_side}"
        );
        assert!(
            origin_x.is_finite() && origin_y.is_finite(),
            "grid origin must be finite"
        );
        GridPartitioner {
            origin_x,
            origin_y,
            cell_side,
        }
    }

    /// The cell side length.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// The grid origin.
    pub fn origin(&self) -> (f64, f64) {
        (self.origin_x, self.origin_y)
    }

    /// The cell containing point `(x, y)`.  `floor` is monotone, so for any
    /// axis-aligned box whose two corners map to the same cell, every point
    /// of the box does too — the exact argument behind the boundary test
    /// (no epsilon fudging required).
    fn cell_of(&self, x: f64, y: f64) -> (i64, i64) {
        (
            ((x - self.origin_x) / self.cell_side).floor() as i64,
            ((y - self.origin_y) / self.cell_side).floor() as i64,
        )
    }

    /// Deterministic cell → shard assignment.
    fn shard_of_cell(cell: (i64, i64), shards: usize) -> usize {
        let key = (cell.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (cell.1 as u64);
        (mix64(key) % shards as u64) as usize
    }
}

/// The cluster-to-shard assignment strategy of a
/// [`ShardedEngine`](crate::ShardedEngine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partitioner {
    /// Spatial grid over home regions (see [`GridPartitioner`]).
    Grid(GridPartitioner),
    /// Hash of the cluster's lead (minimum) object id: the
    /// locality-oblivious fallback.  Every cluster counts as
    /// boundary-adjacent, so correctness is preserved at the price of a
    /// merge pass that approaches a full sweep.
    HashByObject,
}

impl Partitioner {
    /// The shard a cluster belongs to, out of `shards` (≥ 1).
    ///
    /// Deterministic in the cluster's contents: re-running the assignment
    /// over a restored cluster database reproduces it exactly, which is how
    /// checkpoints avoid persisting the per-tick layout.
    pub fn shard_of(&self, cluster: &SnapshotCluster, shards: usize) -> usize {
        debug_assert!(shards >= 1);
        match self {
            Partitioner::Grid(grid) => {
                let c = cluster.centroid();
                GridPartitioner::shard_of_cell(grid.cell_of(c.x, c.y), shards)
            }
            Partitioner::HashByObject => {
                let lead = cluster.members()[0];
                (mix64(u64::from(lead.raw())) % shards as u64) as usize
            }
        }
    }

    /// Whether the cluster could be incident to a cross-shard edge: `true`
    /// unless every cell its `δ`-inflated bounding box overlaps maps to the
    /// cluster's own shard.
    ///
    /// Soundness: `dH(c, d) ≤ δ` forces every point of `d` — and hence `d`'s
    /// centroid, a convex combination — into the `δ`-inflation of `c`'s
    /// MBR.  If every cell overlapping that inflation belongs to `c`'s
    /// shard, `d` is assigned to the same shard, so no cross edge can touch
    /// `c`.  Conservatively `true` for huge clusters (inflation spanning
    /// more than 256 cells) and always `true` for the hash partitioner.
    pub fn is_boundary(&self, cluster: &SnapshotCluster, delta: f64, shards: usize) -> bool {
        if shards == 1 {
            return false; // no second shard for a cross edge to reach
        }
        match self {
            Partitioner::Grid(grid) => {
                let c = cluster.centroid();
                let own_cell = grid.cell_of(c.x, c.y);
                let own_shard = GridPartitioner::shard_of_cell(own_cell, shards);
                let mbr = cluster.mbr();
                let (i0, j0) = grid.cell_of(mbr.min_x - delta, mbr.min_y - delta);
                let (i1, j1) = grid.cell_of(mbr.max_x + delta, mbr.max_y + delta);
                let cells = (i1 - i0 + 1).saturating_mul(j1 - j0 + 1);
                if cells > 256 {
                    return true;
                }
                for i in i0..=i1 {
                    for j in j0..=j1 {
                        if GridPartitioner::shard_of_cell((i, j), shards) != own_shard {
                            return true;
                        }
                    }
                }
                false
            }
            Partitioner::HashByObject => true,
        }
    }

    /// Short label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            Partitioner::Grid(_) => "grid",
            Partitioner::HashByObject => "hash-by-object",
        }
    }
}

impl std::fmt::Display for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partitioner::Grid(g) => write!(f, "grid(side={})", g.cell_side),
            Partitioner::HashByObject => f.write_str("hash-by-object"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_geo::Point;
    use gpdt_trajectory::ObjectId;

    fn blob(cx: f64, cy: f64, n: u32) -> SnapshotCluster {
        SnapshotCluster::new(
            0,
            (0..n).map(ObjectId::new).collect(),
            (0..n)
                .map(|i| Point::new(cx + f64::from(i) * 0.5, cy))
                .collect(),
        )
    }

    #[test]
    fn grid_assignment_is_deterministic_and_in_range() {
        let p = Partitioner::Grid(GridPartitioner::new(100.0));
        for shards in [1usize, 2, 4, 7] {
            for k in 0..50 {
                let c = blob(f64::from(k) * 37.0 - 800.0, f64::from(k) * 13.0, 4);
                let s = p.shard_of(&c, shards);
                assert!(s < shards);
                assert_eq!(s, p.shard_of(&c, shards), "assignment must be stable");
            }
        }
    }

    #[test]
    fn deep_interior_cluster_is_not_boundary() {
        let grid = GridPartitioner::new(1000.0);
        let p = Partitioner::Grid(grid);
        // A tight blob in the middle of cell (0, 0), inflation well inside.
        let c = blob(500.0, 500.0, 4);
        assert!(!p.is_boundary(&c, 50.0, 7));
        // The same blob with an inflation reaching the cell edge is boundary
        // whenever a reachable cell belongs to another shard.
        assert!(p.is_boundary(&c, 600.0, 7));
        // With a single shard nothing is ever boundary.
        assert!(!p.is_boundary(&c, 600.0, 1));
    }

    #[test]
    fn boundary_guarantee_holds_for_delta_close_pairs() {
        // Randomly place pairs of clusters within δ of each other; whenever
        // they land on different shards, both must be flagged boundary.
        let grid = GridPartitioner::new(300.0);
        let p = Partitioner::Grid(grid);
        let delta = 80.0;
        let mut state: u64 = 0x1234_5678_9ABC_DEF0;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let x = (next() % 10_000) as f64 / 10.0 - 500.0;
            let y = (next() % 10_000) as f64 / 10.0 - 500.0;
            let a = blob(x, y, 3);
            let b = blob(
                x + (next() % 100) as f64 / 2.0,
                y + (next() % 100) as f64 / 2.0,
                3,
            );
            if !a.within_hausdorff(&b, delta) {
                continue;
            }
            for shards in [2usize, 4, 7] {
                if p.shard_of(&a, shards) != p.shard_of(&b, shards) {
                    assert!(p.is_boundary(&a, delta, shards), "tail must be boundary");
                    assert!(p.is_boundary(&b, delta, shards), "head must be boundary");
                }
            }
        }
    }

    #[test]
    fn hash_partitioner_follows_lead_object_and_is_always_boundary() {
        let p = Partitioner::HashByObject;
        let a = blob(0.0, 0.0, 4);
        let far = SnapshotCluster::new(
            0,
            (0..4u32).map(ObjectId::new).collect(),
            (0..4u32)
                .map(|i| Point::new(99_000.0 + f64::from(i), 0.0))
                .collect(),
        );
        for shards in [1usize, 2, 4, 7] {
            // Same lead object => same shard regardless of geometry.
            assert_eq!(p.shard_of(&a, shards), p.shard_of(&far, shards));
        }
        assert!(p.is_boundary(&a, 1.0, 4));
        assert_eq!(p.label(), "hash-by-object");
        assert!(Partitioner::Grid(GridPartitioner::new(10.0))
            .to_string()
            .starts_with("grid"));
    }
}
