//! Hausdorff distance between point sets.
//!
//! The paper measures the geometric variation between two consecutive
//! snapshot clusters with the (symmetric) Hausdorff distance
//!
//! ```text
//! dH(P, Q) = max{ max_{p∈P} min_{q∈Q} d(p, q),  max_{q∈Q} min_{p∈P} d(p, q) }
//! ```
//!
//! The crowd-discovery range search never needs the exact value — it only
//! needs to know whether `dH ≤ δ` — so this module also provides
//! [`hausdorff_within`], an early-exit threshold test that is the workhorse
//! of the refinement step.
//!
//! For large point sets the threshold test buckets one side into a uniform
//! grid with cell side `δ` ([`hausdorff_within_bucketed`]): a point can only
//! have a `δ`-neighbour inside the 3×3 block of cells around its own cell
//! (the cell side equals the threshold), so each probe inspects a handful of
//! points instead of the whole other set, replacing the O(|P|·|Q|)
//! worst case with near-linear work.  [`hausdorff_within`] dispatches between
//! the brute-force scan and the bucketed test by input size, so callers keep
//! a single entry point.

use crate::point::Point;
use crate::simd::dispatch;
use crate::soa::{PointAccess, PointsView};
use std::sync::OnceLock;

/// Directed Hausdorff distance `h(P → Q) = max_{p∈P} min_{q∈Q} d(p, q)`.
///
/// Returns `0.0` when `from` is empty (there is nothing to be far away) and
/// `f64::INFINITY` when `from` is non-empty but `to` is empty.
pub fn directed_hausdorff(from: &[Point], to: &[Point]) -> f64 {
    directed_hausdorff_access(from, to)
}

/// [`directed_hausdorff`] generic over the point layout.
///
/// Monomorphised per layout: the same early-exit kernel serves `&[Point]`
/// (AoS) and [`PointsView`] (SoA).
pub fn directed_hausdorff_access<P: PointAccess, Q: PointAccess>(from: P, to: Q) -> f64 {
    if from.is_empty() {
        return 0.0;
    }
    if to.is_empty() {
        return f64::INFINITY;
    }
    let mut worst_sq: f64 = 0.0;
    if let Some((txs, tys)) = to.columns() {
        // Columnar target: the inner min-reduction runs on the SIMD kernel.
        // An early-exited minimum may differ across levels but is always
        // ≤ `worst_sq`, in which case it is discarded below — exactly like
        // the scalar loop's `break` — so the returned distance is
        // bit-identical to the generic path.
        let d = dispatch();
        for i in 0..from.len() {
            let best_sq = d.min_dist_sq_bounded(txs, tys, from.x(i), from.y(i), worst_sq);
            if best_sq > worst_sq {
                worst_sq = best_sq;
            }
        }
        return worst_sq.sqrt();
    }
    for i in 0..from.len() {
        let (px, py) = (from.x(i), from.y(i));
        let mut best_sq = f64::INFINITY;
        for j in 0..to.len() {
            let dx = to.x(j) - px;
            let dy = to.y(j) - py;
            let d = dx * dx + dy * dy;
            if d < best_sq {
                best_sq = d;
                // The minimum for this `p` can only shrink further; if it is
                // already below the current worst it cannot raise the
                // directed distance, so stop scanning `to`.
                if best_sq <= worst_sq {
                    break;
                }
            }
        }
        if best_sq > worst_sq {
            worst_sq = best_sq;
        }
    }
    worst_sq.sqrt()
}

/// Symmetric Hausdorff distance between two point sets.
///
/// If both sets are empty the distance is `0.0`; if exactly one is empty it
/// is `f64::INFINITY`.
pub fn hausdorff_distance(p: &[Point], q: &[Point]) -> f64 {
    directed_hausdorff(p, q).max(directed_hausdorff(q, p))
}

/// [`hausdorff_distance`] over columnar point sets.
pub fn hausdorff_distance_views(p: PointsView<'_>, q: PointsView<'_>) -> f64 {
    directed_hausdorff_access(p, q).max(directed_hausdorff_access(q, p))
}

/// Pair-count ceiling used when the calibration probe never sees the
/// bucketed kernel win: well beyond the largest probed size the brute-force
/// scan's O(|P|·|Q|) worst case is ruinous regardless of what the probe's
/// shapes measured, so bucketing takes over there no matter what.
const MAX_PAIR_CUTOFF_FALLBACK: usize = 2 * 4096 * 4096;

/// Sizes (points per side) probed by [`calibrate_pair_cutoff`].  The top
/// size sits above the largest cluster the benchmarks exercise: the SIMD
/// min-reduction moves the brute/bucketed crossover surprisingly high, so
/// the probe has to look there to find it.
const CALIBRATION_SIZES: [usize; 6] = [128, 256, 512, 1024, 2048, 4096];

/// The pair-count cutoff above which [`hausdorff_within_access`] switches
/// from the brute-force scan to the grid-bucketed test.
///
/// Resolved once per process: the `GPDT_HAUSDORFF_CUTOFF` environment
/// variable pins it (an integer number of point *pairs*; `0` forces
/// always-bucketed); otherwise a one-shot calibration probe measures both
/// kernels on this machine and picks the crossover.  Both kernels are
/// exact, so the cutoff affects speed only — never answers.
pub fn bucketed_pair_cutoff() -> usize {
    static CUTOFF: OnceLock<usize> = OnceLock::new();
    *CUTOFF.get_or_init(|| {
        if let Some(pinned) = std::env::var("GPDT_HAUSDORFF_CUTOFF")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            if gpdt_obs::enabled() {
                gpdt_obs::registry()
                    .gauge("hausdorff.cutoff_pairs")
                    .set(pinned as u64);
            }
            return pinned;
        }
        calibrate_pair_cutoff()
    })
}

/// One-shot calibration: times the brute-force and bucketed threshold tests
/// on deterministic elongated-cluster ("snake") shapes — the adversarial
/// case for the scan's early exit — at increasing per-side sizes, and
/// returns `s²` for the smallest size `s` where bucketing won, or a large
/// ceiling when it never did.  Takes a few milliseconds, runs at most once
/// per process (first threshold test), and the choice cannot change any
/// result because both kernels are exact.
fn calibrate_pair_cutoff() -> usize {
    let delta = 300.0;
    let mut cutoff = MAX_PAIR_CUTOFF_FALLBACK;
    for &n in &CALIBRATION_SIZES {
        let (pxs, pys) = calibration_snake(n, 0x9e37_79b9_7f4a_7c15, delta, 0.0);
        let (qxs, qys) = calibration_snake(n, 0xd1b5_4a32_d192_ed03, delta, delta / 3.0);
        let p = PointsView::new(&pxs, &pys);
        let q = PointsView::new(&qxs, &qys);
        // Alternate the kernels over several rounds and keep each one's best
        // time, so a stray scheduler blip on one round cannot flip the
        // comparison.
        let (mut brute_best, mut bucketed_best) = (u64::MAX, u64::MAX);
        for _ in 0..5 {
            let (_, brute) = gpdt_obs::time_nanos(|| {
                std::hint::black_box(hausdorff_within_bruteforce_access(p, q, delta))
            });
            brute_best = brute_best.min(brute);
            let (_, bucketed) = gpdt_obs::time_nanos(|| {
                std::hint::black_box(hausdorff_within_bucketed_access(p, q, delta))
            });
            bucketed_best = bucketed_best.min(bucketed);
        }
        if gpdt_obs::enabled() {
            let r = gpdt_obs::registry();
            r.gauge(&format!("hausdorff.calib.brute_ns.{n}"))
                .set(brute_best);
            r.gauge(&format!("hausdorff.calib.bucketed_ns.{n}"))
                .set(bucketed_best);
        }
        if cutoff == MAX_PAIR_CUTOFF_FALLBACK && bucketed_best < brute_best {
            cutoff = n * n;
            if !gpdt_obs::enabled() {
                break;
            }
            // With observability on, keep probing the remaining sizes so the
            // registry records the full brute/bucketed curve — the probe runs
            // once per process, so the extra milliseconds are noise.
        }
    }
    if gpdt_obs::enabled() {
        gpdt_obs::registry()
            .gauge("hausdorff.cutoff_pairs")
            .set(cutoff as u64);
    }
    cutoff
}

/// A deterministic elongated cluster for the calibration probe: points
/// strung along a line at `delta / 2` spacing with bounded jitter, visited
/// in shuffled order (matching the `micro` benchmark's adversarial snake
/// shape, including its ±`delta`/7.5 jitter and the `y0` offset between the
/// two sides of a pair).  Plain xorshift so the probe needs no RNG
/// dependency and produces the same shapes in every process.
fn calibration_snake(n: usize, seed: u64, delta: f64, y0: f64) -> (Vec<f64>, Vec<f64>) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let jitter_amp = delta / 7.5;
    let mut jitter = move || ((next() % 2048) as f64 / 1024.0 - 1.0) * jitter_amp;
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        xs.push(i as f64 * (delta / 2.0) + jitter());
        ys.push(y0 + jitter());
    }
    // Fisher–Yates so the scan order is not the spatial order (the
    // early-exit scan would otherwise look unrealistically good).
    let mut state2 = seed ^ 0x5bf0_3635;
    let mut next2 = move || {
        state2 ^= state2 << 13;
        state2 ^= state2 >> 7;
        state2 ^= state2 << 17;
        state2
    };
    for i in (1..n).rev() {
        let j = (next2() % (i as u64 + 1)) as usize;
        xs.swap(i, j);
        ys.swap(i, j);
    }
    (xs, ys)
}

/// Threshold test: is `dH(P, Q) ≤ threshold`?
///
/// Exits as soon as some point is found whose nearest neighbour in the other
/// set is farther than `threshold`, which makes the common "clusters are far
/// apart" case cheap.  Large inputs are answered by the grid-bucketed test
/// ([`hausdorff_within_bucketed`]); small ones by the direct scan
/// ([`hausdorff_within_bruteforce`]).  Both are exact — the choice never
/// changes the answer.
pub fn hausdorff_within(p: &[Point], q: &[Point], threshold: f64) -> bool {
    hausdorff_within_access(p, q, threshold)
}

/// [`hausdorff_within`] over columnar point sets.
pub fn hausdorff_within_views(p: PointsView<'_>, q: PointsView<'_>, threshold: f64) -> bool {
    hausdorff_within_access(p, q, threshold)
}

/// [`hausdorff_within`] generic over the point layout.
pub fn hausdorff_within_access<P: PointAccess, Q: PointAccess>(p: P, q: Q, threshold: f64) -> bool {
    if p.len().saturating_mul(q.len()) >= bucketed_pair_cutoff() {
        hausdorff_within_bucketed_access(p, q, threshold)
    } else {
        hausdorff_within_bruteforce_access(p, q, threshold)
    }
}

/// Threshold test by direct scan over all point pairs (with early exit).
pub fn hausdorff_within_bruteforce(p: &[Point], q: &[Point], threshold: f64) -> bool {
    hausdorff_within_bruteforce_access(p, q, threshold)
}

/// [`hausdorff_within_bruteforce`] generic over the point layout.
pub fn hausdorff_within_bruteforce_access<P: PointAccess, Q: PointAccess>(
    p: P,
    q: Q,
    threshold: f64,
) -> bool {
    directed_within_access(p, q, threshold) && directed_within_access(q, p, threshold)
}

/// Threshold test with each side bucketed into a uniform grid of cell side
/// `threshold`: any `threshold`-neighbour of a point lies in the 3×3 cell
/// block around it, so each probe touches only the points of that block.
///
/// Exact — agrees with [`hausdorff_within_bruteforce`] on every input.
pub fn hausdorff_within_bucketed(p: &[Point], q: &[Point], threshold: f64) -> bool {
    hausdorff_within_bucketed_access(p, q, threshold)
}

/// [`hausdorff_within_bucketed`] generic over the point layout.
pub fn hausdorff_within_bucketed_access<P: PointAccess, Q: PointAccess>(
    p: P,
    q: Q,
    threshold: f64,
) -> bool {
    if !(threshold.is_finite() && threshold > 0.0) {
        // Degenerate thresholds cannot define a grid; the scan handles them.
        return hausdorff_within_bruteforce_access(p, q, threshold);
    }
    if p.is_empty() || q.is_empty() {
        return p.is_empty() && q.is_empty();
    }
    let q_buckets = CellBuckets::build(q, threshold);
    if !q_buckets.covers(p) {
        return false;
    }
    let p_buckets = CellBuckets::build(p, threshold);
    p_buckets.covers(q)
}

/// Directed threshold test: is `h(from → to) ≤ threshold`?
pub fn directed_within(from: &[Point], to: &[Point], threshold: f64) -> bool {
    directed_within_access(from, to, threshold)
}

/// [`directed_within`] generic over the point layout.
pub fn directed_within_access<P: PointAccess, Q: PointAccess>(
    from: P,
    to: Q,
    threshold: f64,
) -> bool {
    if from.is_empty() {
        return true;
    }
    if to.is_empty() {
        return false;
    }
    let thr_sq = threshold * threshold;
    if let Some((txs, tys)) = to.columns() {
        // Columnar target: the "has a neighbour within δ" scan runs on the
        // SIMD kernel.  The comparison is exact at every level, so the
        // boolean cannot diverge from the generic loop below.
        let d = dispatch();
        for i in 0..from.len() {
            if !d.any_within(txs, tys, from.x(i), from.y(i), thr_sq) {
                return false;
            }
        }
        return true;
    }
    'outer: for i in 0..from.len() {
        let (px, py) = (from.x(i), from.y(i));
        for j in 0..to.len() {
            let dx = to.x(j) - px;
            let dy = to.y(j) - py;
            if dx * dx + dy * dy <= thr_sq {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// One side of the bucketed threshold test: the points copied into cell
/// order (CSR-style — contiguous per-cell slices under sorted unique cell
/// keys), so every probe is a straight-line scan.  The copy is columnar
/// (`xs`/`ys`), so probes stream two dense coordinate arrays regardless of
/// the caller's layout.
struct CellBuckets {
    threshold: f64,
    thr_sq: f64,
    /// The point coordinates, grouped by cell, as parallel columns.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Sorted unique cell keys, parallel to `starts`.
    cells: Vec<(i64, i64)>,
    /// Offsets into `xs`/`ys` (one trailing sentinel).
    starts: Vec<u32>,
}

impl CellBuckets {
    fn build<P: PointAccess>(input: P, threshold: f64) -> Self {
        // Cell keys are cached up front: computing them inside the sort
        // comparator would redo the float division O(n log n) times.
        let keys: Vec<(i64, i64)> = (0..input.len())
            .map(|i| {
                (
                    (input.x(i) / threshold).floor() as i64,
                    (input.y(i) / threshold).floor() as i64,
                )
            })
            .collect();
        let mut order: Vec<u32> = (0..input.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        let mut xs: Vec<f64> = Vec::with_capacity(input.len());
        let mut ys: Vec<f64> = Vec::with_capacity(input.len());
        let mut cells: Vec<(i64, i64)> = Vec::new();
        let mut starts: Vec<u32> = Vec::new();
        for &i in &order {
            let k = keys[i as usize];
            if cells.last() != Some(&k) {
                cells.push(k);
                starts.push(xs.len() as u32);
            }
            xs.push(input.x(i as usize));
            ys.push(input.y(i as usize));
        }
        starts.push(input.len() as u32);
        CellBuckets {
            threshold,
            thr_sq: threshold * threshold,
            xs,
            ys,
            cells,
            starts,
        }
    }

    /// `true` if every point of `from` has a bucketed point within the
    /// threshold, i.e. the directed test `h(from → bucketed) ≤ threshold`.
    fn covers<P: PointAccess>(&self, from: P) -> bool {
        // Probe the point's own cell first: when the sets overlap, the
        // nearest neighbour is usually right there, and the ring cells hold
        // mostly too-far points.
        const PROBES: [(i64, i64); 9] = [
            (0, 0),
            (-1, -1),
            (-1, 0),
            (-1, 1),
            (0, -1),
            (0, 1),
            (1, -1),
            (1, 0),
            (1, 1),
        ];
        // The per-cell slices are columnar by construction, so every probe
        // runs on the SIMD kernel (exact comparison — level-independent).
        let d = dispatch();
        'outer: for i in 0..from.len() {
            let (px, py) = (from.x(i), from.y(i));
            let cx = (px / self.threshold).floor() as i64;
            let cy = (py / self.threshold).floor() as i64;
            for (dx, dy) in PROBES {
                let Ok(cell) = self.cells.binary_search(&(cx + dx, cy + dy)) else {
                    continue;
                };
                let (lo, hi) = (self.starts[cell] as usize, self.starts[cell + 1] as usize);
                if d.any_within(&self.xs[lo..hi], &self.ys[lo..hi], px, py, self.thr_sq) {
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let p = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        assert_eq!(hausdorff_distance(&p, &p), 0.0);
        assert!(hausdorff_within(&p, &p, 0.0));
    }

    #[test]
    fn singleton_sets() {
        let p = pts(&[(0.0, 0.0)]);
        let q = pts(&[(3.0, 4.0)]);
        assert_eq!(hausdorff_distance(&p, &q), 5.0);
        assert!(hausdorff_within(&p, &q, 5.0));
        assert!(!hausdorff_within(&p, &q, 4.999));
    }

    #[test]
    fn asymmetric_directed_distances() {
        // Q is a superset-ish spread: every point of P is near Q, but Q has a
        // far outlier, so the directed distances differ.
        let p = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let q = pts(&[(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)]);
        assert_eq!(directed_hausdorff(&p, &q), 0.0);
        assert_eq!(directed_hausdorff(&q, &p), 9.0);
        assert_eq!(hausdorff_distance(&p, &q), 9.0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let p = pts(&[(0.0, 0.0), (5.0, 5.0), (2.0, 8.0)]);
        let q = pts(&[(1.0, 1.0), (6.0, 4.0)]);
        assert_eq!(hausdorff_distance(&p, &q), hausdorff_distance(&q, &p));
    }

    #[test]
    fn empty_set_conventions() {
        let p = pts(&[(0.0, 0.0)]);
        let empty: Vec<Point> = vec![];
        assert_eq!(directed_hausdorff(&empty, &p), 0.0);
        assert_eq!(directed_hausdorff(&p, &empty), f64::INFINITY);
        assert_eq!(hausdorff_distance(&empty, &empty), 0.0);
        assert_eq!(hausdorff_distance(&p, &empty), f64::INFINITY);
        assert!(hausdorff_within(&empty, &empty, 0.0));
        assert!(!hausdorff_within(&p, &empty, 1e12));
    }

    #[test]
    fn within_agrees_with_exact_distance() {
        let p = pts(&[(0.0, 0.0), (2.0, 1.0), (4.0, 0.0)]);
        let q = pts(&[(0.5, 0.5), (3.5, 0.5), (4.0, 3.0)]);
        let d = hausdorff_distance(&p, &q);
        assert!(hausdorff_within(&p, &q, d));
        assert!(hausdorff_within(&p, &q, d + 1e-9));
        assert!(!hausdorff_within(&p, &q, d - 1e-9));
    }

    #[test]
    fn translation_shifts_distance_for_singletons() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let q: Vec<Point> = p.iter().map(|pt| Point::new(pt.x + 7.0, pt.y)).collect();
        // A pure translation of a set by (7, 0): each point's nearest
        // neighbour is at most 7 away and the extremes are exactly 7.
        assert_eq!(hausdorff_distance(&p, &q), 7.0);
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use crate::mbr::Mbr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(rng: &mut StdRng, max: usize) -> Vec<Point> {
        let n = rng.gen_range(1..max);
        (0..n)
            .map(|_| {
                Point::new(
                    rng.gen_range(-1000.0..1000.0),
                    rng.gen_range(-1000.0..1000.0),
                )
            })
            .collect()
    }

    /// dH is symmetric.
    #[test]
    fn hausdorff_symmetry() {
        let mut rng = StdRng::seed_from_u64(0x71);
        for _ in 0..256 {
            let p = random_points(&mut rng, 12);
            let q = random_points(&mut rng, 12);
            let d1 = hausdorff_distance(&p, &q);
            let d2 = hausdorff_distance(&q, &p);
            assert!((d1 - d2).abs() < 1e-9);
        }
    }

    /// dH(P, P) = 0 (identity of indiscernibles, one direction).
    #[test]
    fn hausdorff_self_zero() {
        let mut rng = StdRng::seed_from_u64(0x72);
        for _ in 0..256 {
            let p = random_points(&mut rng, 12);
            assert_eq!(hausdorff_distance(&p, &p), 0.0);
        }
    }

    /// Triangle inequality over point sets.
    #[test]
    fn hausdorff_triangle_inequality() {
        let mut rng = StdRng::seed_from_u64(0x73);
        for _ in 0..256 {
            let p = random_points(&mut rng, 8);
            let q = random_points(&mut rng, 8);
            let r = random_points(&mut rng, 8);
            let pq = hausdorff_distance(&p, &q);
            let qr = hausdorff_distance(&q, &r);
            let pr = hausdorff_distance(&p, &r);
            assert!(pr <= pq + qr + 1e-9);
        }
    }

    /// The threshold test agrees with the exact computation.
    #[test]
    fn within_matches_exact() {
        let mut rng = StdRng::seed_from_u64(0x74);
        for _ in 0..256 {
            let p = random_points(&mut rng, 10);
            let q = random_points(&mut rng, 10);
            let thr = rng.gen_range(0.0..2000.0);
            let d = hausdorff_distance(&p, &q);
            assert_eq!(hausdorff_within(&p, &q, thr), d <= thr);
        }
    }

    /// The grid-bucketed threshold test is exact: it agrees with the
    /// brute-force scan (and the exact distance) on arbitrary inputs,
    /// including sizes well below the dispatch cutoff and empty sets.
    #[test]
    fn bucketed_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(0x76);
        for round in 0..512 {
            let p = random_points(&mut rng, 40);
            let q = random_points(&mut rng, 40);
            // Mix thresholds around the typical inter-set distances so both
            // outcomes are exercised, including near-tie values.
            let thr = match round % 3 {
                0 => rng.gen_range(1.0..100.0),
                1 => rng.gen_range(100.0..3000.0),
                _ => hausdorff_distance(&p, &q),
            };
            let brute = hausdorff_within_bruteforce(&p, &q, thr);
            let bucketed = hausdorff_within_bucketed(&p, &q, thr);
            assert_eq!(bucketed, brute, "round {round} thr {thr}");
            assert_eq!(hausdorff_within(&p, &q, thr), brute, "round {round}");
        }
    }

    /// The bucketed test handles empty sets and degenerate thresholds with
    /// the same conventions as the scan.
    #[test]
    fn bucketed_edge_cases() {
        let p = vec![Point::new(0.0, 0.0)];
        let empty: Vec<Point> = vec![];
        assert!(hausdorff_within_bucketed(&empty, &empty, 10.0));
        assert!(!hausdorff_within_bucketed(&p, &empty, 10.0));
        assert!(!hausdorff_within_bucketed(&empty, &p, 10.0));
        assert!(hausdorff_within_bucketed(&p, &p, 0.0));
        assert!(!hausdorff_within_bucketed(
            &p,
            &[Point::new(3.0, 4.0)],
            f64::NAN
        ));
    }

    /// The SoA (columnar) entry points agree with the AoS slice kernels on
    /// arbitrary inputs and thresholds — exact equality, not tolerance: the
    /// monomorphised kernels perform the identical float operations in the
    /// identical order.
    #[test]
    fn columnar_views_match_slices() {
        use crate::soa::PointColumns;
        let mut rng = StdRng::seed_from_u64(0x77);
        for round in 0..512 {
            let p = random_points(&mut rng, 24);
            let q = random_points(&mut rng, 24);
            let pc = PointColumns::from_points(&p);
            let qc = PointColumns::from_points(&q);
            let (pv, qv) = (pc.view(), qc.view());
            assert_eq!(
                hausdorff_distance_views(pv, qv),
                hausdorff_distance(&p, &q),
                "round {round}"
            );
            assert_eq!(
                directed_hausdorff_access(pv, qv),
                directed_hausdorff(&p, &q)
            );
            let thr = match round % 3 {
                0 => rng.gen_range(1.0..100.0),
                1 => rng.gen_range(100.0..3000.0),
                _ => hausdorff_distance(&p, &q),
            };
            assert_eq!(
                hausdorff_within_views(pv, qv, thr),
                hausdorff_within(&p, &q, thr),
                "round {round} thr {thr}"
            );
            assert_eq!(
                hausdorff_within_bucketed_access(pv, qv, thr),
                hausdorff_within_bucketed(&p, &q, thr),
                "round {round} thr {thr}"
            );
            // Mixed layouts also agree: AoS on one side, SoA on the other.
            assert_eq!(
                hausdorff_within_bruteforce_access(p.as_slice(), qv, thr),
                hausdorff_within_bruteforce(&p, &q, thr)
            );
        }
    }

    /// Lemma 2 and Lemma 3: dmin ≤ dside ≤ dH for the sets' MBRs.
    #[test]
    fn mbr_bounds_lower_bound_hausdorff() {
        let mut rng = StdRng::seed_from_u64(0x75);
        for _ in 0..256 {
            let p = random_points(&mut rng, 12);
            let q = random_points(&mut rng, 12);
            let mp = Mbr::from_points(&p).unwrap();
            let mq = Mbr::from_points(&q).unwrap();
            let dh = hausdorff_distance(&p, &q);
            let dmin = mp.min_distance(&mq);
            let dside = mp.side_distance(&mq).max(mq.side_distance(&mp));
            assert!(dmin <= dside + 1e-9);
            assert!(dmin <= dh + 1e-9);
            assert!(mp.side_distance(&mq) <= dh + 1e-9);
            assert!(mq.side_distance(&mp) <= dh + 1e-9);
            assert!(dside <= dh + 1e-9);
        }
    }
}
