//! Bit-vector signatures (BVS) and word-parallel set operations.
//!
//! §III-B.2 of the paper represents the occurrence of each object in a crowd
//! as an `n`-bit vector (one bit per snapshot cluster).  Counting an object's
//! occurrences then becomes a population count, and dividing a crowd into
//! sub-crowds becomes a bitwise AND with a mask — the signatures themselves
//! are built once and reused across all recursion levels of TAD\*.
//!
//! The same representation serves every timestamp-set computation in the
//! workspace: the swarm miner's shared-timestamp sets are intersections
//! ([`BitVector::and_into`]) and its pruning predicates subset tests
//! ([`BitVector::is_subset_of`]), all word-parallel.  The type lives in this
//! base crate so the clustering, baseline and core layers can share it;
//! `gpdt-core` re-exports it under its historical `gpdt_core::bvs` path.
//!
//! [`BitVector`] is a little word-parallel bit vector.  Its population count
//! is implemented with the paper's binary-tree-of-masks technique
//! ([`popcount_tree`]); a naive bit-loop ([`BitVector::count_ones_naive`]) is
//! kept for the TAD-vs-TAD\* ablation benchmarks.

/// Population count of one 64-bit word using the binary-tree-of-masks
/// technique described in the paper (Knuth's "bitwise tricks"):
/// counts are first accumulated in every 2-bit field, then 4-bit, 8-bit, ...
/// fields, taking `log2(64) = 6` steps regardless of the word's value.
#[inline]
pub fn popcount_tree(mut x: u64) -> u32 {
    const M1: u64 = 0x5555_5555_5555_5555; // 01 repeated
    const M2: u64 = 0x3333_3333_3333_3333; // 0011 repeated
    const M4: u64 = 0x0f0f_0f0f_0f0f_0f0f; // 00001111 repeated
    const M8: u64 = 0x00ff_00ff_00ff_00ff;
    const M16: u64 = 0x0000_ffff_0000_ffff;
    const M32: u64 = 0x0000_0000_ffff_ffff;
    x = (x & M1) + ((x >> 1) & M1);
    x = (x & M2) + ((x >> 2) & M2);
    x = (x & M4) + ((x >> 4) & M4);
    x = (x & M8) + ((x >> 8) & M8);
    x = (x & M16) + ((x >> 16) & M16);
    x = (x & M32) + ((x >> 32) & M32);
    x as u32
}

/// A fixed-length bit vector packed into 64-bit words.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVector {
    words: Vec<u64>,
    len: usize,
}

impl BitVector {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVector {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVector {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.clear_tail();
        v
    }

    /// Creates a vector with ones exactly in `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len`.
    pub fn range_mask(len: usize, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= len,
            "invalid mask range {start}..{end} for length {len}"
        );
        let mut v = BitVector::zeros(len);
        for i in start..end {
            v.set(i, true);
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero bits of storage.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(
            idx < self.len,
            "bit index {idx} out of range for length {}",
            self.len
        );
        let (word, bit) = (idx / 64, idx % 64);
        if value {
            self.words[word] |= 1 << bit;
        } else {
            self.words[word] &= !(1 << bit);
        }
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of range for length {}",
            self.len
        );
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Resizes the vector to `len` bits, all zero, reusing the existing
    /// word storage.  This is the scratch-arena entry point: hot loops keep
    /// one `BitVector` alive and `reset` it per iteration instead of
    /// allocating a fresh one.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Replaces the contents of `self` with a copy of `other`, reusing the
    /// existing word storage.
    pub fn copy_from(&mut self, other: &BitVector) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Returns `true` if every set bit of `self` is also set in `other`
    /// (`self & !other == 0`), word-parallel with early exit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_subset_of(&self, other: &BitVector) -> bool {
        assert_eq!(self.len, other.len, "mask length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Writes `self & other` into `out`, reusing `out`'s storage.
    ///
    /// # Panics
    ///
    /// Panics if the lengths of `self` and `other` differ.
    pub fn and_into(&self, other: &BitVector, out: &mut BitVector) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        out.words.clear();
        out.words
            .extend(self.words.iter().zip(&other.words).map(|(&a, &b)| a & b));
        out.len = self.len;
    }

    /// Number of set bits, using the word-parallel tree popcount.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|&w| popcount_tree(w)).sum()
    }

    /// Number of set bits, counted one bit at a time.
    ///
    /// Kept as the reference implementation and as the "slow path" of the
    /// TAD-vs-TAD\* ablation.
    pub fn count_ones_naive(&self) -> u32 {
        (0..self.len).filter(|&i| self.get(i)).count() as u32
    }

    /// Number of set bits within the positions selected by `mask`
    /// (`popcount(self & mask)`), without materialising the intersection.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn count_ones_masked(&self, mask: &BitVector) -> u32 {
        assert_eq!(self.len, mask.len, "mask length mismatch");
        self.words
            .iter()
            .zip(&mask.words)
            .map(|(&a, &b)| popcount_tree(a & b))
            .sum()
    }

    /// The bitwise AND of `self` and `mask`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, mask: &BitVector) -> BitVector {
        assert_eq!(self.len, mask.len, "mask length mismatch");
        BitVector {
            words: self
                .words
                .iter()
                .zip(&mask.words)
                .map(|(&a, &b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Indices of the set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let len = self.len;
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
            .take_while(move |&idx| idx < len)
        })
    }

    fn clear_tail(&mut self) {
        let used = self.len % 64;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popcount_tree_matches_builtin() {
        for x in [
            0u64,
            1,
            u64::MAX,
            0x5555_5555_5555_5555,
            0xdead_beef_cafe_babe,
            1 << 63,
        ] {
            assert_eq!(popcount_tree(x), x.count_ones(), "x={x:#x}");
        }
    }

    #[test]
    fn paper_example_popcount() {
        // B(o1) = 0 1 1 0 1 1 0 0 (paper's Figure 3 table) has four 1s.
        let bits = [0u8, 1, 1, 0, 1, 1, 0, 0];
        let mut v = BitVector::zeros(8);
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b == 1);
        }
        assert_eq!(v.count_ones(), 4);
        assert_eq!(v.count_ones_naive(), 4);
    }

    #[test]
    fn zeros_ones_and_len() {
        let z = BitVector::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        let o = BitVector::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(!o.is_empty());
        assert!(BitVector::zeros(0).is_empty());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut v = BitVector::zeros(200);
        for idx in [0, 63, 64, 65, 127, 128, 199] {
            assert!(!v.get(idx));
            v.set(idx, true);
            assert!(v.get(idx));
        }
        assert_eq!(v.count_ones(), 7);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVector::zeros(10);
        let _ = v.get(10);
    }

    #[test]
    fn range_mask_selects_exactly_the_interval() {
        let m = BitVector::range_mask(10, 3, 7);
        let expected: Vec<usize> = (3..7).collect();
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), expected);
        assert_eq!(m.count_ones(), 4);
        let empty = BitVector::range_mask(10, 4, 4);
        assert_eq!(empty.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid mask range")]
    fn range_mask_rejects_reversed_range() {
        let _ = BitVector::range_mask(10, 7, 3);
    }

    #[test]
    fn masked_count_equals_count_of_and() {
        let mut a = BitVector::zeros(100);
        for i in (0..100).step_by(3) {
            a.set(i, true);
        }
        let mask = BitVector::range_mask(100, 30, 80);
        assert_eq!(a.count_ones_masked(&mask), a.and(&mask).count_ones());
        // The AND keeps only positions in [30, 80) that are multiples of 3.
        let expected = (30..80).filter(|i| i % 3 == 0).count() as u32;
        assert_eq!(a.count_ones_masked(&mask), expected);
    }

    #[test]
    fn paper_divide_example_masks() {
        // Figure 3: the crowd has 8 clusters; removing c5 (index 4) yields
        // masks 11110000 and 00000111 in the paper's left-to-right notation,
        // i.e. positions 0..4 and 5..8.
        let crowd_len = 8;
        let mask_a = BitVector::range_mask(crowd_len, 0, 4);
        let mask_b = BitVector::range_mask(crowd_len, 5, 8);

        // B(o2) = 1 1 1 1 0 0 1 1
        let mut o2 = BitVector::zeros(crowd_len);
        for i in [0, 1, 2, 3, 6, 7] {
            o2.set(i, true);
        }
        assert_eq!(o2.count_ones_masked(&mask_a), 4);
        assert_eq!(o2.count_ones_masked(&mask_b), 2);

        // B(o1) = 0 1 1 0 1 1 0 0
        let mut o1 = BitVector::zeros(crowd_len);
        for i in [1, 2, 4, 5] {
            o1.set(i, true);
        }
        assert_eq!(o1.count_ones_masked(&mask_a), 2);
        assert_eq!(o1.count_ones_masked(&mask_b), 1);
    }

    #[test]
    fn iter_ones_in_order() {
        let mut v = BitVector::zeros(150);
        let positions = [0usize, 5, 63, 64, 100, 149];
        for &p in &positions {
            v.set(p, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), positions.to_vec());
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn and_rejects_length_mismatch() {
        let a = BitVector::zeros(10);
        let b = BitVector::zeros(11);
        let _ = a.and(&b);
    }

    #[test]
    fn reset_reuses_storage_and_clears() {
        let mut v = BitVector::ones(100);
        v.reset(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_ones(), 0);
        v.set(69, true);
        v.reset(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn copy_from_replicates_contents() {
        let mut src = BitVector::zeros(90);
        for i in [0, 63, 64, 89] {
            src.set(i, true);
        }
        let mut dst = BitVector::ones(10);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn subset_and_and_into() {
        let mut a = BitVector::zeros(150);
        let mut b = BitVector::zeros(150);
        for i in (0..150).step_by(6) {
            a.set(i, true);
        }
        for i in (0..150).step_by(3) {
            b.set(i, true);
        }
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        let mut out = BitVector::zeros(1);
        a.and_into(&b, &mut out);
        assert_eq!(out, a.and(&b));
        assert_eq!(out, a);
    }
}

// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
#[cfg(test)]
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(rng: &mut StdRng, max_len: usize) -> Vec<bool> {
        let len = rng.gen_range(0..max_len);
        (0..len).map(|_| rng.gen::<u64>() & 1 == 1).collect()
    }

    fn vector_from_bits(bits: &[bool]) -> BitVector {
        let mut v = BitVector::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Tree popcount equals the hardware popcount for arbitrary words.
    #[test]
    fn popcount_tree_equals_builtin() {
        let mut rng = StdRng::seed_from_u64(0xb5);
        for _ in 0..4096 {
            let x = rng.gen::<u64>();
            assert_eq!(popcount_tree(x), x.count_ones(), "x={x:#x}");
        }
    }

    /// Word-parallel count equals the naive per-bit count.
    #[test]
    fn fast_count_equals_naive() {
        let mut rng = StdRng::seed_from_u64(0xc0de);
        for _ in 0..256 {
            let bits = random_bits(&mut rng, 300);
            let v = vector_from_bits(&bits);
            assert_eq!(v.count_ones(), v.count_ones_naive());
            assert_eq!(v.count_ones() as usize, bits.iter().filter(|&&b| b).count());
        }
    }

    /// Masked counting is the popcount of the AND.
    #[test]
    fn masked_count_is_popcount_of_and() {
        let mut rng = StdRng::seed_from_u64(0xdead);
        for _ in 0..256 {
            let mut bits = random_bits(&mut rng, 200);
            if bits.is_empty() {
                bits.push(true);
            }
            let len = bits.len();
            let v = vector_from_bits(&bits);
            let a = rng.gen_range(0..=len);
            let b = rng.gen_range(0..=len);
            let (start, end) = if a <= b { (a, b) } else { (b, a) };
            let mask = BitVector::range_mask(len, start, end);
            assert_eq!(v.count_ones_masked(&mask), v.and(&mask).count_ones());
        }
    }

    /// `iter_ones` agrees with `get`.
    #[test]
    fn iter_ones_matches_get() {
        let mut rng = StdRng::seed_from_u64(0xfeed);
        for _ in 0..256 {
            let bits = random_bits(&mut rng, 200);
            let v = vector_from_bits(&bits);
            let from_iter: Vec<usize> = v.iter_ones().collect();
            let from_get: Vec<usize> = (0..bits.len()).filter(|&i| v.get(i)).collect();
            assert_eq!(from_iter, from_get);
        }
    }
}
