//! Structure-of-arrays (SoA) point storage.
//!
//! The per-tick kernels — DBSCAN's grid scan, the threshold-aware Hausdorff
//! tests, MBR/centroid construction — spend their time streaming coordinates.
//! Storing points as parallel `xs`/`ys` columns instead of interleaved
//! [`Point`] structs keeps those streams dense (one cache line carries eight
//! coordinates of the axis being scanned instead of four) and lets the
//! compiler vectorise the min/max/sum reductions.
//!
//! Three pieces:
//!
//! * [`PointColumns`] — an owning pair of `Vec<f64>` columns.  A whole tick's
//!   clusters share one `PointColumns` arena with per-cluster ranges (see
//!   `gpdt-clustering`'s snapshot storage).
//! * [`PointsView`] — a borrowed slice of both columns, the columnar analogue
//!   of `&[Point]`.  `Copy`, cheap to re-slice.
//! * [`PointAccess`] — the trait the hot kernels are generic over, so one
//!   monomorphised body serves both the legacy `&[Point]` (AoS) layout and
//!   `PointsView` (SoA).  Keeping the AoS impl alive is what lets the micro
//!   benchmarks measure the layout delta on the *same* kernel code.

use crate::mbr::Mbr;
use crate::point::Point;
use std::ops::Range;

/// Uniform read access to a sequence of 2-D points.
///
/// Implemented for `&[Point]` (array-of-structs) and [`PointsView`]
/// (structure-of-arrays).  Kernels written against this trait are
/// monomorphised per layout, so the abstraction costs nothing at runtime.
pub trait PointAccess: Copy {
    /// Number of points.
    fn len(&self) -> usize;

    /// X coordinate of point `i`.
    fn x(&self, i: usize) -> f64;

    /// Y coordinate of point `i`.
    fn y(&self, i: usize) -> f64;

    /// Returns `true` if there are no points.
    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises point `i`.
    #[inline]
    fn point(&self, i: usize) -> Point {
        Point::new(self.x(i), self.y(i))
    }

    /// The underlying coordinate columns, when this layout has them.
    ///
    /// [`PointsView`] returns its parallel slices; the AoS layout returns
    /// `None`.  Kernels use this to route columnar inputs through the SIMD
    /// dispatch table ([`crate::simd::dispatch`]) while keeping a scalar
    /// generic body for interleaved layouts — the results are bit-identical
    /// either way, so the specialisation is invisible to callers.
    #[inline]
    fn columns(&self) -> Option<(&[f64], &[f64])> {
        None
    }
}

impl PointAccess for &[Point] {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }

    #[inline]
    fn x(&self, i: usize) -> f64 {
        self[i].x
    }

    #[inline]
    fn y(&self, i: usize) -> f64 {
        self[i].y
    }

    #[inline]
    fn point(&self, i: usize) -> Point {
        self[i]
    }
}

/// A borrowed columnar point sequence: parallel `xs`/`ys` slices.
///
/// The SoA analogue of `&[Point]`.  Obtained from
/// [`PointColumns::view`]/[`PointColumns::slice`] or built directly from two
/// equal-length slices with [`PointsView::new`].
#[derive(Debug, Clone, Copy)]
pub struct PointsView<'a> {
    xs: &'a [f64],
    ys: &'a [f64],
}

impl<'a> PointsView<'a> {
    /// Creates a view over two parallel coordinate slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn new(xs: &'a [f64], ys: &'a [f64]) -> Self {
        assert_eq!(
            xs.len(),
            ys.len(),
            "PointsView requires parallel columns of equal length"
        );
        PointsView { xs, ys }
    }

    /// An empty view.
    #[inline]
    pub const fn empty() -> Self {
        PointsView { xs: &[], ys: &[] }
    }

    /// Number of points in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the view contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The X column.
    #[inline]
    pub fn xs(&self) -> &'a [f64] {
        self.xs
    }

    /// The Y column.
    #[inline]
    pub fn ys(&self) -> &'a [f64] {
        self.ys
    }

    /// Materialises point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Re-slices the view to `range`.
    #[inline]
    pub fn slice(&self, range: Range<usize>) -> PointsView<'a> {
        PointsView {
            xs: &self.xs[range.clone()],
            ys: &self.ys[range],
        }
    }

    /// Iterates over the points, materialising each.
    pub fn iter(&self) -> impl Iterator<Item = Point> + 'a {
        self.xs
            .iter()
            .zip(self.ys.iter())
            .map(|(&x, &y)| Point::new(x, y))
    }

    /// Collects the view into an owned `Vec<Point>` (AoS).
    pub fn to_points(&self) -> Vec<Point> {
        self.iter().collect()
    }

    /// Minimum bounding rectangle of the view, `None` when empty.
    pub fn mbr(&self) -> Option<Mbr> {
        Mbr::from_columns(self.xs, self.ys)
    }

    /// Centroid of the view, `None` when empty.
    pub fn centroid(&self) -> Option<Point> {
        Point::centroid_columns(self.xs, self.ys)
    }
}

impl PointAccess for PointsView<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    fn x(&self, i: usize) -> f64 {
        self.xs[i]
    }

    #[inline]
    fn y(&self, i: usize) -> f64 {
        self.ys[i]
    }

    #[inline]
    fn columns(&self) -> Option<(&[f64], &[f64])> {
        Some((self.xs, self.ys))
    }
}

/// An owning pair of parallel coordinate columns.
///
/// The storage behind [`PointsView`]: a flat `xs` column and a flat `ys`
/// column of equal length.  Snapshot-cluster sets store one `PointColumns`
/// arena per tick and hand out per-cluster ranges into it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointColumns {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PointColumns {
    /// Creates an empty column pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty column pair with room for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        PointColumns {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    /// Builds columns from an AoS slice.
    pub fn from_points(points: &[Point]) -> Self {
        let mut cols = Self::with_capacity(points.len());
        cols.extend_from_points(points);
        cols
    }

    /// Builds columns from already-split coordinate vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn from_vecs(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(
            xs.len(),
            ys.len(),
            "PointColumns requires parallel columns of equal length"
        );
        PointColumns { xs, ys }
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Appends one point.
    #[inline]
    pub fn push(&mut self, p: Point) {
        self.push_xy(p.x, p.y);
    }

    /// Appends one point given as raw coordinates.
    #[inline]
    pub fn push_xy(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Appends every point of an AoS slice.
    pub fn extend_from_points(&mut self, points: &[Point]) {
        self.xs.reserve(points.len());
        self.ys.reserve(points.len());
        for p in points {
            self.xs.push(p.x);
            self.ys.push(p.y);
        }
    }

    /// Clears both columns, keeping capacity.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
    }

    /// The X column.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The Y column.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Materialises point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// A view over all points.
    #[inline]
    pub fn view(&self) -> PointsView<'_> {
        PointsView {
            xs: &self.xs,
            ys: &self.ys,
        }
    }

    /// A view over the points in `range`.
    #[inline]
    pub fn slice(&self, range: Range<usize>) -> PointsView<'_> {
        PointsView {
            xs: &self.xs[range.clone()],
            ys: &self.ys[range],
        }
    }

    /// Bytes of coordinate payload held live (excluding spare capacity).
    ///
    /// Used by the out-of-core layer to account resident cluster-arena
    /// memory; two `f64` per point.
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.xs.len() * 2 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::new(1.0, 2.0),
            Point::new(-3.0, 4.5),
            Point::new(0.25, -7.0),
        ]
    }

    #[test]
    fn columns_round_trip_points() {
        let pts = pts();
        let cols = PointColumns::from_points(&pts);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.view().to_points(), pts);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(cols.point(i), *p);
        }
    }

    #[test]
    fn view_slicing_matches_slice_semantics() {
        let pts = pts();
        let cols = PointColumns::from_points(&pts);
        let mid = cols.slice(1..3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.to_points(), &pts[1..3]);
        let re = mid.slice(1..2);
        assert_eq!(re.to_points(), &pts[2..3]);
        assert!(cols.slice(1..1).is_empty());
    }

    #[test]
    fn point_access_agrees_across_layouts() {
        let pts = pts();
        let cols = PointColumns::from_points(&pts);
        let aos: &[Point] = &pts;
        let soa = cols.view();
        assert_eq!(PointAccess::len(&aos), PointAccess::len(&soa));
        for i in 0..pts.len() {
            assert_eq!(aos.x(i), soa.x(i));
            assert_eq!(aos.y(i), soa.y(i));
            assert_eq!(PointAccess::point(&aos, i), PointAccess::point(&soa, i));
        }
    }

    #[test]
    fn view_mbr_and_centroid_match_aos() {
        let pts = pts();
        let cols = PointColumns::from_points(&pts);
        assert_eq!(cols.view().mbr(), Mbr::from_points(&pts));
        assert_eq!(cols.view().centroid(), Point::centroid(&pts));
        assert_eq!(PointColumns::new().view().mbr(), None);
        assert_eq!(PointColumns::new().view().centroid(), None);
    }

    #[test]
    fn payload_bytes_counts_two_f64_per_point() {
        let cols = PointColumns::from_points(&pts());
        assert_eq!(cols.payload_bytes(), 3 * 16);
    }

    #[test]
    #[should_panic(expected = "parallel columns")]
    fn mismatched_columns_panic() {
        PointsView::new(&[1.0], &[]);
    }

    #[test]
    fn push_and_clear() {
        let mut cols = PointColumns::with_capacity(2);
        cols.push(Point::new(1.0, 2.0));
        cols.push_xy(3.0, 4.0);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols.xs(), &[1.0, 3.0]);
        assert_eq!(cols.ys(), &[2.0, 4.0]);
        cols.clear();
        assert!(cols.is_empty());
    }
}
