//! SIMD-vectorized geometry kernels over coordinate columns, with runtime
//! dispatch.
//!
//! The SoA layout (PR 6) made the hot loops stream dense `f64` columns; this
//! module cashes that in by executing the three kernel families those loops
//! reduce to with `core::arch::x86_64` vector intrinsics:
//!
//! * [`KernelDispatch::filter_within`] — the DBSCAN ε-neighbourhood scan:
//!   collect the ids of all bucketed points within a squared radius of a
//!   probe point, preserving bucket order.
//! * [`KernelDispatch::any_within`] / [`KernelDispatch::min_dist_sq_bounded`]
//!   — the directed-Hausdorff inner reductions: "does any point sit within
//!   the threshold" (bucketed and brute threshold tests) and "squared
//!   distance to the nearest point, with early exit below a bound" (exact
//!   directed distance).
//! * [`KernelDispatch::column_min_max`] / [`KernelDispatch::column_sum`] —
//!   the MBR and centroid column reductions.
//!
//! # Dispatch model
//!
//! Every kernel exists at three levels — [`SimdLevel::Scalar`] (plain Rust,
//! always available), [`SimdLevel::Sse2`] (128-bit, part of the x86-64
//! baseline) and [`SimdLevel::Avx2`] (256-bit, runtime-detected with
//! [`is_x86_feature_detected!`]).  A [`KernelDispatch`] is a table of
//! function pointers for one level; [`dispatch`] returns the process-wide
//! table, resolved once on first use from the `GPDT_SIMD` environment
//! variable (`auto`, `avx2`, `sse2`, `off`; default `auto` = best detected
//! level).  Requesting a level the CPU does not support falls back to the
//! best available one — the table for an undetected level is never handed
//! out, which is the safety argument for the intrinsic-calling wrappers.
//!
//! # Bit-identity guarantee
//!
//! All levels of a kernel produce **bit-identical** outputs on the same
//! (NaN-free) input.  This is a hard requirement — the engine's output must
//! not depend on which machine it ran on — and it shapes the kernels:
//!
//! * No FMA anywhere: `dx*dx + dy*dy` is evaluated as two IEEE-754 products
//!   and one sum at every level.  A fused multiply-add keeps the
//!   intermediate product unrounded and would change the low bits of
//!   distances, so the AVX2 kernels deliberately use `mul` + `add`.
//! * Comparisons against thresholds are exact at every level, so filtering
//!   and "any within" decisions cannot diverge, and `filter_within` pushes
//!   ids in bucket order at every level.
//! * Min/max reductions are order-independent on NaN-free input, and the
//!   scalar code mirrors the `MINPD`/`MAXPD` operand semantics exactly
//!   (`if a < b { a } else { b }`), so even signed zeros reduce identically.
//! * The associativity-sensitive accumulation — the centroid sum — uses one
//!   canonical operation order at every level: four striped partial sums
//!   (lane `j` accumulates elements `j, j+4, j+8, …`) reduced as
//!   `(s0+s2) + (s1+s3)`, with the tail added sequentially.  The scalar
//!   kernel performs that exact sequence, SSE2 emulates it with two
//!   two-lane accumulators, and AVX2 with one four-lane accumulator.
//!
//! The randomized `tests/simd_equivalence.rs` suite enforces all of this by
//! comparing raw output bits across every available level.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A kernel implementation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Plain Rust loops; always available, the reference semantics.
    Scalar,
    /// 128-bit SSE2 intrinsics (two `f64` lanes); x86-64 baseline.
    Sse2,
    /// 256-bit AVX2 intrinsics (four `f64` lanes); runtime-detected.
    Avx2,
}

impl SimdLevel {
    /// Stable lower-case name, matching the `GPDT_SIMD` values.
    pub fn label(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Below this many elements the dispatch methods run the scalar kernel
/// inline instead of going through the function pointer: the hot callers
/// (per-cell DBSCAN buckets, 3×3 Hausdorff probes) are usually a handful of
/// points, where vector setup and an indirect call cost more than the loop.
/// Never observable — every level is bit-identical by construction.
const INLINE_SCALAR_BELOW: usize = 8;

type FilterFn = fn(&[f64], &[f64], &[u32], f64, f64, f64, &mut Vec<u32>);
type AnyWithinFn = fn(&[f64], &[f64], f64, f64, f64) -> bool;
type MinDistFn = fn(&[f64], &[f64], f64, f64, f64) -> f64;
type MinMaxFn = fn(&[f64]) -> (f64, f64);
type SumFn = fn(&[f64]) -> f64;

/// A resolved kernel table: one implementation of every geometry kernel at a
/// fixed [`SimdLevel`].
///
/// Obtain the process-wide table with [`dispatch`] or a specific level's
/// table with [`KernelDispatch::for_level`] (used by the equivalence tests
/// and the `micro` benchmark to compare levels directly).
pub struct KernelDispatch {
    level: SimdLevel,
    filter_within: FilterFn,
    any_within: AnyWithinFn,
    min_dist_sq_bounded: MinDistFn,
    min_max: MinMaxFn,
    sum: SumFn,
}

impl KernelDispatch {
    /// The table for `level`, or `None` when the CPU does not support it.
    ///
    /// [`SimdLevel::Scalar`] always succeeds.  A table is only ever handed
    /// out for a supported level, so its kernels can be called safely.
    pub fn for_level(level: SimdLevel) -> Option<&'static KernelDispatch> {
        match level {
            SimdLevel::Scalar => Some(&SCALAR_TABLE),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => Some(&x86::SSE2_TABLE),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => is_x86_feature_detected!("avx2").then_some(&x86::AVX2_TABLE),
            #[cfg(not(target_arch = "x86_64"))]
            _ => None,
        }
    }

    /// The level this table implements.
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    /// DBSCAN ε-scan: appends `ids[k]` to `out`, in order, for every `k`
    /// with `(xs[k]-px)² + (ys[k]-py)² ≤ r_sq`.
    ///
    /// # Panics
    ///
    /// Panics if the column slices differ in length.
    #[inline]
    pub fn filter_within(
        &self,
        xs: &[f64],
        ys: &[f64],
        ids: &[u32],
        px: f64,
        py: f64,
        r_sq: f64,
        out: &mut Vec<u32>,
    ) {
        assert!(xs.len() == ys.len() && xs.len() == ids.len());
        if xs.len() < INLINE_SCALAR_BELOW {
            scalar::filter_within(xs, ys, ids, px, py, r_sq, out);
        } else {
            (self.filter_within)(xs, ys, ids, px, py, r_sq, out);
        }
    }

    /// Is any column point within `√r_sq` of `(px, py)`?
    ///
    /// # Panics
    ///
    /// Panics if the column slices differ in length.
    #[inline]
    pub fn any_within(&self, xs: &[f64], ys: &[f64], px: f64, py: f64, r_sq: f64) -> bool {
        assert_eq!(xs.len(), ys.len());
        if xs.len() < INLINE_SCALAR_BELOW {
            scalar::any_within(xs, ys, px, py, r_sq)
        } else {
            (self.any_within)(xs, ys, px, py, r_sq)
        }
    }

    /// Squared distance from `(px, py)` to the nearest column point
    /// (`f64::INFINITY` for empty columns), with early exit: once the
    /// running minimum is `≤ stop_below` the scan may stop and return it.
    ///
    /// When no early exit triggers the result is the exact minimum and
    /// bit-identical across levels; an early-exited result is only
    /// guaranteed to be `≤ stop_below` (callers treat such values as "below
    /// the bound", never using the exact value — which keeps the public
    /// Hausdorff results bit-identical anyway).
    ///
    /// # Panics
    ///
    /// Panics if the column slices differ in length.
    #[inline]
    pub fn min_dist_sq_bounded(
        &self,
        xs: &[f64],
        ys: &[f64],
        px: f64,
        py: f64,
        stop_below: f64,
    ) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.len() < INLINE_SCALAR_BELOW {
            scalar::min_dist_sq_bounded(xs, ys, px, py, stop_below)
        } else {
            (self.min_dist_sq_bounded)(xs, ys, px, py, stop_below)
        }
    }

    /// `(min, max)` of a coordinate column, `None` when empty.
    #[inline]
    pub fn column_min_max(&self, xs: &[f64]) -> Option<(f64, f64)> {
        if xs.is_empty() {
            None
        } else if xs.len() < INLINE_SCALAR_BELOW {
            Some(scalar::min_max(xs))
        } else {
            Some((self.min_max)(xs))
        }
    }

    /// Sum of a coordinate column in the canonical striped order (see the
    /// module docs); `0.0` when empty.
    #[inline]
    pub fn column_sum(&self, xs: &[f64]) -> f64 {
        if xs.len() < INLINE_SCALAR_BELOW {
            scalar::sum(xs)
        } else {
            (self.sum)(xs)
        }
    }
}

static SCALAR_TABLE: KernelDispatch = KernelDispatch {
    level: SimdLevel::Scalar,
    filter_within: scalar::filter_within,
    any_within: scalar::any_within,
    min_dist_sq_bounded: scalar::min_dist_sq_bounded,
    min_max: scalar::min_max,
    sum: scalar::sum,
};

/// The levels this machine can run, in increasing width; [`SimdLevel::Scalar`]
/// is always first.  The equivalence tests iterate this list.
pub fn available_levels() -> &'static [SimdLevel] {
    static LEVELS: OnceLock<Vec<SimdLevel>> = OnceLock::new();
    LEVELS.get_or_init(|| {
        let mut levels = vec![SimdLevel::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            levels.push(SimdLevel::Sse2);
            if is_x86_feature_detected!("avx2") {
                levels.push(SimdLevel::Avx2);
            }
        }
        levels
    })
}

/// The best level the machine supports (last entry of
/// [`available_levels`]).
pub fn best_level() -> SimdLevel {
    *available_levels().last().expect("scalar always available")
}

/// Resolves `GPDT_SIMD` to a level: `off`/`scalar` pin the scalar kernels,
/// `sse2`/`avx2` pin that level (clamped to the best available when the CPU
/// lacks it), anything else — including unset and `auto` — selects the best
/// detected level.
fn resolve_from_env() -> SimdLevel {
    let requested = std::env::var("GPDT_SIMD")
        .map(|v| v.trim().to_ascii_lowercase())
        .unwrap_or_default();
    match requested.as_str() {
        "off" | "scalar" | "0" => SimdLevel::Scalar,
        "sse2" if available_levels().contains(&SimdLevel::Sse2) => SimdLevel::Sse2,
        "avx2" if available_levels().contains(&SimdLevel::Avx2) => SimdLevel::Avx2,
        _ => best_level(),
    }
}

/// Forced-level override set by [`force_dispatch_level`]; `0` = no override,
/// otherwise `SimdLevel as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The process-wide kernel table: the `GPDT_SIMD` resolution, computed once
/// on first use.
pub fn dispatch() -> &'static KernelDispatch {
    match FORCED.load(Ordering::Relaxed) {
        1 => &SCALAR_TABLE,
        2 => KernelDispatch::for_level(SimdLevel::Sse2).unwrap_or(&SCALAR_TABLE),
        3 => KernelDispatch::for_level(SimdLevel::Avx2).unwrap_or(&SCALAR_TABLE),
        _ => {
            static RESOLVED: OnceLock<&'static KernelDispatch> = OnceLock::new();
            RESOLVED.get_or_init(|| {
                KernelDispatch::for_level(resolve_from_env()).unwrap_or(&SCALAR_TABLE)
            })
        }
    }
}

/// Test hook: forces [`dispatch`] to a specific level (`None` restores the
/// `GPDT_SIMD` resolution).  Used by the engine-level `GPDT_SIMD=off` vs
/// `auto` equivalence test to run both paths inside one process; levels the
/// machine lacks clamp to scalar.
#[doc(hidden)]
pub fn force_dispatch_level(level: Option<SimdLevel>) {
    let code = match level {
        None => 0,
        Some(SimdLevel::Scalar) => 1,
        Some(SimdLevel::Sse2) => 2,
        Some(SimdLevel::Avx2) => 3,
    };
    FORCED.store(code, Ordering::Relaxed);
}

/// `MINPD` operand semantics: `if a < b { a } else { b }` (returns `b` on
/// ties, signed-zero ties and NaN).  The scalar reductions use this so their
/// results match the vector units bit-for-bit on any input.
#[inline]
fn min2(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// `MAXPD` operand semantics, mirror of [`min2`].
#[inline]
fn max2(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// The canonical striped sum over `n` elements produced by `f`: four partial
/// sums over lanes `i % 4`, reduced as `(s0+s2) + (s1+s3)`, tail sequential.
/// Every [`KernelDispatch::column_sum`] level reproduces this exact
/// operation order, as does [`crate::Point::centroid`] over interleaved
/// points — which is what keeps AoS and SoA centroids bit-identical.
#[inline]
pub(crate) fn sum_striped_by(n: usize, f: impl Fn(usize) -> f64) -> f64 {
    let n4 = n & !3;
    let mut acc = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        acc[0] += f(i);
        acc[1] += f(i + 1);
        acc[2] += f(i + 2);
        acc[3] += f(i + 3);
        i += 4;
    }
    let mut total = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for k in n4..n {
        total += f(k);
    }
    total
}

/// The scalar reference kernels.  Every other level must match these
/// bit-for-bit; they are also the inline fast path for tiny inputs.
mod scalar {
    use super::{max2, min2, sum_striped_by};

    pub(super) fn filter_within(
        xs: &[f64],
        ys: &[f64],
        ids: &[u32],
        px: f64,
        py: f64,
        r_sq: f64,
        out: &mut Vec<u32>,
    ) {
        for k in 0..xs.len() {
            let dx = xs[k] - px;
            let dy = ys[k] - py;
            if dx * dx + dy * dy <= r_sq {
                out.push(ids[k]);
            }
        }
    }

    pub(super) fn any_within(xs: &[f64], ys: &[f64], px: f64, py: f64, r_sq: f64) -> bool {
        for k in 0..xs.len() {
            let dx = xs[k] - px;
            let dy = ys[k] - py;
            if dx * dx + dy * dy <= r_sq {
                return true;
            }
        }
        false
    }

    pub(super) fn min_dist_sq_bounded(
        xs: &[f64],
        ys: &[f64],
        px: f64,
        py: f64,
        stop_below: f64,
    ) -> f64 {
        let mut best = f64::INFINITY;
        for k in 0..xs.len() {
            let dx = xs[k] - px;
            let dy = ys[k] - py;
            let d = dx * dx + dy * dy;
            if d < best {
                best = d;
                if best <= stop_below {
                    return best;
                }
            }
        }
        best
    }

    /// Caller guarantees `xs` is non-empty.
    pub(super) fn min_max(xs: &[f64]) -> (f64, f64) {
        let n4 = xs.len() & !3;
        if n4 == 0 {
            let (mut mn, mut mx) = (xs[0], xs[0]);
            for &x in &xs[1..] {
                mn = min2(mn, x);
                mx = max2(mx, x);
            }
            return (mn, mx);
        }
        let mut mn = [xs[0], xs[1], xs[2], xs[3]];
        let mut mx = mn;
        let mut i = 4;
        while i < n4 {
            for j in 0..4 {
                mn[j] = min2(mn[j], xs[i + j]);
                mx[j] = max2(mx[j], xs[i + j]);
            }
            i += 4;
        }
        let mut lo = min2(min2(mn[0], mn[2]), min2(mn[1], mn[3]));
        let mut hi = max2(max2(mx[0], mx[2]), max2(mx[1], mx[3]));
        for &x in &xs[n4..] {
            lo = min2(lo, x);
            hi = max2(hi, x);
        }
        (lo, hi)
    }

    pub(super) fn sum(xs: &[f64]) -> f64 {
        sum_striped_by(xs.len(), |i| xs[i])
    }
}

/// The SSE2 and AVX2 kernels.
///
/// Every function here performs exactly the operations of its scalar
/// counterpart — same products, same sums, same comparison semantics, and
/// for the striped reductions the same lane-to-accumulator assignment — so
/// the outputs are bit-identical (module docs).  SSE2 processes the
/// canonical four-element block as two 128-bit halves to preserve the
/// four-lane accumulator order.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{KernelDispatch, SimdLevel};
    use core::arch::x86_64::*;

    pub(super) static SSE2_TABLE: KernelDispatch = KernelDispatch {
        level: SimdLevel::Sse2,
        filter_within: filter_within_sse2,
        any_within: any_within_sse2,
        min_dist_sq_bounded: min_dist_sq_bounded_sse2,
        min_max: min_max_sse2,
        sum: sum_sse2,
    };

    pub(super) static AVX2_TABLE: KernelDispatch = KernelDispatch {
        level: SimdLevel::Avx2,
        filter_within: filter_within_avx2,
        any_within: any_within_avx2,
        min_dist_sq_bounded: min_dist_sq_bounded_avx2,
        min_max: min_max_avx2,
        sum: sum_avx2,
    };

    // --- SSE2 -----------------------------------------------------------
    //
    // SSE2 is part of the x86-64 baseline, so these functions need no
    // runtime gate: the whole-body `unsafe` blocks are justified by that
    // (the intrinsics are statically available) plus the in-bounds pointer
    // loads, whose indices stay within the slice by construction of the
    // block loop.

    fn filter_within_sse2(
        xs: &[f64],
        ys: &[f64],
        ids: &[u32],
        px: f64,
        py: f64,
        r_sq: f64,
        out: &mut Vec<u32>,
    ) {
        // SAFETY: SSE2 is statically enabled on every x86_64 target and
        // every load index satisfies i + 1 < n2 <= xs.len() == ys.len()
        // (checked by the caller).
        unsafe {
            let n2 = xs.len() & !1;
            let vpx = _mm_set1_pd(px);
            let vpy = _mm_set1_pd(py);
            let vr = _mm_set1_pd(r_sq);
            let mut i = 0;
            while i < n2 {
                let dx = _mm_sub_pd(_mm_loadu_pd(xs.as_ptr().add(i)), vpx);
                let dy = _mm_sub_pd(_mm_loadu_pd(ys.as_ptr().add(i)), vpy);
                let d = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
                let mut m = _mm_movemask_pd(_mm_cmple_pd(d, vr)) as u32;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    out.push(ids[i + lane]);
                    m &= m - 1;
                }
                i += 2;
            }
            super::scalar::filter_within(&xs[n2..], &ys[n2..], &ids[n2..], px, py, r_sq, out);
        }
    }

    fn any_within_sse2(xs: &[f64], ys: &[f64], px: f64, py: f64, r_sq: f64) -> bool {
        // SAFETY: SSE2 is statically enabled on every x86_64 target and
        // every load index satisfies i + 1 < n2 <= xs.len() == ys.len()
        // (checked by the caller).
        unsafe {
            let n2 = xs.len() & !1;
            let vpx = _mm_set1_pd(px);
            let vpy = _mm_set1_pd(py);
            let vr = _mm_set1_pd(r_sq);
            let mut i = 0;
            while i < n2 {
                let dx = _mm_sub_pd(_mm_loadu_pd(xs.as_ptr().add(i)), vpx);
                let dy = _mm_sub_pd(_mm_loadu_pd(ys.as_ptr().add(i)), vpy);
                let d = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
                if _mm_movemask_pd(_mm_cmple_pd(d, vr)) != 0 {
                    return true;
                }
                i += 2;
            }
            super::scalar::any_within(&xs[n2..], &ys[n2..], px, py, r_sq)
        }
    }

    fn min_dist_sq_bounded_sse2(xs: &[f64], ys: &[f64], px: f64, py: f64, stop_below: f64) -> f64 {
        // SAFETY: SSE2 is statically enabled on every x86_64 target and
        // every load index satisfies i + 1 < n2 <= xs.len() == ys.len()
        // (checked by the caller).
        unsafe {
            let n2 = xs.len() & !1;
            let vpx = _mm_set1_pd(px);
            let vpy = _mm_set1_pd(py);
            let vstop = _mm_set1_pd(stop_below);
            let mut vbest = _mm_set1_pd(f64::INFINITY);
            let mut i = 0;
            while i < n2 {
                let dx = _mm_sub_pd(_mm_loadu_pd(xs.as_ptr().add(i)), vpx);
                let dy = _mm_sub_pd(_mm_loadu_pd(ys.as_ptr().add(i)), vpy);
                let d = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
                vbest = _mm_min_pd(vbest, d);
                if _mm_movemask_pd(_mm_cmple_pd(vbest, vstop)) != 0 {
                    return hmin_sd(vbest);
                }
                i += 2;
            }
            let mut best = hmin_sd(vbest);
            for k in n2..xs.len() {
                let dx = xs[k] - px;
                let dy = ys[k] - py;
                let d = dx * dx + dy * dy;
                if d < best {
                    best = d;
                    if best <= stop_below {
                        return best;
                    }
                }
            }
            best
        }
    }

    /// Horizontal min of both lanes with `MINSD` semantics.
    #[inline]
    fn hmin_sd(v: __m128d) -> f64 {
        // SAFETY: SSE2 is statically enabled on every x86_64 target.
        unsafe { _mm_cvtsd_f64(_mm_min_sd(v, _mm_unpackhi_pd(v, v))) }
    }

    /// Caller guarantees `xs` is non-empty (and here in practice ≥ the
    /// dispatch inline threshold, but the block loop tolerates any length).
    fn min_max_sse2(xs: &[f64]) -> (f64, f64) {
        let n4 = xs.len() & !3;
        if n4 == 0 {
            return super::scalar::min_max(xs);
        }
        // SAFETY: the first block exists (n4 >= 4) and every loop index
        // i + 3 < n4 <= xs.len().
        unsafe {
            // Two 128-bit halves emulate the canonical four-lane block:
            // `a` holds lanes 0-1, `b` lanes 2-3.
            let mut mn_a = _mm_loadu_pd(xs.as_ptr());
            let mut mn_b = _mm_loadu_pd(xs.as_ptr().add(2));
            let mut mx_a = mn_a;
            let mut mx_b = mn_b;
            let mut i = 4;
            while i < n4 {
                let a = _mm_loadu_pd(xs.as_ptr().add(i));
                let b = _mm_loadu_pd(xs.as_ptr().add(i + 2));
                mn_a = _mm_min_pd(mn_a, a);
                mn_b = _mm_min_pd(mn_b, b);
                mx_a = _mm_max_pd(mx_a, a);
                mx_b = _mm_max_pd(mx_b, b);
                i += 4;
            }
            // Reduce as (l0 ∧ l2, l1 ∧ l3) then lane0 ∧ lane1 — the same
            // order as the scalar and AVX2 reductions.
            let mn = _mm_min_pd(mn_a, mn_b);
            let mx = _mm_max_pd(mx_a, mx_b);
            let mut lo = _mm_cvtsd_f64(_mm_min_sd(mn, _mm_unpackhi_pd(mn, mn)));
            let mut hi = _mm_cvtsd_f64(_mm_max_sd(mx, _mm_unpackhi_pd(mx, mx)));
            for &x in &xs[n4..] {
                lo = super::min2(lo, x);
                hi = super::max2(hi, x);
            }
            (lo, hi)
        }
    }

    fn sum_sse2(xs: &[f64]) -> f64 {
        // SAFETY: SSE2 is statically enabled on every x86_64 target and
        // every load index satisfies i + 3 < n4 <= xs.len().
        unsafe {
            let n4 = xs.len() & !3;
            let mut acc_a = _mm_setzero_pd();
            let mut acc_b = _mm_setzero_pd();
            let mut i = 0;
            while i < n4 {
                acc_a = _mm_add_pd(acc_a, _mm_loadu_pd(xs.as_ptr().add(i)));
                acc_b = _mm_add_pd(acc_b, _mm_loadu_pd(xs.as_ptr().add(i + 2)));
                i += 4;
            }
            // (s0+s2, s1+s3) then lane0 + lane1 — the canonical striped order.
            let pair = _mm_add_pd(acc_a, acc_b);
            let mut total = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
            for &x in &xs[n4..] {
                total += x;
            }
            total
        }
    }

    // --- AVX2 -----------------------------------------------------------
    //
    // The table-entry wrappers are plain function pointers; each immediately
    // enters its `#[target_feature(enable = "avx2")]` body.
    //
    // SAFETY argument for all of them: `AVX2_TABLE` is only reachable
    // through `KernelDispatch::for_level` / `dispatch()`, both of which gate
    // it behind `is_x86_feature_detected!("avx2")`, so the target-feature
    // functions only ever execute on CPUs that support AVX2.

    fn filter_within_avx2(
        xs: &[f64],
        ys: &[f64],
        ids: &[u32],
        px: f64,
        py: f64,
        r_sq: f64,
        out: &mut Vec<u32>,
    ) {
        // SAFETY: see the AVX2 section comment.
        unsafe { filter_within_avx2_impl(xs, ys, ids, px, py, r_sq, out) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn filter_within_avx2_impl(
        xs: &[f64],
        ys: &[f64],
        ids: &[u32],
        px: f64,
        py: f64,
        r_sq: f64,
        out: &mut Vec<u32>,
    ) {
        let n4 = xs.len() & !3;
        let vpx = _mm256_set1_pd(px);
        let vpy = _mm256_set1_pd(py);
        let vr = _mm256_set1_pd(r_sq);
        let mut i = 0;
        while i < n4 {
            // SAFETY: i + 3 < xs.len() == ys.len(), checked by the caller.
            let (dx, dy) = unsafe {
                (
                    _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(i)), vpx),
                    _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(i)), vpy),
                )
            };
            // No FMA: separate multiply and add keep the rounding identical
            // to the scalar kernel.
            let d = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            let mut m = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(d, vr)) as u32;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                out.push(ids[i + lane]);
                m &= m - 1;
            }
            i += 4;
        }
        super::scalar::filter_within(&xs[n4..], &ys[n4..], &ids[n4..], px, py, r_sq, out);
    }

    fn any_within_avx2(xs: &[f64], ys: &[f64], px: f64, py: f64, r_sq: f64) -> bool {
        // SAFETY: see the AVX2 section comment.
        unsafe { any_within_avx2_impl(xs, ys, px, py, r_sq) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn any_within_avx2_impl(xs: &[f64], ys: &[f64], px: f64, py: f64, r_sq: f64) -> bool {
        let n4 = xs.len() & !3;
        let vpx = _mm256_set1_pd(px);
        let vpy = _mm256_set1_pd(py);
        let vr = _mm256_set1_pd(r_sq);
        let mut i = 0;
        while i < n4 {
            // SAFETY: i + 3 < xs.len() == ys.len(), checked by the caller.
            let (dx, dy) = unsafe {
                (
                    _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(i)), vpx),
                    _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(i)), vpy),
                )
            };
            let d = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            if _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(d, vr)) != 0 {
                return true;
            }
            i += 4;
        }
        super::scalar::any_within(&xs[n4..], &ys[n4..], px, py, r_sq)
    }

    fn min_dist_sq_bounded_avx2(xs: &[f64], ys: &[f64], px: f64, py: f64, stop_below: f64) -> f64 {
        // SAFETY: see the AVX2 section comment.
        unsafe { min_dist_sq_bounded_avx2_impl(xs, ys, px, py, stop_below) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn min_dist_sq_bounded_avx2_impl(
        xs: &[f64],
        ys: &[f64],
        px: f64,
        py: f64,
        stop_below: f64,
    ) -> f64 {
        let n4 = xs.len() & !3;
        let vpx = _mm256_set1_pd(px);
        let vpy = _mm256_set1_pd(py);
        let vstop = _mm256_set1_pd(stop_below);
        let mut vbest = _mm256_set1_pd(f64::INFINITY);
        let mut i = 0;
        while i < n4 {
            // SAFETY: i + 3 < xs.len() == ys.len(), checked by the caller.
            let (dx, dy) = unsafe {
                (
                    _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(i)), vpx),
                    _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(i)), vpy),
                )
            };
            let d = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            vbest = _mm256_min_pd(vbest, d);
            if _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(vbest, vstop)) != 0 {
                return hmin256(vbest);
            }
            i += 4;
        }
        let mut best = hmin256(vbest);
        for k in n4..xs.len() {
            let dx = xs[k] - px;
            let dy = ys[k] - py;
            let d = dx * dx + dy * dy;
            if d < best {
                best = d;
                if best <= stop_below {
                    return best;
                }
            }
        }
        best
    }

    /// Horizontal min of four lanes in the canonical `(l0∧l2, l1∧l3)` order.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn hmin256(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let pair = _mm_min_pd(lo, hi);
        _mm_cvtsd_f64(_mm_min_sd(pair, _mm_unpackhi_pd(pair, pair)))
    }

    fn min_max_avx2(xs: &[f64]) -> (f64, f64) {
        // SAFETY: see the AVX2 section comment.
        unsafe { min_max_avx2_impl(xs) }
    }

    /// Caller guarantees `xs` is non-empty.
    #[target_feature(enable = "avx2")]
    unsafe fn min_max_avx2_impl(xs: &[f64]) -> (f64, f64) {
        let n4 = xs.len() & !3;
        if n4 == 0 {
            return super::scalar::min_max(xs);
        }
        // SAFETY: the first block exists (n4 >= 4) and every loop index
        // i + 3 < n4 <= xs.len().
        unsafe {
            let mut mn = _mm256_loadu_pd(xs.as_ptr());
            let mut mx = mn;
            let mut i = 4;
            while i < n4 {
                let v = _mm256_loadu_pd(xs.as_ptr().add(i));
                mn = _mm256_min_pd(mn, v);
                mx = _mm256_max_pd(mx, v);
                i += 4;
            }
            let mn_pair = _mm_min_pd(_mm256_castpd256_pd128(mn), _mm256_extractf128_pd::<1>(mn));
            let mx_pair = _mm_max_pd(_mm256_castpd256_pd128(mx), _mm256_extractf128_pd::<1>(mx));
            let mut lo = _mm_cvtsd_f64(_mm_min_sd(mn_pair, _mm_unpackhi_pd(mn_pair, mn_pair)));
            let mut hi = _mm_cvtsd_f64(_mm_max_sd(mx_pair, _mm_unpackhi_pd(mx_pair, mx_pair)));
            for &x in &xs[n4..] {
                lo = super::min2(lo, x);
                hi = super::max2(hi, x);
            }
            (lo, hi)
        }
    }

    fn sum_avx2(xs: &[f64]) -> f64 {
        // SAFETY: see the AVX2 section comment.
        unsafe { sum_avx2_impl(xs) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sum_avx2_impl(xs: &[f64]) -> f64 {
        let n4 = xs.len() & !3;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < n4 {
            // SAFETY: i + 3 < n4 <= xs.len().
            unsafe {
                acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs.as_ptr().add(i)));
            }
            i += 4;
        }
        // (s0+s2, s1+s3) then lane0 + lane1 — the canonical striped order.
        let pair = _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd::<1>(acc));
        let mut total = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
        for &x in &xs[n4..] {
            total += x;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert_eq!(available_levels()[0], SimdLevel::Scalar);
        assert!(KernelDispatch::for_level(SimdLevel::Scalar).is_some());
        assert!(available_levels().contains(&best_level()));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
        assert_eq!(SimdLevel::Sse2.label(), "sse2");
        assert_eq!(SimdLevel::Avx2.label(), "avx2");
    }

    #[test]
    fn dispatch_forcing_round_trips() {
        // Run sequentially inside one test to avoid cross-test interference
        // on the global override.
        force_dispatch_level(Some(SimdLevel::Scalar));
        assert_eq!(dispatch().level(), SimdLevel::Scalar);
        force_dispatch_level(None);
        assert!(available_levels().contains(&dispatch().level()));
    }

    #[test]
    fn filter_within_respects_order_and_radius() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [0.0; 9];
        let ids: Vec<u32> = (0..9).collect();
        for level in available_levels() {
            let d = KernelDispatch::for_level(*level).unwrap();
            let mut out = Vec::new();
            d.filter_within(&xs, &ys, &ids, 4.0, 0.0, 4.0, &mut out);
            assert_eq!(out, vec![2, 3, 4, 5, 6], "{level:?}");
        }
    }

    #[test]
    fn reductions_match_reference_on_small_vectors() {
        let xs: Vec<f64> = (0..23).map(|i| (i as f64) * 0.37 - 4.0).collect();
        for level in available_levels() {
            let d = KernelDispatch::for_level(*level).unwrap();
            let (lo, hi) = d.column_min_max(&xs).unwrap();
            assert_eq!(lo.to_bits(), (-4.0f64).to_bits(), "{level:?}");
            assert_eq!(hi.to_bits(), (22.0f64 * 0.37 - 4.0).to_bits(), "{level:?}");
            assert_eq!(
                d.column_sum(&xs).to_bits(),
                sum_striped_by(xs.len(), |i| xs[i]).to_bits(),
                "{level:?}"
            );
        }
        assert!(dispatch().column_min_max(&[]).is_none());
        assert_eq!(dispatch().column_sum(&[]), 0.0);
    }

    #[test]
    fn min_dist_full_scan_is_exact() {
        let xs = [5.0, 1.0, -3.0, 2.0, 9.0, 1.5, 0.5, -2.0, 4.0];
        let ys = [1.0, -1.0, 2.0, 0.0, 3.0, 2.5, -0.5, 1.0, -4.0];
        for level in available_levels() {
            let d = KernelDispatch::for_level(*level).unwrap();
            let got = d.min_dist_sq_bounded(&xs, &ys, 0.0, 0.0, f64::NEG_INFINITY);
            let want = xs
                .iter()
                .zip(&ys)
                .map(|(&x, &y)| x * x + y * y)
                .fold(f64::INFINITY, min2);
            assert_eq!(got.to_bits(), want.to_bits(), "{level:?}");
            assert!(d.any_within(&xs, &ys, 0.0, 0.0, want));
            assert!(!d.any_within(&xs, &ys, 0.0, 0.0, want * 0.99));
        }
        assert_eq!(
            dispatch().min_dist_sq_bounded(&[], &[], 0.0, 0.0, f64::NEG_INFINITY),
            f64::INFINITY
        );
    }
}
