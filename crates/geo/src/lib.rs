//! Geometric primitives for gathering-pattern discovery.
//!
//! This crate provides the spatial substrate used by the rest of the
//! workspace:
//!
//! * [`Point`] — a 2-D point with Euclidean distance operations,
//! * [`Mbr`] — axis-aligned minimum bounding rectangles with the
//!   rectangle/rectangle and side/rectangle minimum-distance functions that
//!   back the `dmin` (Lemma 2) and `dside` (Lemma 3) lower bounds of the
//!   paper,
//! * [`hausdorff`] — exact and threshold-aware Hausdorff distance between
//!   point sets (Definition in §II of the paper),
//! * [`grid`] — the uniform grid geometry (cell side = √2/2·δ) and the
//!   *affect region* of a cell (Definition 5),
//! * [`bvs`] — bit-vector signatures with word-parallel population count and
//!   set operations, shared by TAD\* and the swarm miner,
//! * [`soa`] — structure-of-arrays point storage ([`PointColumns`] /
//!   [`PointsView`]) and the [`PointAccess`] trait the hot kernels are
//!   generic over,
//! * [`simd`] — runtime-dispatched AVX2/SSE2/scalar kernels for the hot
//!   column loops (ε-neighbourhood filtering, nearest-point reductions,
//!   min/max/sum column folds), bit-identical across levels and pinnable
//!   via `GPDT_SIMD`.
//!
//! All distances are plain Euclidean distances in metres; the workspace
//! treats trajectory coordinates as already projected onto a local planar
//! coordinate system.

pub mod bvs;
pub mod grid;
pub mod hausdorff;
pub mod mbr;
pub mod point;
pub mod simd;
pub mod soa;

pub use bvs::BitVector;
pub use grid::{CellCoord, GridGeometry};
pub use hausdorff::{
    bucketed_pair_cutoff, directed_hausdorff, hausdorff_distance, hausdorff_distance_views,
    hausdorff_within, hausdorff_within_bruteforce, hausdorff_within_bucketed,
    hausdorff_within_views,
};
pub use mbr::Mbr;
pub use point::Point;
pub use simd::{available_levels, dispatch, KernelDispatch, SimdLevel};
pub use soa::{PointAccess, PointColumns, PointsView};
