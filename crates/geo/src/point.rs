//! 2-D points and Euclidean distance.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point in the plane.
///
/// Coordinates are metres in a local planar projection.  The paper's
/// trajectory samples and snapshot-cluster members are all represented by
/// `Point`s after interpolation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting (metres).
    pub x: f64,
    /// Northing (metres).
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a new point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this in hot loops when only comparisons against a squared
    /// threshold are needed; it avoids the square root.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Returns `true` if the distance to `other` does not exceed `threshold`.
    #[inline]
    pub fn within(&self, other: &Point, threshold: f64) -> bool {
        self.distance_sq(other) <= threshold * threshold
    }

    /// Linear interpolation between `self` and `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`.  Used by the trajectory
    /// crate to create the *virtual points* of unsynchronised trajectories.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// The centroid of a non-empty slice of points.
    ///
    /// Returns `None` for an empty slice.
    pub fn centroid(points: &[Point]) -> Option<Point> {
        if points.is_empty() {
            return None;
        }
        // Accumulate in the canonical striped order shared by every SIMD
        // level so the AoS centroid stays bit-identical to
        // [`Point::centroid_columns`] (sums are associativity-sensitive;
        // min/max reductions are not).
        let n = points.len() as f64;
        let sx = crate::simd::sum_striped_by(points.len(), |i| points[i].x);
        let sy = crate::simd::sum_striped_by(points.len(), |i| points[i].y);
        Some(Point::new(sx / n, sy / n))
    }

    /// The centroid of a point set given as parallel coordinate columns.
    ///
    /// Columnar twin of [`Point::centroid`]; the two must agree bit-for-bit
    /// on the same point set, so both accumulate in the canonical striped
    /// order of [`crate::simd`] (which every dispatched sum kernel
    /// reproduces exactly).
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length.
    pub fn centroid_columns(xs: &[f64], ys: &[f64]) -> Option<Point> {
        assert_eq!(xs.len(), ys.len(), "coordinate columns must be parallel");
        if xs.is_empty() {
            return None;
        }
        let d = crate::simd::dispatch();
        let n = xs.len() as f64;
        let sx = d.column_sum(xs);
        let sy = d.column_sum(ys);
        Some(Point::new(sx / n, sy / n))
    }

    /// Perpendicular distance from `self` to the segment `a`–`b`.
    ///
    /// If the projection of `self` falls outside the segment the distance to
    /// the nearest endpoint is returned.  This is the distance used by the
    /// Douglas–Peucker simplification in the trajectory crate.
    pub fn distance_to_segment(&self, a: &Point, b: &Point) -> f64 {
        let abx = b.x - a.x;
        let aby = b.y - a.y;
        let len_sq = abx * abx + aby * aby;
        if len_sq == 0.0 {
            return self.distance(a);
        }
        let t = ((self.x - a.x) * abx + (self.y - a.y) * aby) / len_sq;
        let t = t.clamp(0.0, 1.0);
        let proj = Point::new(a.x + t * abx, a.y + t * aby);
        self.distance(&proj)
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.25, 8.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(7.0, 11.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn within_respects_threshold() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(a.within(&b, 5.0));
        assert!(a.within(&b, 5.1));
        assert!(!a.within(&b, 4.9));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::new(5.0, 10.0));
        assert_eq!(a.midpoint(&b), Point::new(5.0, 10.0));
    }

    #[test]
    fn centroid_of_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(Point::centroid(&pts), Some(Point::new(1.0, 1.0)));
        assert_eq!(Point::centroid(&[]), None);
    }

    #[test]
    fn segment_distance_projection_inside() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(5.0, 3.0);
        assert!((p.distance_to_segment(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_projection_outside_uses_endpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let p = Point::new(14.0, 3.0);
        assert!((p.distance_to_segment(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_degenerate_segment() {
        let a = Point::new(1.0, 1.0);
        let p = Point::new(4.0, 5.0);
        assert_eq!(p.distance_to_segment(&a, &a), 5.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a + b, Point::new(4.0, 6.0));
        assert_eq!(b - a, Point::new(2.0, 2.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, 2.0));
    }

    #[test]
    fn conversions() {
        let p: Point = (3.0, 4.0).into();
        assert_eq!(p, Point::new(3.0, 4.0));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (3.0, 4.0));
    }

    #[test]
    fn display_formats_two_decimals() {
        assert_eq!(Point::new(1.234, 5.678).to_string(), "(1.23, 5.68)");
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
