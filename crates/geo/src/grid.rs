//! Uniform grid geometry and affect regions.
//!
//! The grid-based range search (§III-A.2 of the paper) partitions space into
//! square cells whose side length is `√2/2·δ`.  Two facts drive the pruning
//! and refinement logic:
//!
//! * any two points inside the *same* cell are at distance at most `δ`
//!   (the cell diagonal is exactly `δ`), and
//! * a point in cell `g` can only be within `δ` of points that lie in the
//!   *affect region* `AR(g)` of `g` (Definition 5): the cells `g'` with
//!   `|Δrow| ≤ 2`, `|Δcol| ≤ 2` and `|Δrow| + |Δcol| < 4`.
//!
//! [`GridGeometry`] owns only the geometry (origin and cell size); the actual
//! per-timestamp cell lists and inverted lists live in `gpdt-index`.

use crate::point::Point;

/// Integer coordinates of a grid cell (column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellCoord {
    /// Column index (x direction).
    pub col: i64,
    /// Row index (y direction).
    pub row: i64,
}

impl CellCoord {
    /// Creates a cell coordinate.
    pub const fn new(col: i64, row: i64) -> Self {
        CellCoord { col, row }
    }

    /// Chebyshev-style membership test for the affect region of `self`
    /// relative to `other` (Definition 5 of the paper).
    pub fn in_affect_region_of(&self, other: &CellCoord) -> bool {
        let dc = (self.col - other.col).abs();
        let dr = (self.row - other.row).abs();
        dc <= 2 && dr <= 2 && dc + dr < 4
    }
}

/// The geometry of a uniform grid: an origin and a square cell size.
///
/// The same `GridGeometry` is shared by the cluster indexes of *all*
/// timestamps, which is one of the advantages the paper claims for the grid
/// index over per-timestamp R-trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridGeometry {
    origin: Point,
    cell_size: f64,
}

impl GridGeometry {
    /// Creates a grid with an explicit origin and cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(origin: Point, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite, got {cell_size}"
        );
        GridGeometry { origin, cell_size }
    }

    /// Creates the grid prescribed by the paper for a variation threshold
    /// `delta`: square cells with side `√2/2·δ` anchored at the origin.
    ///
    /// With this side length the cell diagonal equals `δ`, so two points in
    /// the same cell are never more than `δ` apart.
    pub fn for_delta(delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta > 0.0,
            "delta must be positive and finite, got {delta}"
        );
        GridGeometry::new(Point::ORIGIN, delta * std::f64::consts::FRAC_1_SQRT_2)
    }

    /// The side length of a cell.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The grid origin.
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The cell containing point `p`.
    #[inline]
    pub fn cell_of(&self, p: &Point) -> CellCoord {
        self.cell_of_xy(p.x, p.y)
    }

    /// The cell containing the point `(x, y)` given as raw coordinates.
    ///
    /// Columnar twin of [`GridGeometry::cell_of`] for callers scanning
    /// `xs`/`ys` columns.
    #[inline]
    pub fn cell_of_xy(&self, x: f64, y: f64) -> CellCoord {
        CellCoord {
            col: ((x - self.origin.x) / self.cell_size).floor() as i64,
            row: ((y - self.origin.y) / self.cell_size).floor() as i64,
        }
    }

    /// The lower-left corner of a cell.
    pub fn cell_min_corner(&self, cell: &CellCoord) -> Point {
        Point::new(
            self.origin.x + cell.col as f64 * self.cell_size,
            self.origin.y + cell.row as f64 * self.cell_size,
        )
    }

    /// The centre point of a cell.
    pub fn cell_center(&self, cell: &CellCoord) -> Point {
        let min = self.cell_min_corner(cell);
        Point::new(min.x + self.cell_size / 2.0, min.y + self.cell_size / 2.0)
    }

    /// The 21 cell offsets of an affect region (Definition 5): the 5×5 block
    /// minus its four corners, in the same (column-major) order as
    /// [`GridGeometry::affect_region`].  A `const` table so hot loops can
    /// walk a cell's affect region without allocating.
    pub const AFFECT_OFFSETS: [(i64, i64); 21] = [
        (-2, -1),
        (-2, 0),
        (-2, 1),
        (-1, -2),
        (-1, -1),
        (-1, 0),
        (-1, 1),
        (-1, 2),
        (0, -2),
        (0, -1),
        (0, 0),
        (0, 1),
        (0, 2),
        (1, -2),
        (1, -1),
        (1, 0),
        (1, 1),
        (1, 2),
        (2, -1),
        (2, 0),
        (2, 1),
    ];

    /// The affect region of `cell` (Definition 5): all cells that may contain
    /// a point within `δ` of some point in `cell`.
    ///
    /// The region is the 5×5 block centred on `cell` minus its four corners —
    /// 21 cells in total.
    pub fn affect_region(&self, cell: &CellCoord) -> Vec<CellCoord> {
        Self::AFFECT_OFFSETS
            .iter()
            .map(|&(dc, dr)| CellCoord::new(cell.col + dc, cell.row + dr))
            .collect()
    }

    /// Minimum distance between two cells (between their closed extents).
    pub fn cell_min_distance(&self, a: &CellCoord, b: &CellCoord) -> f64 {
        let gap = |d: i64| -> f64 {
            if d.abs() <= 1 {
                0.0
            } else {
                (d.abs() - 1) as f64 * self.cell_size
            }
        };
        let dx = gap(a.col - b.col);
        let dy = gap(a.row - b.row);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_delta_cell_diagonal_equals_delta() {
        let delta = 300.0;
        let g = GridGeometry::for_delta(delta);
        let diag = g.cell_size() * std::f64::consts::SQRT_2;
        assert!((diag - delta).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_delta() {
        let _ = GridGeometry::for_delta(0.0);
    }

    #[test]
    fn cell_of_maps_points_to_expected_cells() {
        let g = GridGeometry::new(Point::ORIGIN, 10.0);
        assert_eq!(g.cell_of(&Point::new(0.0, 0.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(&Point::new(9.999, 9.999)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(&Point::new(10.0, 0.0)), CellCoord::new(1, 0));
        assert_eq!(g.cell_of(&Point::new(-0.001, 5.0)), CellCoord::new(-1, 0));
        assert_eq!(g.cell_of(&Point::new(25.0, -13.0)), CellCoord::new(2, -2));
    }

    #[test]
    fn cell_of_respects_origin() {
        let g = GridGeometry::new(Point::new(100.0, 200.0), 10.0);
        assert_eq!(g.cell_of(&Point::new(100.0, 200.0)), CellCoord::new(0, 0));
        assert_eq!(g.cell_of(&Point::new(95.0, 195.0)), CellCoord::new(-1, -1));
    }

    #[test]
    fn points_in_same_cell_are_within_delta() {
        let delta = 120.0;
        let g = GridGeometry::for_delta(delta);
        let cell = CellCoord::new(3, -2);
        let min = g.cell_min_corner(&cell);
        let eps = 1e-9;
        let a = Point::new(min.x + eps, min.y + eps);
        let b = Point::new(min.x + g.cell_size() - eps, min.y + g.cell_size() - eps);
        assert_eq!(g.cell_of(&a), cell);
        assert_eq!(g.cell_of(&b), cell);
        assert!(a.distance(&b) <= delta);
    }

    #[test]
    fn affect_offsets_table_matches_definition() {
        let mut expected = Vec::new();
        for dc in -2i64..=2 {
            for dr in -2i64..=2 {
                if dc.abs() + dr.abs() < 4 {
                    expected.push((dc, dr));
                }
            }
        }
        assert_eq!(GridGeometry::AFFECT_OFFSETS.to_vec(), expected);
    }

    #[test]
    fn affect_region_has_21_cells_and_matches_definition() {
        let g = GridGeometry::for_delta(100.0);
        let c = CellCoord::new(5, 5);
        let ar = g.affect_region(&c);
        assert_eq!(ar.len(), 21);
        assert!(ar.contains(&c));
        // Corners of the 5x5 block are excluded.
        assert!(!ar.contains(&CellCoord::new(3, 3)));
        assert!(!ar.contains(&CellCoord::new(7, 7)));
        assert!(!ar.contains(&CellCoord::new(3, 7)));
        assert!(!ar.contains(&CellCoord::new(7, 3)));
        // Straight-line extremes are included.
        assert!(ar.contains(&CellCoord::new(3, 5)));
        assert!(ar.contains(&CellCoord::new(5, 7)));
        for cell in &ar {
            assert!(cell.in_affect_region_of(&c));
        }
    }

    #[test]
    fn cells_outside_affect_region_are_farther_than_delta() {
        // The definition's purpose: a point in a cell outside AR(g) is always
        // farther than delta from any point in g.
        let delta = 100.0;
        let g = GridGeometry::for_delta(delta);
        let c = CellCoord::new(0, 0);
        for dc in -4i64..=4 {
            for dr in -4i64..=4 {
                let other = CellCoord::new(dc, dr);
                if !other.in_affect_region_of(&c) {
                    assert!(
                        g.cell_min_distance(&c, &other) > delta - 1e-9,
                        "cell {other:?} outside AR but min distance {} <= delta",
                        g.cell_min_distance(&c, &other)
                    );
                }
            }
        }
    }

    #[test]
    fn cell_min_distance_adjacent_is_zero() {
        let g = GridGeometry::new(Point::ORIGIN, 10.0);
        assert_eq!(
            g.cell_min_distance(&CellCoord::new(0, 0), &CellCoord::new(1, 1)),
            0.0
        );
        assert_eq!(
            g.cell_min_distance(&CellCoord::new(0, 0), &CellCoord::new(3, 0)),
            20.0
        );
        let d = g.cell_min_distance(&CellCoord::new(0, 0), &CellCoord::new(3, 3));
        assert!((d - (800.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn cell_center_is_inside_cell() {
        let g = GridGeometry::new(Point::new(-50.0, 20.0), 7.5);
        let cell = CellCoord::new(4, -3);
        let center = g.cell_center(&cell);
        assert_eq!(g.cell_of(&center), cell);
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Every point maps to a cell whose extent contains it.
    #[test]
    fn cell_of_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x61);
        for _ in 0..512 {
            let size = rng.gen_range(1.0..1000.0);
            let g = GridGeometry::new(Point::ORIGIN, size);
            let p = Point::new(rng.gen_range(-1e6..1e6), rng.gen_range(-1e6..1e6));
            let cell = g.cell_of(&p);
            let min = g.cell_min_corner(&cell);
            assert!(p.x >= min.x - 1e-6 && p.x <= min.x + size + 1e-6);
            assert!(p.y >= min.y - 1e-6 && p.y <= min.y + size + 1e-6);
        }
    }

    /// Two points in the same cell of a `for_delta` grid are within delta.
    #[test]
    fn same_cell_implies_within_delta() {
        let mut rng = StdRng::seed_from_u64(0x62);
        for _ in 0..512 {
            let delta = rng.gen_range(10.0..1000.0);
            let g = GridGeometry::for_delta(delta);
            let a = Point::new(rng.gen_range(-1e5..1e5), rng.gen_range(-1e5..1e5));
            let cell = g.cell_of(&a);
            let min = g.cell_min_corner(&cell);
            let (dx, dy) = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let b = Point::new(
                min.x + dx * g.cell_size() * 0.999,
                min.y + dy * g.cell_size() * 0.999,
            );
            if g.cell_of(&b) == cell {
                assert!(a.distance(&b) <= delta + 1e-6);
            }
        }
    }

    /// Points in cells outside each other's affect region are farther
    /// apart than delta.
    #[test]
    fn outside_affect_region_implies_far() {
        let mut rng = StdRng::seed_from_u64(0x63);
        for _ in 0..512 {
            let delta = rng.gen_range(10.0..500.0);
            let g = GridGeometry::for_delta(delta);
            let a = Point::new(rng.gen_range(-1e4..1e4), rng.gen_range(-1e4..1e4));
            let b = Point::new(rng.gen_range(-1e4..1e4), rng.gen_range(-1e4..1e4));
            let ca = g.cell_of(&a);
            let cb = g.cell_of(&b);
            if !cb.in_affect_region_of(&ca) {
                assert!(a.distance(&b) > delta - 1e-6);
            }
        }
    }

    /// Affect-region membership is symmetric.
    #[test]
    fn affect_region_symmetric() {
        let mut rng = StdRng::seed_from_u64(0x64);
        for _ in 0..512 {
            let a = CellCoord::new(rng.gen_range(-100i64..100), rng.gen_range(-100i64..100));
            let b = CellCoord::new(rng.gen_range(-100i64..100), rng.gen_range(-100i64..100));
            assert_eq!(a.in_affect_region_of(&b), b.in_affect_region_of(&a));
        }
    }
}
