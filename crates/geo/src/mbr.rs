//! Axis-aligned minimum bounding rectangles.
//!
//! Besides the usual containment/intersection predicates the module provides
//! the two rectangle-based lower bounds for the Hausdorff distance used by
//! the crowd-discovery range search:
//!
//! * [`Mbr::min_distance`] — `dmin(M(ci), M(cj))`, the minimum distance
//!   between two rectangles (Lemma 2 of the paper),
//! * [`Mbr::side_distance`] — `dside(M(ci), M(cj))`, the maximum over the
//!   four sides of `M(ci)` of the minimum distance between the side and
//!   `M(cj)` (Lemma 3), which is a tighter lower bound.

use crate::point::Point;

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    /// Smallest x coordinate.
    pub min_x: f64,
    /// Smallest y coordinate.
    pub min_y: f64,
    /// Largest x coordinate.
    pub max_x: f64,
    /// Largest y coordinate.
    pub max_y: f64,
}

impl Mbr {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `min_x > max_x` or `min_y > max_y`.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x <= max_x && min_y <= max_y,
            "invalid MBR: ({min_x}, {min_y}) - ({max_x}, {max_y})"
        );
        Mbr {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The degenerate rectangle covering a single point.
    pub fn from_point(p: Point) -> Self {
        Mbr::new(p.x, p.y, p.x, p.y)
    }

    /// The tightest rectangle enclosing all `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut mbr = Mbr::from_point(*first);
        for p in &points[1..] {
            mbr.expand_to_point(*p);
        }
        Some(mbr)
    }

    /// The tightest rectangle enclosing a point set given as parallel
    /// coordinate columns.
    ///
    /// Columnar twin of [`Mbr::from_points`]; each column is reduced by the
    /// dispatched SIMD min/max kernel ([`crate::simd::dispatch`]).  Min/max
    /// is order-independent on the finite coordinates stored here, so this
    /// agrees exactly with the expanding AoS sweep.  Returns `None` for
    /// empty columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length.
    pub fn from_columns(xs: &[f64], ys: &[f64]) -> Option<Self> {
        assert_eq!(xs.len(), ys.len(), "coordinate columns must be parallel");
        let d = crate::simd::dispatch();
        let (min_x, max_x) = d.column_min_max(xs)?;
        let (min_y, max_y) = d.column_min_max(ys)?;
        Some(Mbr {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    }

    /// Width along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Semi-perimeter (used by R-tree split heuristics).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Grows the rectangle so it also covers `p`.
    pub fn expand_to_point(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grows the rectangle so it also covers `other`.
    pub fn expand_to_mbr(&mut self, other: &Mbr) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// The union of two rectangles.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut m = *self;
        m.expand_to_mbr(other);
        m
    }

    /// The rectangle enlarged by `delta` on every side.
    ///
    /// This is the window used by the simple R-tree range search (`SR`): any
    /// cluster whose MBR does not intersect the enlarged window has
    /// `dmin > delta` and can be pruned.
    pub fn enlarged(&self, delta: f64) -> Mbr {
        Mbr::new(
            self.min_x - delta,
            self.min_y - delta,
            self.max_x + delta,
            self.max_y + delta,
        )
    }

    /// Returns `true` if the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Returns `true` if `other` lies fully inside `self`.
    #[inline]
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        self.min_x <= other.min_x
            && self.max_x >= other.max_x
            && self.min_y <= other.min_y
            && self.max_y >= other.max_y
    }

    /// Returns `true` if the point lies inside (or on the boundary of) the
    /// rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.min_x <= p.x && p.x <= self.max_x && self.min_y <= p.y && p.y <= self.max_y
    }

    /// Area growth needed to also cover `other` (R-tree insertion heuristic).
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum distance between a point and the rectangle; zero if the point
    /// is inside.
    pub fn min_distance_point(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// `dmin`: minimum distance between two rectangles; zero if they
    /// intersect.
    ///
    /// By Lemma 2 of the paper `dmin(M(ci), M(cj)) ≤ dH(ci, cj)`, so any pair
    /// with `dmin > δ` can be pruned without looking at the points.
    pub fn min_distance(&self, other: &Mbr) -> f64 {
        let dx = (self.min_x - other.max_x)
            .max(0.0)
            .max(other.min_x - self.max_x);
        let dy = (self.min_y - other.max_y)
            .max(0.0)
            .max(other.min_y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// The four sides of the rectangle as degenerate rectangles.
    ///
    /// Order: bottom, top, left, right.
    pub fn sides(&self) -> [Mbr; 4] {
        [
            Mbr::new(self.min_x, self.min_y, self.max_x, self.min_y),
            Mbr::new(self.min_x, self.max_y, self.max_x, self.max_y),
            Mbr::new(self.min_x, self.min_y, self.min_x, self.max_y),
            Mbr::new(self.max_x, self.min_y, self.max_x, self.max_y),
        ]
    }

    /// `dside`: the tighter Hausdorff lower bound of Lemma 3.
    ///
    /// For every side `la` of `self`, the cluster bounded by `self` has at
    /// least one point on `la`, and that point is at distance at least
    /// `dmin(la, other)` from the other cluster.  Taking the maximum over the
    /// four sides therefore still lower-bounds the (directed, and hence the
    /// symmetric) Hausdorff distance.
    pub fn side_distance(&self, other: &Mbr) -> f64 {
        self.sides()
            .iter()
            .map(|side| side.min_distance(other))
            .fold(0.0, f64::max)
    }

    /// Returns `true` if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.min_x.is_finite()
            && self.min_y.is_finite()
            && self.max_x.is_finite()
            && self.max_y.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Mbr {
        Mbr::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let m = Mbr::from_points(&pts).unwrap();
        assert_eq!(m, Mbr::new(-2.0, -1.0, 4.0, 5.0));
        for p in &pts {
            assert!(m.contains_point(p));
        }
        assert!(Mbr::from_points(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid MBR")]
    fn new_rejects_inverted_rectangle() {
        let _ = Mbr::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn geometry_accessors() {
        let m = Mbr::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(m.width(), 4.0);
        assert_eq!(m.height(), 2.0);
        assert_eq!(m.area(), 8.0);
        assert_eq!(m.margin(), 6.0);
        assert_eq!(m.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn union_and_enlargement() {
        let a = unit();
        let b = Mbr::new(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert_eq!(u, Mbr::new(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn intersects_and_containment() {
        let a = unit();
        assert!(a.intersects(&Mbr::new(0.5, 0.5, 2.0, 2.0)));
        assert!(a.intersects(&Mbr::new(1.0, 1.0, 2.0, 2.0))); // touching corner
        assert!(!a.intersects(&Mbr::new(1.1, 1.1, 2.0, 2.0)));
        assert!(a.contains_mbr(&Mbr::new(0.2, 0.2, 0.8, 0.8)));
        assert!(!a.contains_mbr(&Mbr::new(0.2, 0.2, 1.2, 0.8)));
    }

    #[test]
    fn enlarged_grows_every_side() {
        let e = unit().enlarged(2.0);
        assert_eq!(e, Mbr::new(-2.0, -2.0, 3.0, 3.0));
    }

    #[test]
    fn min_distance_point_inside_is_zero() {
        let m = unit();
        assert_eq!(m.min_distance_point(&Point::new(0.5, 0.5)), 0.0);
        assert_eq!(m.min_distance_point(&Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn min_distance_between_rectangles() {
        let a = unit();
        assert_eq!(a.min_distance(&Mbr::new(0.5, 0.5, 2.0, 2.0)), 0.0);
        // Horizontally separated by 2.
        assert_eq!(a.min_distance(&Mbr::new(3.0, 0.0, 4.0, 1.0)), 2.0);
        // Diagonally separated: dx = 3, dy = 4 -> 5.
        assert_eq!(a.min_distance(&Mbr::new(4.0, 5.0, 6.0, 7.0)), 5.0);
        // Symmetry.
        let b = Mbr::new(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.min_distance(&b), b.min_distance(&a));
    }

    #[test]
    fn side_distance_dominates_min_distance() {
        let a = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let b = Mbr::new(12.0, 0.0, 14.0, 10.0);
        let dmin = a.min_distance(&b);
        let dside = a.side_distance(&b);
        assert_eq!(dmin, 2.0);
        // The left side of `a` is 12 away from `b`, so dside = 12.
        assert_eq!(dside, 12.0);
        assert!(dside >= dmin);
    }

    #[test]
    fn side_distance_zero_when_equal() {
        let a = unit();
        assert_eq!(a.side_distance(&a), 0.0);
    }

    #[test]
    fn side_distance_for_contained_rectangle() {
        // `b` strictly inside `a`: every side of `a` is at positive distance
        // from `b`, so dside > 0 even though dmin = 0 — consistent with the
        // Hausdorff distance also being positive in this configuration.
        let a = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let b = Mbr::new(4.0, 4.0, 6.0, 6.0);
        assert_eq!(a.min_distance(&b), 0.0);
        assert_eq!(a.side_distance(&b), 4.0);
    }

    #[test]
    fn sides_are_degenerate_and_on_boundary() {
        let m = Mbr::new(0.0, 0.0, 2.0, 3.0);
        let sides = m.sides();
        assert_eq!(sides[0], Mbr::new(0.0, 0.0, 2.0, 0.0));
        assert_eq!(sides[1], Mbr::new(0.0, 3.0, 2.0, 3.0));
        assert_eq!(sides[2], Mbr::new(0.0, 0.0, 0.0, 3.0));
        assert_eq!(sides[3], Mbr::new(2.0, 0.0, 2.0, 3.0));
        for s in &sides {
            assert!(m.contains_mbr(s));
        }
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(unit().is_finite());
        let mut m = unit();
        m.max_x = f64::NAN;
        assert!(!m.is_finite());
    }
}
