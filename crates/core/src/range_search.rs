//! Range-search strategies for crowd discovery.
//!
//! Algorithm 1 repeatedly asks, for the last cluster of each crowd candidate,
//! which clusters at the *next* timestamp lie within Hausdorff distance `δ`.
//! The paper evaluates three ways of answering this (§III-A); all of them are
//! available here behind [`RangeSearchStrategy`], plus a brute-force baseline:
//!
//! * [`RangeSearchStrategy::BruteForce`] — test every cluster with the
//!   early-exit Hausdorff threshold check.
//! * [`RangeSearchStrategy::RTreeDmin`] (**SR**) — R-tree over cluster MBRs,
//!   candidates pruned with the `dmin` lower bound (Lemma 2), survivors
//!   refined with the exact threshold check.
//! * [`RangeSearchStrategy::RTreeDside`] (**IR**) — R-tree candidates pruned
//!   with the tighter `dside` bound (Lemma 3), then refined.
//! * [`RangeSearchStrategy::Grid`] (**GRID**) — the shared-geometry grid
//!   index whose pruning/refinement decides `dH ≤ δ` without exact Hausdorff
//!   computations (§III-A.2).
//!
//! A [`TickSearcher`] is built once per timestamp from that timestamp's
//! cluster set and then queried once per crowd candidate.

use gpdt_clustering::{SnapshotCluster, SnapshotClusterSet};
use gpdt_geo::GridGeometry;
use gpdt_index::{rtree::Entry, GridBuildScratch, GridClusterIndex, RTree};

/// The pruning scheme used by the crowd-discovery range search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RangeSearchStrategy {
    /// Exhaustively test every cluster (no index).
    BruteForce,
    /// R-tree pruning with the `dmin` lower bound (the paper's **SR**).
    RTreeDmin,
    /// R-tree pruning with the `dside` lower bound (the paper's **IR**).
    RTreeDside,
    /// Grid index with affect-region pruning and grid refinement
    /// (the paper's **GRID**, the fastest scheme).
    #[default]
    Grid,
}

impl RangeSearchStrategy {
    /// All strategies, in the order the paper's figures list them.
    pub const ALL: [RangeSearchStrategy; 4] = [
        RangeSearchStrategy::BruteForce,
        RangeSearchStrategy::RTreeDmin,
        RangeSearchStrategy::RTreeDside,
        RangeSearchStrategy::Grid,
    ];

    /// Short label used in benchmark output (matches the paper's legend).
    pub fn label(&self) -> &'static str {
        match self {
            RangeSearchStrategy::BruteForce => "BRUTE",
            RangeSearchStrategy::RTreeDmin => "SR",
            RangeSearchStrategy::RTreeDside => "IR",
            RangeSearchStrategy::Grid => "GRID",
        }
    }
}

impl std::fmt::Display for RangeSearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Statistics of one range search, used by the ablation benchmarks to compare
/// the pruning power of the strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Number of candidate clusters that survived index pruning and had to be
    /// refined.
    pub candidates: usize,
    /// Number of candidates confirmed to be within `δ`.
    pub results: usize,
}

impl gpdt_obs::MetricSource for SearchStats {
    fn metric_prefix(&self) -> &'static str {
        "search"
    }
    fn metric_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("candidates", self.candidates as u64),
            ("results", self.results as u64),
        ]
    }
}

enum TickIndex {
    Brute,
    RTree { tree: RTree, use_dside: bool },
    Grid { index: GridClusterIndex },
}

/// Reusable buffers for [`TickSearcher::build_with`]: the R-tree entry list
/// and the grid index's build scratch.  One searcher is built per tick of the
/// discovery sweep; a worker holding a `SearcherScratch` across its ticks
/// rebuilds indexes without per-tick temporary allocations.
#[derive(Default)]
pub struct SearcherScratch {
    entries: Vec<Entry>,
    grid: GridBuildScratch,
}

impl SearcherScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        SearcherScratch::default()
    }
}

/// A per-timestamp search structure over one snapshot-cluster set.
pub struct TickSearcher<'a> {
    set: &'a SnapshotClusterSet,
    delta: f64,
    index: TickIndex,
}

impl<'a> TickSearcher<'a> {
    /// Builds the searcher for `set` under the chosen `strategy` and
    /// variation threshold `delta`.
    pub fn build(strategy: RangeSearchStrategy, set: &'a SnapshotClusterSet, delta: f64) -> Self {
        Self::build_with(strategy, set, delta, &mut SearcherScratch::new())
    }

    /// Like [`TickSearcher::build`], reusing the caller's scratch buffers.
    pub fn build_with(
        strategy: RangeSearchStrategy,
        set: &'a SnapshotClusterSet,
        delta: f64,
        scratch: &mut SearcherScratch,
    ) -> Self {
        let index = match strategy {
            RangeSearchStrategy::BruteForce => TickIndex::Brute,
            RangeSearchStrategy::RTreeDmin | RangeSearchStrategy::RTreeDside => {
                scratch.entries.clear();
                scratch.entries.extend(
                    set.clusters
                        .iter()
                        .enumerate()
                        .map(|(id, c)| Entry { id, mbr: *c.mbr() }),
                );
                TickIndex::RTree {
                    tree: RTree::bulk_load_slice(&mut scratch.entries),
                    use_dside: strategy == RangeSearchStrategy::RTreeDside,
                }
            }
            RangeSearchStrategy::Grid => {
                let geometry = GridGeometry::for_delta(delta);
                // Columnar views straight out of the tick's shared arena —
                // no per-cluster point copies.
                let point_sets: Vec<gpdt_geo::PointsView<'_>> =
                    set.clusters.iter().map(|c| c.points()).collect();
                TickIndex::Grid {
                    index: GridClusterIndex::build_access(geometry, &point_sets, &mut scratch.grid),
                }
            }
        };
        TickSearcher { set, delta, index }
    }

    /// The timestamp's cluster set this searcher covers.
    pub fn cluster_set(&self) -> &SnapshotClusterSet {
        self.set
    }

    /// Indices (into the cluster set) of all clusters within Hausdorff
    /// distance `δ` of `query`.
    pub fn search(&self, query: &SnapshotCluster) -> Vec<usize> {
        let mut out = Vec::new();
        self.search_into(query, &mut out);
        out
    }

    /// Like [`Self::search`], writing the result into a reusable buffer and
    /// returning the pruning statistics.
    pub fn search_into(&self, query: &SnapshotCluster, out: &mut Vec<usize>) -> SearchStats {
        out.clear();
        let candidates = match &self.index {
            TickIndex::Brute => {
                out.extend(
                    self.set
                        .clusters
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| query.within_hausdorff(c, self.delta))
                        .map(|(i, _)| i),
                );
                self.set.clusters.len()
            }
            TickIndex::RTree { tree, use_dside } => {
                let ids = if *use_dside {
                    tree.range_by_side_distance(query.mbr(), self.delta)
                } else {
                    tree.range_by_min_distance(query.mbr(), self.delta)
                };
                let candidates = ids.len();
                out.extend(
                    ids.into_iter()
                        .filter(|&i| query.within_hausdorff(&self.set.clusters[i], self.delta)),
                );
                candidates
            }
            TickIndex::Grid { index } => {
                // Bucket the query once; every candidate refinement reuses it.
                let prepared = index.prepare_query_access(query.points());
                let candidate_ids = index.candidates(prepared.cells());
                let candidates = candidate_ids.len();
                out.extend(
                    candidate_ids
                        .into_iter()
                        .filter(|&i| index.within_delta_prepared(&prepared, i, self.delta)),
                );
                candidates
            }
        };
        SearchStats {
            candidates,
            results: out.len(),
        }
    }

    /// Like [`Self::search`] but also reports pruning statistics.
    pub fn search_with_stats(&self, query: &SnapshotCluster) -> (Vec<usize>, SearchStats) {
        let mut out = Vec::new();
        let stats = self.search_into(query, &mut out);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_geo::Point;
    use gpdt_trajectory::ObjectId;

    fn blob(time: u32, first_id: u32, cx: f64, cy: f64, n: usize, spread: f64) -> SnapshotCluster {
        let members: Vec<ObjectId> = (0..n as u32).map(|i| ObjectId::new(first_id + i)).collect();
        let points: Vec<Point> = (0..n)
            .map(|i| {
                let angle = i as f64 * 2.39996;
                let r = spread * ((i + 1) as f64 / n as f64).sqrt();
                Point::new(cx + r * angle.cos(), cy + r * angle.sin())
            })
            .collect();
        SnapshotCluster::new(time, members, points)
    }

    fn test_set() -> SnapshotClusterSet {
        SnapshotClusterSet {
            time: 1,
            clusters: vec![
                blob(1, 0, 0.0, 0.0, 8, 40.0),
                blob(1, 100, 150.0, 0.0, 6, 30.0),
                blob(1, 200, 2_000.0, 2_000.0, 10, 50.0),
                blob(1, 300, 60.0, 60.0, 7, 35.0),
            ],
        }
    }

    #[test]
    fn all_strategies_agree_with_bruteforce() {
        let set = test_set();
        let delta = 200.0;
        let query = blob(0, 900, 20.0, 10.0, 9, 45.0);

        let brute = TickSearcher::build(RangeSearchStrategy::BruteForce, &set, delta);
        let expected = brute.search(&query);
        assert!(!expected.is_empty());

        for strategy in [
            RangeSearchStrategy::RTreeDmin,
            RangeSearchStrategy::RTreeDside,
            RangeSearchStrategy::Grid,
        ] {
            let searcher = TickSearcher::build(strategy, &set, delta);
            assert_eq!(searcher.search(&query), expected, "strategy {strategy}");
        }
    }

    #[test]
    fn far_query_matches_nothing_under_all_strategies() {
        let set = test_set();
        let delta = 100.0;
        let query = blob(0, 900, -50_000.0, -50_000.0, 5, 20.0);
        for strategy in RangeSearchStrategy::ALL {
            let searcher = TickSearcher::build(strategy, &set, delta);
            assert!(searcher.search(&query).is_empty(), "strategy {strategy}");
        }
    }

    #[test]
    fn pruning_candidates_do_not_exceed_bruteforce_and_cover_results() {
        let set = test_set();
        let delta = 250.0;
        let query = blob(0, 900, 40.0, 20.0, 9, 45.0);
        let brute = TickSearcher::build(RangeSearchStrategy::BruteForce, &set, delta);
        let (expected, brute_stats) = brute.search_with_stats(&query);
        assert_eq!(brute_stats.candidates, set.clusters.len());
        for strategy in [
            RangeSearchStrategy::RTreeDmin,
            RangeSearchStrategy::RTreeDside,
            RangeSearchStrategy::Grid,
        ] {
            let searcher = TickSearcher::build(strategy, &set, delta);
            let (results, stats) = searcher.search_with_stats(&query);
            assert_eq!(results, expected);
            assert!(stats.candidates <= brute_stats.candidates);
            assert!(stats.candidates >= stats.results);
            assert_eq!(stats.results, expected.len());
        }
    }

    #[test]
    fn dside_prunes_at_least_as_well_as_dmin() {
        let set = test_set();
        let delta = 150.0;
        let query = blob(0, 900, 10.0, 5.0, 9, 45.0);
        let sr = TickSearcher::build(RangeSearchStrategy::RTreeDmin, &set, delta);
        let ir = TickSearcher::build(RangeSearchStrategy::RTreeDside, &set, delta);
        let (_, sr_stats) = sr.search_with_stats(&query);
        let (_, ir_stats) = ir.search_with_stats(&query);
        assert!(ir_stats.candidates <= sr_stats.candidates);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(RangeSearchStrategy::BruteForce.label(), "BRUTE");
        assert_eq!(RangeSearchStrategy::RTreeDmin.to_string(), "SR");
        assert_eq!(RangeSearchStrategy::RTreeDside.to_string(), "IR");
        assert_eq!(RangeSearchStrategy::Grid.to_string(), "GRID");
        assert_eq!(RangeSearchStrategy::default(), RangeSearchStrategy::Grid);
    }

    #[test]
    fn empty_cluster_set_yields_no_results() {
        let set = SnapshotClusterSet {
            time: 5,
            clusters: vec![],
        };
        let query = blob(4, 0, 0.0, 0.0, 5, 10.0);
        for strategy in RangeSearchStrategy::ALL {
            let searcher = TickSearcher::build(strategy, &set, 100.0);
            assert!(searcher.search(&query).is_empty());
        }
    }
}
