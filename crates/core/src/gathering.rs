//! Gatherings, participators and the Test-and-Divide detection algorithms.
//!
//! A crowd is a **gathering** (Definition 4) when every one of its snapshot
//! clusters contains at least `mp` **participators** — objects that appear in
//! at least `kp` (possibly non-consecutive) clusters of the crowd
//! (Definition 3).  Gatherings do *not* have the downward-closure property,
//! so detection cannot grow them incrementally; instead the paper proposes
//! **Test-and-Divide (TAD)**:
//!
//! 1. test the whole crowd — if it is a gathering it is closed (Theorem 1)
//!    and is returned immediately;
//! 2. otherwise remove the *invalid clusters* (those with fewer than `mp`
//!    participators), which splits the crowd into contiguous pieces, and
//!    recurse into every piece that is still long enough to be a crowd.
//!
//! **TAD\*** performs the same recursion but represents each object's
//! occurrence as a [`BitVector`] signature built once for the whole crowd;
//! counting occurrences in a sub-crowd is then a masked population count and
//! dividing is just a narrowing of the active range.
//!
//! A quadratic **brute-force** enumerator over all contiguous sub-crowds is
//! provided as the baseline of the paper's Figure 7.

use std::collections::HashMap;

use gpdt_clustering::ClusterDatabase;
use gpdt_trajectory::ObjectId;

use crate::bvs::BitVector;
use crate::crowd::Crowd;
use crate::params::GatheringParams;

/// The algorithm used to detect closed gatherings within a crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TadVariant {
    /// Enumerate all contiguous sub-crowds from longest to shortest.
    BruteForce,
    /// Test-and-Divide with straightforward per-object occurrence counting.
    Tad,
    /// Test-and-Divide with bit-vector signatures and word-parallel popcounts.
    #[default]
    TadStar,
}

impl TadVariant {
    /// All variants in the order of the paper's Figure 7 legend.
    pub const ALL: [TadVariant; 3] = [TadVariant::BruteForce, TadVariant::Tad, TadVariant::TadStar];

    /// Short label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            TadVariant::BruteForce => "brute-force",
            TadVariant::Tad => "TAD",
            TadVariant::TadStar => "TAD*",
        }
    }
}

impl std::fmt::Display for TadVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A closed gathering: the sub-crowd together with its participator set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gathering {
    crowd: Crowd,
    participators: Vec<ObjectId>,
}

impl Gathering {
    /// Reassembles a gathering from its parts (the deserialisation path of
    /// the `gpdt-store` codec); `participators` is sorted if it is not
    /// already.
    ///
    /// The caller is responsible for the parts actually describing a
    /// gathering of some cluster database — this constructor performs no
    /// semantic validation beyond the `Crowd` invariants.
    pub fn from_parts(crowd: Crowd, mut participators: Vec<ObjectId>) -> Self {
        participators.sort_unstable();
        Gathering {
            crowd,
            participators,
        }
    }

    /// The sub-crowd forming the gathering.
    pub fn crowd(&self) -> &Crowd {
        &self.crowd
    }

    /// The participators (objects appearing in at least `kp` clusters of the
    /// gathering), sorted by object id.
    pub fn participators(&self) -> &[ObjectId] {
        &self.participators
    }

    /// Lifetime of the gathering in ticks.
    pub fn lifetime(&self) -> u32 {
        self.crowd.lifetime()
    }
}

/// The per-object occurrence table of one crowd.
///
/// Row `i` is the bit-vector signature `B(o_i)` of the `i`-th distinct object
/// appearing anywhere in the crowd: bit `j` is set iff the object is a member
/// of the crowd's `j`-th snapshot cluster.  Built once per crowd and shared
/// by every recursion level of TAD/TAD\* and by the incremental gathering
/// update.
#[derive(Debug, Clone)]
pub struct CrowdOccurrence {
    objects: Vec<ObjectId>,
    signatures: Vec<BitVector>,
    /// Members of each cluster as indices into `objects`.
    cluster_members: Vec<Vec<usize>>,
    crowd_len: usize,
}

impl CrowdOccurrence {
    /// Builds the occurrence table of `crowd` from the cluster database.
    ///
    /// # Panics
    ///
    /// Panics if the crowd references clusters missing from the database.
    pub fn build(crowd: &Crowd, cdb: &ClusterDatabase) -> Self {
        let n = crowd.len();
        let mut object_index: HashMap<ObjectId, usize> = HashMap::new();
        let mut objects: Vec<ObjectId> = Vec::new();
        let mut memberships: Vec<Vec<usize>> = Vec::with_capacity(n);
        for id in crowd.cluster_ids() {
            let cluster = cdb
                .cluster(*id)
                .expect("crowd references a cluster missing from the database");
            let mut members = Vec::with_capacity(cluster.len());
            for &obj in cluster.members() {
                let idx = *object_index.entry(obj).or_insert_with(|| {
                    objects.push(obj);
                    objects.len() - 1
                });
                members.push(idx);
            }
            memberships.push(members);
        }
        let mut signatures = vec![BitVector::zeros(n); objects.len()];
        for (pos, members) in memberships.iter().enumerate() {
            for &obj_idx in members {
                signatures[obj_idx].set(pos, true);
            }
        }
        CrowdOccurrence {
            objects,
            signatures,
            cluster_members: memberships,
            crowd_len: n,
        }
    }

    /// Number of distinct objects appearing in the crowd.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of snapshot clusters in the crowd.
    pub fn crowd_len(&self) -> usize {
        self.crowd_len
    }

    /// The distinct objects, in first-appearance order.
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// The bit-vector signature of object `idx`.
    pub fn signature(&self, idx: usize) -> &BitVector {
        &self.signatures[idx]
    }

    /// Occurrence count of object `idx` within positions `[start, end)`,
    /// counted naively (the TAD path).
    fn count_in_range_naive(&self, idx: usize, start: usize, end: usize) -> u32 {
        (start..end)
            .filter(|&pos| self.signatures[idx].get(pos))
            .count() as u32
    }

    /// Occurrence count of object `idx` under `mask` using the word-parallel
    /// popcount (the TAD\* path).
    fn count_in_mask(&self, idx: usize, mask: &BitVector) -> u32 {
        self.signatures[idx].count_ones_masked(mask)
    }
}

/// Outcome of testing one contiguous range of a crowd.
enum TestOutcome {
    /// The range is a gathering; the payload is the participator list
    /// (indices into the occurrence table).
    Gathering(Vec<usize>),
    /// The range is not a gathering; the payload lists the invalid positions
    /// (absolute positions within the original crowd).
    Invalid(Vec<usize>),
}

/// Tests whether the contiguous range `[start, end)` of the crowd is a
/// gathering; `use_bvs` selects between naive counting (TAD) and masked
/// popcounts (TAD\*).
fn test_range(
    occ: &CrowdOccurrence,
    params: &GatheringParams,
    start: usize,
    end: usize,
    use_bvs: bool,
) -> TestOutcome {
    let mask = if use_bvs {
        Some(BitVector::range_mask(occ.crowd_len(), start, end))
    } else {
        None
    };
    // Step 1: find the participators of the sub-crowd.
    let is_participator: Vec<bool> = (0..occ.object_count())
        .map(|idx| {
            let count = match &mask {
                Some(mask) => occ.count_in_mask(idx, mask),
                None => occ.count_in_range_naive(idx, start, end),
            };
            count >= params.kp
        })
        .collect();
    // Step 2: every cluster of the sub-crowd needs at least mp participators.
    let mut invalid = Vec::new();
    for pos in start..end {
        let participators_here = occ.cluster_members[pos]
            .iter()
            .filter(|&&obj| is_participator[obj])
            .count();
        if participators_here < params.mp {
            invalid.push(pos);
        }
    }
    if invalid.is_empty() {
        let participators = (0..occ.object_count())
            .filter(|&i| is_participator[i])
            .collect();
        TestOutcome::Gathering(participators)
    } else {
        TestOutcome::Invalid(invalid)
    }
}

/// Positions within `[start, end)` whose cluster has fewer than `mp`
/// participators of that range — the *invalid clusters* the divide step
/// removes.  Exposed for the incremental gathering update, which needs the
/// invalid positions of the whole extended crowd to locate its pivot.
pub(crate) fn find_invalid_positions(
    occ: &CrowdOccurrence,
    params: &GatheringParams,
    start: usize,
    end: usize,
) -> Vec<usize> {
    match test_range(occ, params, start, end, true) {
        TestOutcome::Gathering(_) => Vec::new(),
        TestOutcome::Invalid(invalid) => invalid,
    }
}

fn make_gathering(
    crowd: &Crowd,
    occ: &CrowdOccurrence,
    start: usize,
    end: usize,
    participator_indices: &[usize],
) -> Gathering {
    let mut participators: Vec<ObjectId> = participator_indices
        .iter()
        .map(|&i| occ.objects[i])
        .collect();
    participators.sort();
    Gathering {
        crowd: crowd.sub_crowd(start, end),
        participators,
    }
}

/// Test-and-Divide (Algorithm 2), shared by TAD and TAD\*.
#[allow(clippy::too_many_arguments)]
fn tad_recursive(
    crowd: &Crowd,
    occ: &CrowdOccurrence,
    params: &GatheringParams,
    kc: u32,
    start: usize,
    end: usize,
    use_bvs: bool,
    out: &mut Vec<Gathering>,
) {
    if ((end - start) as u32) < kc {
        return;
    }
    match test_range(occ, params, start, end, use_bvs) {
        TestOutcome::Gathering(participators) => {
            out.push(make_gathering(crowd, occ, start, end, &participators));
        }
        TestOutcome::Invalid(invalid) => {
            // Divide: recurse into the maximal runs between invalid clusters.
            let mut run_start = start;
            for &bad in &invalid {
                if bad > run_start {
                    tad_recursive(crowd, occ, params, kc, run_start, bad, use_bvs, out);
                }
                run_start = bad + 1;
            }
            if end > run_start {
                tad_recursive(crowd, occ, params, kc, run_start, end, use_bvs, out);
            }
        }
    }
}

/// Brute-force baseline: enumerate contiguous sub-crowds from longest to
/// shortest and keep those that are gatherings and not contained in an
/// already-reported one.
fn brute_force(
    crowd: &Crowd,
    occ: &CrowdOccurrence,
    params: &GatheringParams,
    kc: u32,
) -> Vec<Gathering> {
    let n = crowd.len();
    let mut accepted: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    let mut len = n;
    while len as u32 >= kc {
        for start in 0..=(n - len) {
            let end = start + len;
            if accepted.iter().any(|&(s, e, _)| s <= start && end <= e) {
                continue;
            }
            if let TestOutcome::Gathering(participators) =
                test_range(occ, params, start, end, false)
            {
                accepted.push((start, end, participators));
            }
        }
        len -= 1;
    }
    accepted.sort_by_key(|&(s, e, _)| (s, e));
    accepted
        .into_iter()
        .map(|(s, e, p)| make_gathering(crowd, occ, s, e, &p))
        .collect()
}

/// Detects all closed gatherings within one closed crowd.
///
/// `kc` is the crowd lifetime threshold (a divided piece shorter than `kc` is
/// no longer a crowd and cannot host a gathering).  The returned gatherings
/// are sorted by their position within the crowd.
pub fn detect_closed_gatherings(
    crowd: &Crowd,
    cdb: &ClusterDatabase,
    params: &GatheringParams,
    kc: u32,
    variant: TadVariant,
) -> Vec<Gathering> {
    let occ = CrowdOccurrence::build(crowd, cdb);
    detect_with_occurrence(crowd, &occ, params, kc, variant)
}

/// Like [`detect_closed_gatherings`] but reuses a pre-built occurrence table
/// (the incremental gathering update builds the table once for the extended
/// crowd).
pub fn detect_with_occurrence(
    crowd: &Crowd,
    occ: &CrowdOccurrence,
    params: &GatheringParams,
    kc: u32,
    variant: TadVariant,
) -> Vec<Gathering> {
    detect_in_range(crowd, occ, params, kc, variant, 0, crowd.len())
}

/// Detects the closed gatherings of the contiguous sub-crowd covering
/// positions `[start, end)` of `crowd`, reusing the crowd's occurrence table.
///
/// This is the entry point of the Theorem 2 gathering update: the bit-vector
/// signatures of the extended crowd are built once and the recursion is
/// restricted to the region right of the pivot invalid cluster.
pub fn detect_in_range(
    crowd: &Crowd,
    occ: &CrowdOccurrence,
    params: &GatheringParams,
    kc: u32,
    variant: TadVariant,
    start: usize,
    end: usize,
) -> Vec<Gathering> {
    assert!(
        start <= end && end <= crowd.len(),
        "invalid detection range"
    );
    let mut out = Vec::new();
    if start == end {
        return out;
    }
    match variant {
        TadVariant::BruteForce => {
            // The brute-force baseline always enumerates the full crowd; it is
            // only meaningful on the whole range.
            assert!(
                start == 0 && end == crowd.len(),
                "the brute-force variant does not support range-restricted detection"
            );
            out = brute_force(crowd, occ, params, kc);
        }
        TadVariant::Tad => tad_recursive(crowd, occ, params, kc, start, end, false, &mut out),
        TadVariant::TadStar => tad_recursive(crowd, occ, params, kc, start, end, true, &mut out),
    }
    out.sort_by_key(|g| (g.crowd().start_time(), g.crowd().end_time()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_clustering::{ClusterId, SnapshotCluster, SnapshotClusterSet};
    use gpdt_geo::Point;

    /// Builds a cluster database holding a single "crowd" whose membership at
    /// each position is given explicitly.  Geometry is irrelevant for
    /// gathering detection, so all points are placed at the origin area.
    fn membership_database(memberships: &[&[u32]]) -> (ClusterDatabase, Crowd) {
        let sets: Vec<SnapshotClusterSet> = memberships
            .iter()
            .enumerate()
            .map(|(t, ids)| {
                let t = t as u32;
                SnapshotClusterSet {
                    time: t,
                    clusters: vec![SnapshotCluster::new(
                        t,
                        ids.iter().map(|&i| ObjectId::new(i)).collect(),
                        ids.iter()
                            .enumerate()
                            .map(|(k, _)| Point::new(k as f64, 0.0))
                            .collect(),
                    )],
                }
            })
            .collect();
        let crowd = Crowd::new(
            (0..memberships.len())
                .map(|t| ClusterId::new(t as u32, 0))
                .collect(),
        );
        (ClusterDatabase::from_sets(sets), crowd)
    }

    /// The paper's Figure 3 example: eight clusters, six objects,
    /// kc = kp = 3, mc = mp = 3.  TAD must output exactly <c1..c4> as a
    /// gathering.
    fn figure3() -> (ClusterDatabase, Crowd) {
        membership_database(&[
            &[2, 3, 4],    // c1: o2 o3 o4
            &[1, 2, 3, 5], // c2: o1 o2 o3 o5
            &[1, 2, 4, 5], // c3: o1 o2 o4 o5
            &[2, 3, 4, 5], // c4: o2 o3 o4 o5
            &[1, 4, 6],    // c5: o1 o4 o6
            &[1, 3, 4, 6], // c6: o1 o3 o4 o6
            &[2, 3, 4],    // c7: o2 o3 o4
            &[2, 3, 4],    // c8: o2 o3 o4
        ])
    }

    #[test]
    fn occurrence_table_matches_figure3_signatures() {
        let (cdb, crowd) = figure3();
        let occ = CrowdOccurrence::build(&crowd, &cdb);
        assert_eq!(occ.crowd_len(), 8);
        assert_eq!(occ.object_count(), 6);
        // Expected signatures from the paper (left-to-right = positions 0..8):
        let expected: &[(u32, [u8; 8])] = &[
            (1, [0, 1, 1, 0, 1, 1, 0, 0]),
            (2, [1, 1, 1, 1, 0, 0, 1, 1]),
            (3, [1, 1, 0, 1, 0, 1, 1, 1]),
            (4, [1, 0, 1, 1, 1, 1, 1, 1]),
            (5, [0, 1, 1, 1, 0, 0, 0, 0]),
            (6, [0, 0, 0, 0, 1, 1, 0, 0]),
        ];
        for &(obj, bits) in expected {
            let idx = occ
                .objects()
                .iter()
                .position(|&o| o == ObjectId::new(obj))
                .unwrap();
            let sig = occ.signature(idx);
            for (pos, &bit) in bits.iter().enumerate() {
                assert_eq!(sig.get(pos), bit == 1, "object o{obj} position {pos}");
            }
        }
    }

    #[test]
    fn figure3_example_all_variants_find_crowd_prefix_gathering() {
        let (cdb, crowd) = figure3();
        let params = GatheringParams::new(3, 3);
        for variant in TadVariant::ALL {
            let gatherings = detect_closed_gatherings(&crowd, &cdb, &params, 3, variant);
            assert_eq!(gatherings.len(), 1, "variant {variant}");
            let g = &gatherings[0];
            assert_eq!(g.crowd().start_time(), 0);
            assert_eq!(g.crowd().end_time(), 3);
            assert_eq!(g.lifetime(), 4);
            // Within <c1..c4>, o1 appears twice (< kp) so the participators
            // are o2, o3, o4, o5.
            assert_eq!(
                g.participators(),
                &[
                    ObjectId::new(2),
                    ObjectId::new(3),
                    ObjectId::new(4),
                    ObjectId::new(5)
                ]
            );
        }
    }

    #[test]
    fn whole_crowd_gathering_is_returned_immediately() {
        // Three dedicated objects present everywhere: the whole crowd is a
        // gathering and is closed.
        let (cdb, crowd) =
            membership_database(&[&[1, 2, 3, 9], &[1, 2, 3], &[1, 2, 3, 7], &[1, 2, 3]]);
        let params = GatheringParams::new(3, 4);
        for variant in TadVariant::ALL {
            let gatherings = detect_closed_gatherings(&crowd, &cdb, &params, 3, variant);
            assert_eq!(gatherings.len(), 1);
            assert_eq!(gatherings[0].crowd(), &crowd);
            assert_eq!(
                gatherings[0].participators(),
                &[ObjectId::new(1), ObjectId::new(2), ObjectId::new(3)]
            );
        }
    }

    #[test]
    fn no_gathering_when_membership_churns_completely() {
        // Every cluster has enough members but no object stays long enough to
        // be a participator.
        let (cdb, crowd) =
            membership_database(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9], &[10, 11, 12]]);
        let params = GatheringParams::new(2, 2);
        for variant in TadVariant::ALL {
            assert!(
                detect_closed_gatherings(&crowd, &cdb, &params, 2, variant).is_empty(),
                "variant {variant}"
            );
        }
    }

    #[test]
    fn gathering_absent_in_parts_but_present_in_whole() {
        // The paper's motivating example for the lack of downward closure:
        // c1..c4 over objects o1..o4 with kp = 3, mp = 2.  Neither <c1,c2,c3>
        // nor <c2,c3,c4> is a gathering, but the whole crowd is.
        let (cdb, crowd) = membership_database(&[&[1, 2, 3], &[1, 2, 4], &[1, 3, 4], &[2, 3, 4]]);
        let params = GatheringParams::new(2, 3);
        // Sanity: the 3-length prefixes/suffixes are not gatherings.
        let prefix = crowd.sub_crowd(0, 3);
        let occ_prefix = CrowdOccurrence::build(&prefix, &cdb);
        assert!(matches!(
            test_range(&occ_prefix, &params, 0, 3, true),
            TestOutcome::Invalid(_)
        ));
        // The whole crowd is one closed gathering.
        for variant in TadVariant::ALL {
            let gatherings = detect_closed_gatherings(&crowd, &cdb, &params, 3, variant);
            assert_eq!(gatherings.len(), 1, "variant {variant}");
            assert_eq!(gatherings[0].crowd(), &crowd);
        }
    }

    #[test]
    fn divide_produces_two_disjoint_gatherings() {
        // Objects 1..3 stick around for the first four clusters, objects
        // 11..13 for the last four; the middle cluster has only transient
        // members, so TAD splits there and finds two gatherings.
        let (cdb, crowd) = membership_database(&[
            &[1, 2, 3],
            &[1, 2, 3, 50],
            &[1, 2, 3],
            &[1, 2, 3],
            &[60, 61, 62],
            &[11, 12, 13],
            &[11, 12, 13, 70],
            &[11, 12, 13],
            &[11, 12, 13],
        ]);
        let params = GatheringParams::new(3, 4);
        for variant in TadVariant::ALL {
            let gatherings = detect_closed_gatherings(&crowd, &cdb, &params, 4, variant);
            assert_eq!(gatherings.len(), 2, "variant {variant}");
            assert_eq!(gatherings[0].crowd().interval().start, 0);
            assert_eq!(gatherings[0].crowd().interval().end, 3);
            assert_eq!(gatherings[1].crowd().interval().start, 5);
            assert_eq!(gatherings[1].crowd().interval().end, 8);
        }
    }

    #[test]
    fn divided_piece_shorter_than_kc_is_discarded() {
        // The valid run after the invalid cluster is only 2 long; with kc = 3
        // it cannot host a gathering.
        let (cdb, crowd) = membership_database(&[
            &[1, 2, 3],
            &[1, 2, 3],
            &[1, 2, 3],
            &[9, 8, 7],
            &[1, 2, 3],
            &[1, 2, 3],
        ]);
        let params = GatheringParams::new(3, 3);
        for variant in TadVariant::ALL {
            let gatherings = detect_closed_gatherings(&crowd, &cdb, &params, 3, variant);
            assert_eq!(gatherings.len(), 1, "variant {variant}");
            assert_eq!(gatherings[0].crowd().interval().start, 0);
            assert_eq!(gatherings[0].crowd().interval().end, 2);
        }
    }

    #[test]
    fn tad_and_tadstar_and_bruteforce_agree_on_randomised_memberships() {
        // Deterministic pseudo-random memberships over 20 positions and 12
        // objects; all three variants must agree exactly.
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..30 {
            let n = 8 + (next() % 16) as usize;
            let memberships: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    let mut ids: Vec<u32> = (1..=12u32).filter(|_| next() % 3 != 0).collect();
                    if ids.is_empty() {
                        ids.push(1);
                    }
                    ids
                })
                .collect();
            let refs: Vec<&[u32]> = memberships.iter().map(|v| v.as_slice()).collect();
            let (cdb, crowd) = membership_database(&refs);
            let params = GatheringParams::new(3, 4);
            let kc = 4;
            let brute = detect_closed_gatherings(&crowd, &cdb, &params, kc, TadVariant::BruteForce);
            let tad = detect_closed_gatherings(&crowd, &cdb, &params, kc, TadVariant::Tad);
            let tadstar = detect_closed_gatherings(&crowd, &cdb, &params, kc, TadVariant::TadStar);
            assert_eq!(tad, tadstar, "trial {trial}");
            assert_eq!(brute, tad, "trial {trial}");
        }
    }

    #[test]
    fn variant_labels() {
        assert_eq!(TadVariant::BruteForce.label(), "brute-force");
        assert_eq!(TadVariant::Tad.to_string(), "TAD");
        assert_eq!(TadVariant::TadStar.to_string(), "TAD*");
        assert_eq!(TadVariant::default(), TadVariant::TadStar);
    }
}
