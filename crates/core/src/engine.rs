//! The streaming-first discovery engine.
//!
//! [`GatheringEngine`] is the single implementation of gathering discovery in
//! this crate: it ingests trajectory or snapshot-cluster data tick-by-tick
//! (or in arbitrary batches) and maintains the set of closed crowds and
//! closed gatherings incrementally.  Both public façades are thin wrappers
//! over it — [`GatheringPipeline`](crate::pipeline::GatheringPipeline) feeds
//! the engine one big batch, while
//! [`IncrementalDiscovery`](crate::incremental::IncrementalDiscovery) exposes
//! the batch-by-batch surface directly — so Algorithm 1 resumption (Lemma 4)
//! and the Theorem 2 gathering update exist exactly once.
//!
//! Per tick, the engine:
//!
//! 1. clusters newly appended snapshots on demand (when fed trajectories)
//!    with a [`StreamingClusterer`], in parallel across timestamps;
//! 2. resumes Algorithm 1 from the saved frontier (Lemma 4: only cluster
//!    sequences ending at the previous last timestamp can be extended), with
//!    the per-tick [`TickSearcher`](crate::range_search::TickSearcher)s built
//!    once per tick, in parallel, and shared across all crowd candidates;
//! 3. detects the closed gatherings of every newly closed crowd in parallel,
//!    reusing the gatherings of an extended crowd's old prefix (Theorem 2)
//!    instead of re-running Test-and-Divide from scratch.
//!
//! Results are independent of the batch slicing, the range-search strategy,
//! the detection variant and the thread count: the accessor methods return
//! crowds and gatherings in a canonical order, so feeding the same data one
//! tick at a time or as one big batch yields identical output.
//!
//! ```
//! use gpdt_core::{GatheringConfig, GatheringEngine};
//! use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
//!
//! // Five objects linger together for eight ticks.
//! let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
//!     Trajectory::from_points(
//!         ObjectId::new(i),
//!         (0..8u32).map(|t| (t, (i as f64 * 10.0, t as f64))).collect::<Vec<_>>(),
//!     )
//! }));
//!
//! let config = GatheringConfig::builder()
//!     .clustering(gpdt_core::ClusteringParams::new(60.0, 3))
//!     .crowd(gpdt_core::CrowdParams::new(4, 4, 100.0))
//!     .gathering(gpdt_core::GatheringParams::new(3, 3))
//!     .build()
//!     .unwrap();
//!
//! // Stream the trajectory history into the engine in two arbitrary slices:
//! // the engine clusters the new ticks, extends the crowd frontier and
//! // updates the gatherings after each call.
//! let mut engine = GatheringEngine::new(config);
//! engine.ingest_trajectories_until(&db, 4);
//! let update = engine.ingest_trajectories(&db);
//! assert_eq!(update.new_closed_crowds, 1);
//! assert_eq!(engine.gatherings().len(), 1);
//! ```

use gpdt_clustering::{ClusterDatabase, StreamingClusterer};
use gpdt_trajectory::{TimeInterval, Timestamp, TrajectoryDatabase};

use crate::crowd::{Crowd, CrowdDiscovery};
use crate::gathering::{detect_closed_gatherings, Gathering, TadVariant};
use crate::incremental::update_gatherings;
use crate::par::{default_threads, par_map};
use crate::params::GatheringConfig;
use crate::pipeline::DiscoveryResult;
use crate::range_search::RangeSearchStrategy;

/// One closed crowd together with its closed gatherings.
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdRecord {
    /// The closed crowd.
    pub crowd: Crowd,
    /// The closed gatherings detected within it.
    pub gatherings: Vec<Gathering>,
}

/// Summary of one engine ingestion step.
#[derive(Debug, Clone, Default)]
pub struct EngineUpdate {
    /// Closed crowds that became final during this update (including old
    /// frontier sequences that could not be extended).
    pub new_closed_crowds: usize,
    /// How many of those were extensions of sequences saved in the frontier
    /// of the previous database state.
    pub extended_from_frontier: usize,
    /// Gatherings detected in the newly closed crowds.
    pub new_gatherings: usize,
}

impl EngineUpdate {
    fn merge(&mut self, other: EngineUpdate) {
        self.new_closed_crowds += other.new_closed_crowds;
        self.extended_from_frontier += other.extended_from_frontier;
        self.new_gatherings += other.new_gatherings;
    }
}

/// How long the engine keeps old snapshot clusters in memory.
///
/// Crowd discovery only ever revisits the ticks referenced by its open
/// frontier sequences (for gathering detection once they close) plus the
/// trailing `kc` window; every older tick is dead weight once the crowds
/// spanning it have finalized.  [`RetentionPolicy::Bounded`] evicts those
/// ticks, keeping the resident cluster database proportional to the crowd
/// lifetimes instead of the stream length.  Eviction is deferred by one
/// ingest step so callers (e.g. a durable store mirroring
/// [`GatheringEngine::finalized_records`]) can still resolve the clusters of
/// records finalized by the previous batch.
///
/// The policy never changes discovery output — only which historical ticks
/// remain addressable through [`GatheringEngine::cluster_database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Keep every ingested tick (the default; required when the full history
    /// must stay queryable through the engine itself).
    #[default]
    KeepAll,
    /// Evict ticks older than the last `kc` once no frontier sequence
    /// references them.
    Bounded,
}

/// A point-in-time snapshot of the engine's internal load, for observability
/// (mirrored by the `gpdt-store` monitor service's stats surface).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Ticks ingested since this engine value was constructed (or restored).
    pub ticks_ingested: u64,
    /// Ticks currently resident in the cluster database (equals
    /// `ticks_ingested` under [`RetentionPolicy::KeepAll`], bounded under
    /// [`RetentionPolicy::Bounded`]).
    pub resident_ticks: usize,
    /// Snapshot clusters currently resident.
    pub resident_clusters: usize,
    /// Open frontier sequences (crowd candidates ending at the last tick).
    pub open_sequences: usize,
    /// Finalized crowd records accumulated so far.
    pub finalized_records: usize,
    /// Closed gatherings inside the finalized records.
    pub finalized_gatherings: usize,
}

impl gpdt_obs::MetricSource for EngineStats {
    fn metric_prefix(&self) -> &'static str {
        "engine"
    }
    fn metric_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("ticks_ingested", self.ticks_ingested),
            ("resident_ticks", self.resident_ticks as u64),
            ("resident_clusters", self.resident_clusters as u64),
            ("open_sequences", self.open_sequences as u64),
            ("finalized_records", self.finalized_records as u64),
            ("finalized_gatherings", self.finalized_gatherings as u64),
        ]
    }
}

/// Streaming discovery engine maintaining closed crowds and gatherings over
/// an ever-growing trajectory/cluster history.
///
/// See the [module documentation](self) for the data flow and a usage
/// example.
#[derive(Debug, Clone)]
pub struct GatheringEngine {
    config: GatheringConfig,
    strategy: RangeSearchStrategy,
    variant: TadVariant,
    threads: usize,
    retention: RetentionPolicy,
    ticks_ingested: u64,
    clusterer: StreamingClusterer,
    cdb: ClusterDatabase,
    /// Closed crowds (with their gatherings) whose last cluster is strictly
    /// before the current frontier time — they can never change again.
    finalized: Vec<CrowdRecord>,
    /// Cluster sequences ending at the last ingested timestamp (the paper's
    /// `CS`), kept for extension; for those that are already closed crowds we
    /// cache their gatherings so the Theorem 2 update can reuse them.
    frontier: Vec<(Crowd, Vec<Gathering>)>,
}

impl GatheringEngine {
    /// Creates an empty engine with the default (fastest) algorithm choices:
    /// grid-index range search, TAD\* detection, all available cores.
    pub fn new(config: GatheringConfig) -> Self {
        let threads = default_threads();
        GatheringEngine {
            config,
            strategy: RangeSearchStrategy::Grid,
            variant: TadVariant::TadStar,
            threads,
            retention: RetentionPolicy::KeepAll,
            ticks_ingested: 0,
            clusterer: StreamingClusterer::new(config.clustering).with_threads(threads),
            cdb: ClusterDatabase::new(),
            finalized: Vec::new(),
            frontier: Vec::new(),
        }
    }

    /// Overrides the crowd-discovery range-search strategy.
    pub fn with_strategy(mut self, strategy: RangeSearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the gathering-detection algorithm.
    pub fn with_variant(mut self, variant: TadVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Overrides the worker-thread count for the parallel stages (snapshot
    /// clustering, per-tick index construction, per-crowd gathering
    /// detection).  Clamped to at least 1; never changes the results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.clusterer = self.clusterer.with_threads(self.threads);
        self
    }

    /// Overrides the cluster-database retention policy (see
    /// [`RetentionPolicy`]).  A host choice like the thread count: it never
    /// changes discovery output and is not part of a checkpoint.
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }

    /// The engine configuration.
    pub fn config(&self) -> &GatheringConfig {
        &self.config
    }

    /// The configured retention policy.
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the engine's internal load.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            ticks_ingested: self.ticks_ingested,
            resident_ticks: self.cdb.len(),
            resident_clusters: self.cdb.total_clusters(),
            open_sequences: self.frontier.len(),
            finalized_records: self.finalized.len(),
            finalized_gatherings: self.finalized.iter().map(|r| r.gatherings.len()).sum(),
        }
    }

    /// Evicts every cluster set no future discovery step can touch: ticks
    /// older than both the trailing `kc` window and the earliest tick any
    /// frontier sequence references.  Returns the number of evicted ticks.
    ///
    /// Called automatically (one ingest step deferred) under
    /// [`RetentionPolicy::Bounded`]; safe to call manually at any time —
    /// discovery output is unaffected, only
    /// [`Self::cluster_database`] lookups for evicted ticks start returning
    /// `None`.
    pub fn evict_retired_clusters(&mut self) -> usize {
        let Some(domain) = self.cdb.time_domain() else {
            return 0;
        };
        // `kc >= 1` (validated), so the horizon never passes the last tick
        // and the database never empties from under the frontier.
        let horizon = (domain.end + 1).saturating_sub(self.config.crowd.kc);
        let keep_from = self
            .frontier
            .iter()
            .map(|(c, _)| c.start_time())
            .min()
            .map_or(horizon, |f| f.min(horizon));
        self.cdb.evict_before(keep_from)
    }

    /// The configured range-search strategy.
    pub fn strategy(&self) -> RangeSearchStrategy {
        self.strategy
    }

    /// The configured detection variant.
    pub fn variant(&self) -> TadVariant {
        self.variant
    }

    /// The accumulated snapshot-cluster database.
    pub fn cluster_database(&self) -> &ClusterDatabase {
        &self.cdb
    }

    /// The finalized crowd records, in discovery order: closed crowds (with
    /// their gatherings) whose last cluster is strictly before the frontier
    /// time, so they can never change again.
    ///
    /// This is the stable part of the engine state: entries are only ever
    /// appended, never mutated, which makes the slice the natural feed for a
    /// durable pattern store (see the `gpdt-store` crate).
    pub fn finalized_records(&self) -> &[CrowdRecord] {
        &self.finalized
    }

    /// Removes and returns the finalized crowd records accumulated so far.
    ///
    /// Discovery only ever reads the cluster database and the frontier, so
    /// draining is invisible to future ingests.  It is the memory-bounding
    /// counterpart of [`Self::finalized_records`]: an out-of-core driver
    /// moves each batch's finalized records into a durable store *before*
    /// the next ingest evicts the cluster ticks they reference, and the
    /// engine stops retaining the (unbounded) record history in RAM.
    /// Aggregate accessors such as [`Self::closed_crowds`] subsequently
    /// cover only the records still held; the caller owns the full history.
    pub fn drain_finalized(&mut self) -> Vec<CrowdRecord> {
        std::mem::take(&mut self.finalized)
    }

    /// The extension frontier (the paper's `CS`): every cluster sequence
    /// ending at the last ingested timestamp, paired with its cached
    /// gatherings (empty for sequences still shorter than `kc`).
    ///
    /// Together with [`Self::finalized_records`], the configuration and the
    /// cluster database this is the complete discovery state; `gpdt-store`
    /// serialises it so a stream can resume after a crash.
    pub fn frontier(&self) -> &[(Crowd, Vec<Gathering>)] {
        &self.frontier
    }

    /// Reassembles an engine from externally persisted state (the restore
    /// half of the `gpdt-store` checkpoint hooks).
    ///
    /// The caller must pass back exactly what the accessors of a previous
    /// engine exposed: the configuration, algorithm choices, accumulated
    /// cluster database, finalized records and frontier.  The streaming
    /// clusterer is reconstructed from the configuration with its cursor
    /// aligned to the end of `cdb` (its scratch state is a cache and never
    /// affects results).  Thread count resets to the machine default; chain
    /// [`Self::with_threads`] to override.
    pub fn from_parts(
        config: GatheringConfig,
        strategy: RangeSearchStrategy,
        variant: TadVariant,
        cdb: ClusterDatabase,
        finalized: Vec<CrowdRecord>,
        frontier: Vec<(Crowd, Vec<Gathering>)>,
    ) -> Self {
        let threads = default_threads();
        let mut clusterer = StreamingClusterer::new(config.clustering).with_threads(threads);
        if let Some(domain) = cdb.time_domain() {
            clusterer.seek(domain.end + 1);
        }
        debug_assert!(
            frontier
                .iter()
                .all(|(c, _)| Some(c.end_time()) == cdb.time_domain().map(|d| d.end)),
            "frontier sequences must end at the last ingested timestamp"
        );
        GatheringEngine {
            config,
            strategy,
            variant,
            threads,
            retention: RetentionPolicy::KeepAll,
            ticks_ingested: 0,
            clusterer,
            cdb,
            finalized,
            frontier,
        }
    }

    /// The time interval ingested so far, or `None` before the first batch.
    pub fn time_domain(&self) -> Option<TimeInterval> {
        self.cdb.time_domain()
    }

    /// Clusters and ingests every not-yet-seen snapshot of `db`.
    ///
    /// The trajectory database may grow between calls; each call picks up
    /// exactly the timestamps appended since the previous one.  Snapshots are
    /// clustered in parallel across timestamps before the incremental
    /// discovery step runs.
    pub fn ingest_trajectories(&mut self, db: &TrajectoryDatabase) -> EngineUpdate {
        let Some(domain) = db.time_domain() else {
            return EngineUpdate::default();
        };
        self.ingest_trajectories_until(db, domain.end)
    }

    /// Like [`ingest_trajectories`](Self::ingest_trajectories) but stops at
    /// timestamp `end` (inclusive), so a long history can be replayed in
    /// controlled slices.
    pub fn ingest_trajectories_until(
        &mut self,
        db: &TrajectoryDatabase,
        end: Timestamp,
    ) -> EngineUpdate {
        // Keep the clustering cursor aligned with the ingested history even
        // if the caller interleaved direct cluster batches.
        if let Some(domain) = self.cdb.time_domain() {
            self.clusterer.seek(domain.end + 1);
        }
        let batch = {
            let _span = gpdt_obs::span!("engine.dbscan");
            self.clusterer.advance_until(db, end)
        };
        self.ingest_clusters(batch)
    }

    /// Ingests the next batch of snapshot clusters.
    ///
    /// The batch must start exactly one tick after the data ingested so far
    /// (or may be the first batch).  Returns a summary of what changed.
    pub fn ingest_clusters(&mut self, batch: ClusterDatabase) -> EngineUpdate {
        self.ingest_clusters_observed(batch, None)
    }

    /// Like [`Self::ingest_clusters`], additionally invoking `observer` after
    /// every processed tick `t` with the complete crowd-candidate set ending
    /// at `t` (see
    /// [`CrowdDiscovery::run_resumed_observed`]).
    ///
    /// The observer is a pure tap for cross-engine coordination (the
    /// `gpdt-shard` merger records boundary-adjacent candidates through it);
    /// results are identical to the unobserved ingest.
    pub fn ingest_clusters_observed(
        &mut self,
        batch: ClusterDatabase,
        observer: Option<&mut dyn FnMut(Timestamp, &[Crowd])>,
    ) -> EngineUpdate {
        if batch.is_empty() {
            return EngineUpdate::default();
        }
        // Deferred retention: evict what the *previous* batch retired, so the
        // records it finalized stayed resolvable until now.
        if self.retention == RetentionPolicy::Bounded {
            self.evict_retired_clusters();
        }
        self.ticks_ingested += u64::from(batch.time_domain().expect("non-empty batch").len());
        let resume_at: Timestamp = batch.time_domain().expect("non-empty batch").start;
        match self.cdb.time_domain() {
            None => self.cdb = batch,
            Some(_) => self.cdb.append(batch),
        }

        // Resume Algorithm 1 from the saved frontier (Lemma 4: nothing else
        // can be extended).
        let seeds: Vec<Crowd> = self.frontier.iter().map(|(c, _)| c.clone()).collect();
        let old_frontier = std::mem::take(&mut self.frontier);
        let discovery =
            CrowdDiscovery::new(self.config.crowd, self.strategy).with_threads(self.threads);
        let result = {
            let _span = gpdt_obs::span!("engine.sweep");
            discovery.run_resumed_observed(&self.cdb, resume_at, seeds, observer)
        };
        let end = self.cdb.time_domain().expect("non-empty").end;

        // Closed crowds reported by the resumed run are final unless they end
        // at the new frontier time (then they stay extendable).  The frontier
        // sequences that are not closed crowds are all still shorter than kc
        // (the sweep reports every end-of-domain candidate with lifetime >= kc
        // as closed), so they carry no gatherings yet.
        let closed = result.closed_crowds;
        let leftovers: Vec<Crowd> = result
            .frontier
            .into_iter()
            .filter(|c| !closed.contains(c))
            .collect();
        debug_assert!(
            leftovers
                .iter()
                .all(|c| c.lifetime() < self.config.crowd.kc),
            "a frontier sequence long enough to be a crowd must be in the closed set"
        );

        // Per-crowd gathering detection is independent across crowds: fan it
        // out, preserving order.  Extensions of old frontier crowds reuse the
        // prefix gatherings via the Theorem 2 update.
        let closed_gatherings: Vec<Vec<Gathering>> = {
            let _span = gpdt_obs::span!("engine.gathering");
            par_map(&closed, self.threads, |crowd| {
                self.detect_for(crowd, &old_frontier)
            })
        };
        let leftover_gatherings = vec![Vec::new(); leftovers.len()];

        let mut update = EngineUpdate::default();
        for (crowd, gatherings) in closed.into_iter().zip(closed_gatherings) {
            update.merge(EngineUpdate {
                new_closed_crowds: 1,
                extended_from_frontier: usize::from(
                    old_frontier
                        .iter()
                        .any(|(old, _)| old.len() < crowd.len() && old.is_window_of(&crowd)),
                ),
                new_gatherings: gatherings.len(),
            });
            if crowd.end_time() < end {
                self.finalized.push(CrowdRecord { crowd, gatherings });
            } else {
                self.frontier.push((crowd, gatherings));
            }
        }
        self.frontier
            .extend(leftovers.into_iter().zip(leftover_gatherings));
        update
    }

    /// Detects the closed gatherings of one crowd, reusing the cached
    /// gatherings of the longest old frontier crowd it extends (Theorem 2);
    /// falls back to a from-scratch Test-and-Divide otherwise.
    fn detect_for(
        &self,
        crowd: &Crowd,
        old_frontier: &[(Crowd, Vec<Gathering>)],
    ) -> Vec<Gathering> {
        let best_prefix = old_frontier
            .iter()
            .filter(|(old, _)| {
                old.len() <= crowd.len() && old.cluster_ids() == &crowd.cluster_ids()[..old.len()]
            })
            .max_by_key(|(old, _)| old.len());
        match best_prefix {
            Some((old, old_gatherings)) if old.lifetime() >= self.config.crowd.kc => {
                update_gatherings(
                    crowd,
                    &self.cdb,
                    old.len(),
                    old_gatherings,
                    &self.config.gathering,
                    self.config.crowd.kc,
                    self.variant,
                )
            }
            _ => detect_closed_gatherings(
                crowd,
                &self.cdb,
                &self.config.gathering,
                self.config.crowd.kc,
                self.variant,
            ),
        }
    }

    /// All currently known closed crowds, in canonical order: the finalized
    /// ones plus frontier sequences that are long enough (they are closed
    /// *with respect to the data seen so far*).
    pub fn closed_crowds(&self) -> Vec<Crowd> {
        let mut crowds: Vec<Crowd> = self.finalized.iter().map(|r| r.crowd.clone()).collect();
        crowds.extend(
            self.frontier
                .iter()
                .filter(|(c, _)| c.lifetime() >= self.config.crowd.kc)
                .map(|(c, _)| c.clone()),
        );
        crowds.sort_by(Self::crowd_order);
        crowds
    }

    /// All currently known closed gatherings, in canonical order.
    pub fn gatherings(&self) -> Vec<Gathering> {
        let mut out: Vec<Gathering> = self
            .finalized
            .iter()
            .flat_map(|r| r.gatherings.iter().cloned())
            .collect();
        out.extend(
            self.frontier
                .iter()
                .filter(|(c, _)| c.lifetime() >= self.config.crowd.kc)
                .flat_map(|(_, gs)| gs.iter().cloned()),
        );
        out.sort_by(|a, b| {
            Self::crowd_order(a.crowd(), b.crowd())
                .then_with(|| a.participators().cmp(b.participators()))
        });
        out
    }

    /// The canonical crowd ordering used by the accessors (see
    /// [`canonical_crowd_order`]).
    fn crowd_order(a: &Crowd, b: &Crowd) -> std::cmp::Ordering {
        canonical_crowd_order(a, b)
    }

    /// Consumes the engine and packages its current state as a
    /// [`DiscoveryResult`] (the batch-pipeline output type).
    ///
    /// Equivalent to collecting [`Self::closed_crowds`] and
    /// [`Self::gatherings`], but drains the engine state instead of cloning
    /// it.
    pub fn finish(self) -> DiscoveryResult {
        let kc = self.config.crowd.kc;
        let mut crowds: Vec<Crowd> = Vec::with_capacity(self.finalized.len());
        let mut gatherings: Vec<Gathering> = Vec::new();
        for record in self.finalized {
            crowds.push(record.crowd);
            gatherings.extend(record.gatherings);
        }
        for (crowd, crowd_gatherings) in self.frontier {
            if crowd.lifetime() >= kc {
                crowds.push(crowd);
                gatherings.extend(crowd_gatherings);
            }
        }
        crowds.sort_by(Self::crowd_order);
        gatherings.sort_by(|a, b| {
            Self::crowd_order(a.crowd(), b.crowd())
                .then_with(|| a.participators().cmp(b.participators()))
        });
        DiscoveryResult {
            clusters: self.cdb,
            crowds,
            gatherings,
        }
    }
}

/// The canonical crowd ordering every accessor of this crate sorts by: time
/// interval first, then the referenced cluster sequence.  Total for any set
/// of crowds discovered over one cluster database, so output order never
/// depends on batch slicing, thread count — or, for a sharded deployment,
/// on which shard discovered the crowd.
pub fn canonical_crowd_order(a: &Crowd, b: &Crowd) -> std::cmp::Ordering {
    a.start_time()
        .cmp(&b.start_time())
        .then(a.end_time().cmp(&b.end_time()))
        .then_with(|| a.cluster_ids().cmp(b.cluster_ids()))
}

/// The canonical gathering ordering: by host crowd, then participator set.
pub fn canonical_gathering_order(a: &Gathering, b: &Gathering) -> std::cmp::Ordering {
    canonical_crowd_order(a.crowd(), b.crowd())
        .then_with(|| a.participators().cmp(b.participators()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CrowdParams, GatheringParams};
    use gpdt_clustering::{ClusteringParams, SnapshotCluster, SnapshotClusterSet};
    use gpdt_geo::Point;
    use gpdt_trajectory::{ObjectId, Trajectory};

    fn config(kc: u32) -> GatheringConfig {
        GatheringConfig {
            clustering: ClusteringParams::new(60.0, 3),
            crowd: CrowdParams::new(3, kc, 100.0),
            gathering: GatheringParams::new(3, 3),
        }
    }

    fn lingering_db(objects: u32, duration: u32) -> TrajectoryDatabase {
        TrajectoryDatabase::from_trajectories((0..objects).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..duration)
                    .map(|t| (t, (i as f64 * 10.0, t as f64 * 2.0)))
                    .collect::<Vec<_>>(),
            )
        }))
    }

    fn membership_cdb(start: Timestamp, memberships: &[&[u32]]) -> ClusterDatabase {
        let sets: Vec<SnapshotClusterSet> = memberships
            .iter()
            .enumerate()
            .map(|(i, ids)| {
                let t = start + i as u32;
                SnapshotClusterSet {
                    time: t,
                    clusters: vec![SnapshotCluster::new(
                        t,
                        ids.iter().map(|&i| ObjectId::new(i)).collect(),
                        ids.iter()
                            .enumerate()
                            .map(|(k, _)| Point::new(k as f64, 0.0))
                            .collect(),
                    )],
                }
            })
            .collect();
        ClusterDatabase::from_sets(sets)
    }

    #[test]
    fn trajectory_streaming_matches_cluster_streaming() {
        let db = lingering_db(5, 10);
        let mut by_trajectory = GatheringEngine::new(config(4));
        by_trajectory.ingest_trajectories_until(&db, 3);
        by_trajectory.ingest_trajectories(&db);

        let mut by_clusters = GatheringEngine::new(config(4));
        let full = ClusterDatabase::build(&db, &config(4).clustering);
        by_clusters.ingest_clusters(full);

        assert_eq!(by_trajectory.closed_crowds(), by_clusters.closed_crowds());
        assert_eq!(by_trajectory.gatherings(), by_clusters.gatherings());
        assert_eq!(by_trajectory.time_domain(), by_clusters.time_domain());
    }

    #[test]
    fn single_batch_and_per_tick_ingestion_agree() {
        let memberships: Vec<&[u32]> = vec![
            &[1, 2, 3],
            &[1, 2, 3, 4],
            &[2, 3, 4],
            &[9, 8, 7],
            &[1, 2, 3],
            &[1, 2, 3],
            &[1, 2, 3],
            &[4, 5, 6],
            &[4, 5, 6],
            &[4, 5, 6],
        ];
        let mut whole = GatheringEngine::new(config(3));
        whole.ingest_clusters(membership_cdb(0, &memberships));

        let mut ticked = GatheringEngine::new(config(3));
        for (i, m) in memberships.iter().enumerate() {
            ticked.ingest_clusters(membership_cdb(i as u32, &[m]));
        }

        assert_eq!(whole.closed_crowds(), ticked.closed_crowds());
        assert_eq!(whole.gatherings(), ticked.gatherings());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let db = lingering_db(6, 12);
        let reference = {
            let mut e = GatheringEngine::new(config(4)).with_threads(1);
            e.ingest_trajectories(&db);
            (e.closed_crowds(), e.gatherings())
        };
        for threads in [2, 4, 16] {
            let mut e = GatheringEngine::new(config(4)).with_threads(threads);
            e.ingest_trajectories(&db);
            assert_eq!(e.closed_crowds(), reference.0, "{threads} threads");
            assert_eq!(e.gatherings(), reference.1, "{threads} threads");
        }
    }

    #[test]
    fn update_counters_track_frontier_extensions() {
        let first: Vec<&[u32]> = vec![&[1, 2, 3]; 4];
        let mut engine = GatheringEngine::new(config(3));
        let update1 = engine.ingest_clusters(membership_cdb(0, &first));
        assert_eq!(update1.new_closed_crowds, 1);
        assert_eq!(update1.extended_from_frontier, 0);

        let second: Vec<&[u32]> = vec![&[1, 2, 3]; 3];
        let update2 = engine.ingest_clusters(membership_cdb(4, &second));
        assert_eq!(update2.new_closed_crowds, 1);
        assert_eq!(update2.extended_from_frontier, 1);
        let crowds = engine.closed_crowds();
        assert_eq!(crowds.len(), 1);
        assert_eq!(crowds[0].lifetime(), 7);
    }

    #[test]
    fn empty_ingest_is_a_no_op() {
        let mut engine = GatheringEngine::new(config(3));
        let update = engine.ingest_clusters(ClusterDatabase::new());
        assert_eq!(update.new_closed_crowds, 0);
        assert!(engine.closed_crowds().is_empty());
        assert!(engine.time_domain().is_none());
        let update = engine.ingest_trajectories(&TrajectoryDatabase::new());
        assert_eq!(update.new_closed_crowds, 0);
    }

    #[test]
    fn bounded_retention_keeps_output_and_bounds_residency() {
        // Blobs linger for 5 ticks, scatter for 3, repeat: frontier resets
        // regularly, so bounded retention can reclaim nearly everything.
        let cycles = 12u32;
        let mut trajectories: Vec<(u32, Vec<(u32, (f64, f64))>)> =
            (0..5u32).map(|i| (i, Vec::new())).collect();
        for cycle in 0..cycles {
            for t in 0..8u32 {
                let tick = cycle * 8 + t;
                for (i, points) in trajectories.iter_mut() {
                    let x = if t < 5 {
                        f64::from(*i) * 10.0
                    } else {
                        // Scattered: pairwise distances far exceed eps.
                        f64::from(*i) * 10_000.0 + f64::from(tick)
                    };
                    points.push((tick, (x, f64::from(cycle) * 7.0)));
                }
            }
        }
        let db = TrajectoryDatabase::from_trajectories(
            trajectories
                .into_iter()
                .map(|(i, pts)| Trajectory::from_points(ObjectId::new(i), pts)),
        );

        let mut keep_all = GatheringEngine::new(config(3));
        let mut bounded = GatheringEngine::new(config(3)).with_retention(RetentionPolicy::Bounded);
        let domain = db.time_domain().unwrap();
        let mut max_resident = 0;
        for t in domain.iter() {
            keep_all.ingest_trajectories_until(&db, t);
            bounded.ingest_trajectories_until(&db, t);
            max_resident = max_resident.max(bounded.cluster_database().len());
        }
        // Output is identical; residency stays bounded by the crowd span
        // (5-tick crowds + kc trailing window + one deferred batch), far
        // below the 96-tick stream.
        assert_eq!(bounded.closed_crowds(), keep_all.closed_crowds());
        assert_eq!(bounded.gatherings(), keep_all.gatherings());
        assert_eq!(keep_all.cluster_database().len(), 8 * cycles as usize);
        assert!(
            max_resident <= 10,
            "bounded retention kept {max_resident} ticks resident"
        );
        let stats = bounded.stats();
        assert_eq!(stats.ticks_ingested, u64::from(8 * cycles));
        assert!(stats.resident_ticks <= 10);
        assert_eq!(stats.finalized_records, keep_all.finalized_records().len());
    }

    #[test]
    fn finish_packages_the_streamed_state() {
        let db = lingering_db(5, 8);
        let mut engine = GatheringEngine::new(config(4));
        engine.ingest_trajectories_until(&db, 2);
        engine.ingest_trajectories(&db);
        let crowds = engine.closed_crowds();
        let gatherings = engine.gatherings();
        let result = engine.finish();
        assert_eq!(result.crowds, crowds);
        assert_eq!(result.gatherings, gatherings);
        assert_eq!(result.clusters.len(), 8);
    }
}
