//! High-level discovery pipeline: trajectories → snapshot clusters → closed
//! crowds → closed gatherings.
//!
//! The pipeline is a thin batch façade over the streaming
//! [`GatheringEngine`]: a batch run is simply
//! the one-big-batch special case of the streaming ingestion, so both paths
//! share a single implementation of crowd discovery and gathering detection.

use gpdt_clustering::ClusterDatabase;
use gpdt_trajectory::TrajectoryDatabase;

use crate::crowd::Crowd;
use crate::engine::GatheringEngine;
use crate::gathering::{Gathering, TadVariant};
use crate::params::GatheringConfig;
use crate::range_search::RangeSearchStrategy;

/// The full output of one discovery run.
#[derive(Debug, Clone)]
pub struct DiscoveryResult {
    /// The snapshot-cluster database produced by the clustering phase.
    pub clusters: ClusterDatabase,
    /// All closed crowds.
    pub crowds: Vec<Crowd>,
    /// All closed gatherings, across all crowds, ordered by start time.
    pub gatherings: Vec<Gathering>,
}

impl DiscoveryResult {
    /// Number of closed crowds.
    pub fn crowd_count(&self) -> usize {
        self.crowds.len()
    }

    /// Number of closed gatherings.
    pub fn gathering_count(&self) -> usize {
        self.gatherings.len()
    }
}

/// The end-to-end gathering-discovery pipeline.
///
/// Wraps the three phases of §III with a single configuration object.  The
/// range-search strategy defaults to the grid index and the detection
/// algorithm to TAD\* (the paper's fastest combination); both can be
/// overridden for experimentation.
#[derive(Debug, Clone, Copy)]
pub struct GatheringPipeline {
    config: GatheringConfig,
    strategy: RangeSearchStrategy,
    variant: TadVariant,
}

impl GatheringPipeline {
    /// Creates a pipeline with the default (fastest) algorithm choices.
    pub fn new(config: GatheringConfig) -> Self {
        GatheringPipeline {
            config,
            strategy: RangeSearchStrategy::Grid,
            variant: TadVariant::TadStar,
        }
    }

    /// Overrides the crowd-discovery range-search strategy.
    pub fn with_strategy(mut self, strategy: RangeSearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the gathering-detection algorithm.
    pub fn with_variant(mut self, variant: TadVariant) -> Self {
        self.variant = variant;
        self
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &GatheringConfig {
        &self.config
    }

    /// A fresh streaming engine configured like this pipeline.
    ///
    /// Use this to keep ingesting data after an initial batch run, or to feed
    /// the history in slices; [`Self::discover`] is equivalent to ingesting
    /// everything into this engine at once.
    pub fn engine(&self) -> GatheringEngine {
        GatheringEngine::new(self.config)
            .with_strategy(self.strategy)
            .with_variant(self.variant)
    }

    /// Runs the full pipeline on a trajectory database.
    pub fn discover(&self, db: &TrajectoryDatabase) -> DiscoveryResult {
        let mut engine = self.engine();
        engine.ingest_trajectories(db);
        engine.finish()
    }

    /// Runs crowd discovery and gathering detection on a pre-built snapshot
    /// cluster database (skipping the clustering phase).
    pub fn discover_from_clusters(&self, clusters: ClusterDatabase) -> DiscoveryResult {
        let mut engine = self.engine();
        engine.ingest_clusters(clusters);
        engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CrowdParams, GatheringParams};
    use gpdt_clustering::ClusteringParams;
    use gpdt_trajectory::{ObjectId, Trajectory};

    /// Ten objects linger around a venue for 12 ticks while five other
    /// objects drive through without stopping.
    fn venue_scene() -> TrajectoryDatabase {
        let mut trajectories = Vec::new();
        for i in 0..10u32 {
            let x = 100.0 + (i % 5) as f64 * 8.0;
            let y = 200.0 + (i / 5) as f64 * 8.0;
            let samples: Vec<(u32, (f64, f64))> =
                (0..12u32).map(|t| (t, (x + (t as f64 * 0.5), y))).collect();
            trajectories.push(Trajectory::from_points(ObjectId::new(i), samples));
        }
        // Pass-through traffic: fast movers that never linger.
        for i in 10..15u32 {
            let samples: Vec<(u32, (f64, f64))> = (0..12u32)
                .map(|t| (t, (t as f64 * 400.0, 3_000.0 + i as f64 * 500.0)))
                .collect();
            trajectories.push(Trajectory::from_points(ObjectId::new(i), samples));
        }
        TrajectoryDatabase::from_trajectories(trajectories)
    }

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(30.0, 4))
            .crowd(CrowdParams::new(5, 6, 60.0))
            .gathering(GatheringParams::new(5, 6))
            .build()
            .unwrap()
    }

    #[test]
    fn pipeline_finds_the_planted_gathering() {
        let db = venue_scene();
        let result = GatheringPipeline::new(config()).discover(&db);
        assert_eq!(result.crowd_count(), 1);
        assert_eq!(result.gathering_count(), 1);
        let g = &result.gatherings[0];
        assert_eq!(g.lifetime(), 12);
        assert_eq!(g.participators().len(), 10);
        // Pass-through objects never participate.
        for i in 10..15u32 {
            assert!(!g.participators().contains(&ObjectId::new(i)));
        }
    }

    #[test]
    fn strategy_and_variant_choices_do_not_change_results() {
        let db = venue_scene();
        let reference = GatheringPipeline::new(config()).discover(&db);
        for strategy in RangeSearchStrategy::ALL {
            for variant in TadVariant::ALL {
                let result = GatheringPipeline::new(config())
                    .with_strategy(strategy)
                    .with_variant(variant)
                    .discover(&db);
                assert_eq!(result.crowds, reference.crowds, "{strategy}/{variant}");
                assert_eq!(
                    result.gatherings, reference.gatherings,
                    "{strategy}/{variant}"
                );
            }
        }
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let result = GatheringPipeline::new(config()).discover(&TrajectoryDatabase::new());
        assert_eq!(result.crowd_count(), 0);
        assert_eq!(result.gathering_count(), 0);
        assert!(result.clusters.is_empty());
    }

    #[test]
    fn config_accessor_round_trips() {
        let c = config();
        let pipeline = GatheringPipeline::new(c);
        assert_eq!(pipeline.config(), &c);
    }
}
