//! Minimal scoped-thread fan-out used by the engine's hot paths (and by the
//! `gpdt-shard` merge's gathering-detection stage).
//!
//! The discovery engine parallelises two embarrassingly parallel loops:
//! per-tick [`TickSearcher`](crate::range_search::TickSearcher) construction
//! and per-crowd gathering detection.  Both need an order-preserving parallel
//! map over a slice; `std::thread::scope` keeps this dependency-free, in the
//! same style as `ClusterDatabase::build_parallel`.

use std::num::NonZeroUsize;

/// The default worker count: the machine's available parallelism.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Order-preserving parallel map: `out[i] = f(&items[i])`.
///
/// Falls back to a plain sequential map when a single thread is requested or
/// there is at most one item, so callers never pay spawn overhead for tiny
/// inputs.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), item| f(item))
}

/// Order-preserving parallel map with per-worker state:
/// `out[i] = f(&mut state, &items[i])`, where each worker thread creates one
/// `state` with `init` and reuses it across all items of its chunk.
///
/// This is the scratch-arena hook of the engine's fan-out stages: a worker
/// building one search index per tick keeps a single reusable buffer set for
/// its whole chunk instead of allocating per tick.  The state must never
/// influence results (it is a cache/buffer), which keeps the output
/// independent of the thread count.
pub fn par_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                let mut state = init();
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(&mut state, item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(par_map(&items, threads, |&x| x * x), expected);
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert_eq!(par_map::<u32, u32, _>(&[], 4, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn stateful_map_preserves_order_and_reuses_state() {
        let items: Vec<u64> = (0..57).collect();
        let expected: Vec<u64> = items.iter().map(|x| x + 1).collect();
        for threads in [1, 2, 5, 100] {
            // The per-worker state is a reused buffer; results must not
            // depend on how it is shared across items.
            let got = par_map_with(&items, threads, Vec::<u64>::new, |buf, &x| {
                buf.push(x);
                x + 1
            });
            assert_eq!(got, expected, "{threads} threads");
        }
    }
}
