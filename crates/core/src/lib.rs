//! Discovery of gathering patterns from trajectories.
//!
//! This crate implements the primary contribution of *"On Discovery of
//! Gathering Patterns from Trajectories"* (Zheng et al., ICDE 2013):
//!
//! * [`params`] — the parameter sets of the problem statement
//!   (`mc`, `kc`, `δ` for crowds; `mp`, `kp` for gatherings) with validation.
//! * [`crowd`] — the [`Crowd`] pattern and **Algorithm 1**, the closed-crowd
//!   discovery sweep over the snapshot-cluster database.
//! * [`range_search`] — the pluggable range-search strategies used by
//!   Algorithm 1: brute force, R-tree with `dmin` (SR), R-tree with `dside`
//!   (IR) and the grid index (GRID).
//! * [`bvs`] — bit-vector signatures and the word-parallel population-count
//!   kernel used by TAD\* (re-exported from `gpdt-geo`, where the type lives
//!   so lower layers can share it).
//! * [`gathering`] — the [`Gathering`] pattern, participator computation and
//!   the three detection algorithms (brute force, TAD, TAD\*).
//! * [`engine`] — the streaming [`GatheringEngine`], the single
//!   implementation of discovery: it ingests trajectory/cluster data
//!   tick-by-tick (or in arbitrary batches) and maintains closed crowds and
//!   gatherings incrementally, parallelising snapshot clustering, per-tick
//!   index construction and per-crowd gathering detection.
//! * [`incremental`] — the Theorem 2 gathering-update primitive
//!   ([`update_gatherings`](incremental::update_gatherings)) and a stateful
//!   batch-ingestion façade over the engine.
//! * [`pipeline`] — the batch façade: one-big-batch streaming, i.e. snapshot
//!   clustering, crowd discovery and gathering detection in one call.
//!
//! The typical batch entry point is [`GatheringPipeline`]; for continuously
//! arriving data use [`GatheringEngine`] directly:
//!
//! ```
//! use gpdt_core::{ClusteringParams, CrowdParams, GatheringConfig, GatheringParams,
//!                 GatheringPipeline};
//! use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};
//!
//! // Five objects stay together for six ticks: one crowd, one gathering.
//! let db = TrajectoryDatabase::from_trajectories((0..5u32).map(|i| {
//!     Trajectory::from_points(
//!         ObjectId::new(i),
//!         (0..6u32).map(|t| (t, (i as f64 * 10.0, t as f64))).collect::<Vec<_>>(),
//!     )
//! }));
//!
//! let config = GatheringConfig::builder()
//!     .clustering(ClusteringParams::new(60.0, 3))
//!     .crowd(CrowdParams::new(4, 4, 100.0))
//!     .gathering(GatheringParams::new(3, 3))
//!     .build()
//!     .unwrap();
//!
//! let result = GatheringPipeline::new(config).discover(&db);
//! assert_eq!(result.gatherings.len(), 1);
//! ```

pub mod crowd;
pub mod engine;
pub mod gathering;
pub mod incremental;
pub mod par;
pub mod params;
pub mod pipeline;
pub mod range_search;

pub use crowd::{discover_closed_crowds, Crowd, CrowdDiscovery, CrowdDiscoveryResult};
pub use engine::{
    canonical_crowd_order, canonical_gathering_order, CrowdRecord, EngineStats, EngineUpdate,
    GatheringEngine, RetentionPolicy,
};
pub use gathering::{detect_closed_gatherings, CrowdOccurrence, Gathering, TadVariant};
pub use gpdt_geo::bvs;
pub use gpdt_geo::bvs::BitVector;
pub use incremental::{IncrementalDiscovery, IncrementalUpdate};
pub use params::{
    ConfigError, CrowdParams, GatheringConfig, GatheringConfigBuilder, GatheringParams,
};
pub use pipeline::{DiscoveryResult, GatheringPipeline};
pub use range_search::{RangeSearchStrategy, SearcherScratch, TickSearcher};

// Re-export the parameter type of the clustering phase so downstream users
// only need this crate for configuration.
pub use gpdt_clustering::ClusteringParams;
