//! Crowds and closed-crowd discovery (Algorithm 1 of the paper).

use gpdt_clustering::{ClusterDatabase, ClusterId};
use gpdt_trajectory::{TimeInterval, Timestamp};

use crate::par::{default_threads, par_map_with};
use crate::params::CrowdParams;
use crate::range_search::{RangeSearchStrategy, SearcherScratch, TickSearcher};

/// A crowd (Definition 2): a sequence of snapshot clusters at consecutive
/// timestamps whose consecutive Hausdorff distances stay below `δ`, each with
/// at least `mc` members, lasting at least `kc` ticks.
///
/// A `Crowd` value references its clusters by [`ClusterId`]; the cluster
/// contents live in the [`ClusterDatabase`].  The same type is also used for
/// *crowd candidates* (sequences that satisfy the distance and support
/// constraints but are still shorter than `kc`) inside the discovery sweep
/// and the incremental frontier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Crowd {
    clusters: Vec<ClusterId>,
}

impl Crowd {
    /// Creates a crowd from cluster references at consecutive timestamps.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or the timestamps are not consecutive.
    pub fn new(clusters: Vec<ClusterId>) -> Self {
        assert!(!clusters.is_empty(), "a crowd needs at least one cluster");
        for w in clusters.windows(2) {
            assert_eq!(
                w[1].time,
                w[0].time + 1,
                "crowd clusters must be at consecutive timestamps"
            );
        }
        Crowd { clusters }
    }

    /// A single-cluster sequence (the seed of a crowd candidate).
    pub fn single(id: ClusterId) -> Self {
        Crowd { clusters: vec![id] }
    }

    /// The referenced clusters, in time order.
    pub fn cluster_ids(&self) -> &[ClusterId] {
        &self.clusters
    }

    /// The number of clusters, i.e. the lifetime `Cr.τ`.
    pub fn lifetime(&self) -> u32 {
        self.clusters.len() as u32
    }

    /// Number of clusters (same as [`Self::lifetime`], usize-typed).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Always `false`: crowds are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First timestamp.
    pub fn start_time(&self) -> Timestamp {
        self.clusters[0].time
    }

    /// Last timestamp.
    pub fn end_time(&self) -> Timestamp {
        self.clusters[self.clusters.len() - 1].time
    }

    /// The covered time interval.
    pub fn interval(&self) -> TimeInterval {
        TimeInterval::new(self.start_time(), self.end_time())
    }

    /// The last cluster reference.
    pub fn last(&self) -> ClusterId {
        self.clusters[self.clusters.len() - 1]
    }

    /// The crowd extended by one more cluster at the next timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `next.time` is not exactly one tick after the current end.
    pub fn extended(&self, next: ClusterId) -> Crowd {
        self.clone().into_extended(next)
    }

    /// Consumes the crowd and extends it by one more cluster, reusing its
    /// id-sequence allocation (the discovery sweep's common single-extension
    /// case never copies the sequence).
    ///
    /// # Panics
    ///
    /// Panics if `next.time` is not exactly one tick after the current end.
    pub fn into_extended(mut self, next: ClusterId) -> Crowd {
        assert_eq!(
            next.time,
            self.end_time() + 1,
            "extension cluster must be at the next timestamp"
        );
        self.clusters.push(next);
        self
    }

    /// The contiguous sub-crowd covering positions `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn sub_crowd(&self, start: usize, end: usize) -> Crowd {
        assert!(
            start < end && end <= self.clusters.len(),
            "invalid sub-crowd range"
        );
        Crowd {
            clusters: self.clusters[start..end].to_vec(),
        }
    }

    /// Returns `true` if `self` appears in `other` as a contiguous window.
    pub fn is_window_of(&self, other: &Crowd) -> bool {
        if self.len() > other.len() {
            return false;
        }
        other
            .clusters
            .windows(self.len())
            .any(|w| w == self.clusters.as_slice())
    }

    /// Returns `true` if the sequence satisfies all crowd requirements of
    /// Definition 2 against the given cluster database.
    ///
    /// Used by tests and by property checks; the discovery sweep maintains
    /// the invariants incrementally and does not need to call this.
    pub fn is_valid_crowd(&self, cdb: &ClusterDatabase, params: &CrowdParams) -> bool {
        if self.lifetime() < params.kc {
            return false;
        }
        for id in &self.clusters {
            match cdb.cluster(*id) {
                Some(c) if c.len() >= params.mc => {}
                _ => return false,
            }
        }
        for w in self.clusters.windows(2) {
            let (Some(a), Some(b)) = (cdb.cluster(w[0]), cdb.cluster(w[1])) else {
                return false;
            };
            if !a.within_hausdorff(b, params.delta) {
                return false;
            }
        }
        true
    }
}

/// Result of a closed-crowd discovery sweep.
#[derive(Debug, Clone, Default)]
pub struct CrowdDiscoveryResult {
    /// All closed crowds found (lifetime ≥ `kc`, not extensible).
    pub closed_crowds: Vec<Crowd>,
    /// All cluster sequences that end at the final timestamp of the swept
    /// interval — closed crowds and still-too-short candidates alike.  This
    /// is the set `CS` the incremental algorithm (§III-C.1) resumes from.
    pub frontier: Vec<Crowd>,
}

impl CrowdDiscoveryResult {
    /// Closed crowds whose last cluster is at `t` (used by tests).
    pub fn closed_ending_at(&self, t: Timestamp) -> Vec<&Crowd> {
        self.closed_crowds
            .iter()
            .filter(|c| c.end_time() == t)
            .collect()
    }
}

/// Closed-crowd discovery (Algorithm 1), parameterised by the range-search
/// strategy.
///
/// The sweep itself is inherently sequential (candidates at tick `t` depend
/// on the candidates at `t - 1`), but the per-tick search structures are
/// independent of each other, so they are built in parallel up front and the
/// sweep then consumes them in time order; each [`TickSearcher`] is built
/// exactly once per tick and shared by every crowd candidate probing that
/// tick.
#[derive(Debug, Clone, Copy)]
pub struct CrowdDiscovery {
    params: CrowdParams,
    strategy: RangeSearchStrategy,
    threads: usize,
}

impl CrowdDiscovery {
    /// Creates a discovery sweep with the given parameters and range-search
    /// strategy, using all available cores for index construction.
    pub fn new(params: CrowdParams, strategy: RangeSearchStrategy) -> Self {
        CrowdDiscovery {
            params,
            strategy,
            threads: default_threads(),
        }
    }

    /// Overrides the number of worker threads used to build the per-tick
    /// search structures (clamped to at least 1; results do not depend on
    /// the thread count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The crowd parameters.
    pub fn params(&self) -> &CrowdParams {
        &self.params
    }

    /// Runs the sweep over the whole cluster database.
    pub fn run(&self, cdb: &ClusterDatabase) -> CrowdDiscoveryResult {
        let Some(domain) = cdb.time_domain() else {
            return CrowdDiscoveryResult::default();
        };
        self.run_resumed(cdb, domain.start, Vec::new())
    }

    /// Resumes the sweep at `start_time` with an initial candidate set
    /// (the incremental crowd-extension entry point, §III-C.1).
    ///
    /// `seed` must contain only sequences ending at `start_time - 1`; the
    /// sweep processes timestamps `start_time ..= cdb.end` and reports closed
    /// crowds discovered from the seed onwards (seeds that cannot be extended
    /// are emitted as closed if they are long enough).
    pub fn run_resumed(
        &self,
        cdb: &ClusterDatabase,
        start_time: Timestamp,
        seed: Vec<Crowd>,
    ) -> CrowdDiscoveryResult {
        self.run_resumed_observed(cdb, start_time, seed, None)
    }

    /// Like [`CrowdDiscovery::run_resumed`], additionally invoking `observer`
    /// after every processed tick `t` with the complete candidate set ending
    /// at `t` (the paper's per-tick `V`).
    ///
    /// This is the per-tick hook a cross-shard merger needs: a sharded
    /// deployment runs one sweep per partition and must later splice crowd
    /// prefixes that reach a partition boundary onto extensions discovered in
    /// a neighbouring partition, which requires the candidate sequences *as
    /// they were* at the boundary tick — state the batch-level result no
    /// longer contains.  The observer is a pure tap: it cannot alter the
    /// sweep and the result is identical to the unobserved run.
    pub fn run_resumed_observed(
        &self,
        cdb: &ClusterDatabase,
        start_time: Timestamp,
        seed: Vec<Crowd>,
        mut observer: Option<&mut dyn FnMut(Timestamp, &[Crowd])>,
    ) -> CrowdDiscoveryResult {
        let Some(domain) = cdb.time_domain() else {
            return CrowdDiscoveryResult {
                closed_crowds: Vec::new(),
                frontier: seed,
            };
        };
        debug_assert!(
            seed.iter().all(|c| c.end_time() + 1 == start_time),
            "seed sequences must end right before the resume point"
        );

        let mut closed: Vec<Crowd> = Vec::new();
        // V: the current crowd candidates, all ending at the previously
        // processed timestamp.
        let mut candidates: Vec<Crowd> = seed;

        // Build the per-tick search structures in parallel, a bounded window
        // at a time: each index is independent of the others and of the sweep
        // state, but holding one for every tick of a large domain at once
        // would double peak memory, so the look-ahead is capped.  Each worker
        // keeps one `SearcherScratch` for its whole chunk, so repeated index
        // construction reuses its buffers across ticks.
        let ticks: Vec<Timestamp> = (start_time.max(domain.start)..=domain.end).collect();
        let window = (self.threads * 8).max(32);
        // Reused sweep buffers: the range-search output, the qualifying
        // extension ids of the current candidate and the per-tick absorbed
        // flags.
        let mut near: Vec<usize> = Vec::new();
        let mut qualifying: Vec<usize> = Vec::new();
        let mut absorbed: Vec<bool> = Vec::new();
        let mut next_candidates: Vec<Crowd> = Vec::new();
        for tick_window in ticks.chunks(window) {
            let searchers: Vec<TickSearcher<'_>> = par_map_with(
                tick_window,
                self.threads,
                SearcherScratch::new,
                |scratch, &t| {
                    let set = cdb
                        .set_at(t)
                        .expect("contiguous cluster database covers every tick of its domain");
                    TickSearcher::build_with(self.strategy, set, self.params.delta, scratch)
                },
            );

            for searcher in &searchers {
                let set = searcher.cluster_set();
                let t = set.time;

                // Indices of clusters at `t` that extended at least one
                // candidate; they must not seed new candidates (they are
                // already covered by a longer sequence).
                absorbed.clear();
                absorbed.resize(set.clusters.len(), false);
                next_candidates.clear();

                for candidate in candidates.drain(..) {
                    let last = cdb
                        .cluster(candidate.last())
                        .expect("candidate clusters exist in the database");
                    searcher.search_into(last, &mut near);
                    qualifying.clear();
                    for &idx in &near {
                        if set.clusters[idx].len() < self.params.mc {
                            continue;
                        }
                        absorbed[idx] = true;
                        qualifying.push(idx);
                    }
                    match qualifying.split_last() {
                        None => {
                            if candidate.lifetime() >= self.params.kc {
                                // Lemma 1: a crowd that cannot be extended by
                                // any qualifying cluster at the next
                                // timestamp is closed.
                                closed.push(candidate);
                            }
                        }
                        Some((&last_idx, rest)) => {
                            for &idx in rest {
                                next_candidates.push(candidate.extended(ClusterId::new(t, idx)));
                            }
                            // The final extension consumes the candidate,
                            // reusing its id-sequence allocation.
                            next_candidates
                                .push(candidate.into_extended(ClusterId::new(t, last_idx)));
                        }
                    }
                }

                // Clusters that extended nothing become fresh single-cluster
                // candidates (provided they meet the support threshold).
                for (idx, cluster) in set.clusters.iter().enumerate() {
                    if !absorbed[idx] && cluster.len() >= self.params.mc {
                        next_candidates.push(Crowd::single(ClusterId::new(t, idx)));
                    }
                }
                std::mem::swap(&mut candidates, &mut next_candidates);
                if let Some(observer) = observer.as_deref_mut() {
                    observer(t, &candidates);
                }
            }
        }

        // End of the time domain: candidates long enough are closed crowds
        // (they cannot be extended within this database).  All remaining
        // candidates form the frontier for a future incremental extension.
        for candidate in &candidates {
            if candidate.lifetime() >= self.params.kc {
                closed.push(candidate.clone());
            }
        }
        CrowdDiscoveryResult {
            closed_crowds: closed,
            frontier: candidates,
        }
    }
}

/// Convenience wrapper: discovers all closed crowds of a cluster database.
pub fn discover_closed_crowds(
    cdb: &ClusterDatabase,
    params: &CrowdParams,
    strategy: RangeSearchStrategy,
) -> Vec<Crowd> {
    CrowdDiscovery::new(*params, strategy)
        .run(cdb)
        .closed_crowds
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_clustering::{SnapshotCluster, SnapshotClusterSet};
    use gpdt_geo::Point;
    use gpdt_trajectory::ObjectId;

    /// Builds a cluster whose points are a tight blob at (cx, cy).
    fn blob(time: u32, ids: &[u32], cx: f64, cy: f64) -> SnapshotCluster {
        let members: Vec<ObjectId> = ids.iter().map(|&i| ObjectId::new(i)).collect();
        let points: Vec<Point> = ids
            .iter()
            .enumerate()
            .map(|(k, _)| Point::new(cx + k as f64, cy))
            .collect();
        SnapshotCluster::new(time, members, points)
    }

    fn params(mc: usize, kc: u32, delta: f64) -> CrowdParams {
        CrowdParams::new(mc, kc, delta)
    }

    #[test]
    fn crowd_accessors() {
        let crowd = Crowd::new(vec![
            ClusterId::new(3, 0),
            ClusterId::new(4, 1),
            ClusterId::new(5, 0),
        ]);
        assert_eq!(crowd.lifetime(), 3);
        assert_eq!(crowd.len(), 3);
        assert!(!crowd.is_empty());
        assert_eq!(crowd.start_time(), 3);
        assert_eq!(crowd.end_time(), 5);
        assert_eq!(crowd.interval(), TimeInterval::new(3, 5));
        assert_eq!(crowd.last(), ClusterId::new(5, 0));
        let extended = crowd.extended(ClusterId::new(6, 2));
        assert_eq!(extended.lifetime(), 4);
        let sub = extended.sub_crowd(1, 3);
        assert_eq!(sub.start_time(), 4);
        assert_eq!(sub.end_time(), 5);
        assert!(sub.is_window_of(&extended));
        assert!(!extended.is_window_of(&sub));
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn crowd_rejects_time_gaps() {
        let _ = Crowd::new(vec![ClusterId::new(0, 0), ClusterId::new(2, 0)]);
    }

    #[test]
    #[should_panic(expected = "next timestamp")]
    fn extension_must_advance_time_by_one() {
        let crowd = Crowd::single(ClusterId::new(5, 0));
        let _ = crowd.extended(ClusterId::new(7, 0));
    }

    /// The running example of the paper's Figure 2: eight timestamps, cluster
    /// rows laid out so that clusters in the same or adjacent "rows" are
    /// within δ of each other.  With `kc = 4` the discovery must find exactly
    /// the three closed crowds listed in Figure 2b (at t9 in the paper; here
    /// the archive simply ends at t8).
    fn figure2_database() -> (ClusterDatabase, Vec<Vec<u32>>) {
        // Rows are y-positions separated by 100; δ = 150 makes same-row and
        // adjacent-row clusters "close" while skipping a row is too far.
        // Each cluster holds 3 objects so mc = 3 keeps every cluster eligible.
        //
        // Layout (timestamps 1..=8), matching the paper's Figure 2a:
        //   row 0: c1_1 c1_2 c1_3 c1_4 c1_5 c1_6          (t1..t6)
        //   row 1:                c2_5                      (t5)  [adjacent to row 0]
        //   row 2:           c2_2 c2_3                      (t2..t3)  -- adjacent to row 1? no: rows 1 and 2 adjacent
        //   row 3:                c3_5 c3_6? ...
        // To keep the example faithful we place clusters on rows such that the
        // paper's adjacency table holds; see the assertions below.
        let mut sets = Vec::new();
        let ids = |base: u32| -> Vec<u32> { vec![base, base + 1, base + 2] };
        let row_y = |row: u32| row as f64 * 100.0;

        // Per timestamp: list of (row, unique id base), where |row difference|
        // <= 1 <=> the clusters are within δ.  The rows reproduce the paper's
        // Figure 2a:
        //   row 1:                     c1^6
        //   row 2:           c1^3 c1^4 c1^5
        //   row 3: c1^1 c1^2           c2^5
        //   row 4:      c2^2 c2^3      c3^5
        //   row 5:                     c2^6 c1^7 c1^8
        //   row 6:                     c3^6
        let layout: Vec<Vec<(u32, u32)>> = vec![
            vec![(3, 10)],                   // t1: c1^1
            vec![(3, 20), (4, 23)],          // t2: c1^2, c2^2
            vec![(2, 30), (4, 33)],          // t3: c1^3, c2^3
            vec![(2, 40)],                   // t4: c1^4
            vec![(2, 50), (3, 53), (4, 56)], // t5: c1^5, c2^5, c3^5
            vec![(1, 60), (5, 63), (6, 66)], // t6: c1^6, c2^6, c3^6
            vec![(5, 70)],                   // t7: c1^7
            vec![(5, 80)],                   // t8: c1^8
        ];
        for (i, clusters) in layout.iter().enumerate() {
            let t = (i + 1) as u32;
            let set = SnapshotClusterSet {
                time: t,
                clusters: clusters
                    .iter()
                    .map(|&(row, base)| blob(t, &ids(base), 0.0, row_y(row)))
                    .collect(),
            };
            sets.push(set);
        }
        let member_bases: Vec<Vec<u32>> = layout
            .iter()
            .map(|cs| cs.iter().map(|&(_, b)| b).collect())
            .collect();
        (ClusterDatabase::from_sets(sets), member_bases)
    }

    #[test]
    fn figure2_example_finds_expected_closed_crowds() {
        let (cdb, _) = figure2_database();
        let p = params(3, 4, 150.0);
        for strategy in RangeSearchStrategy::ALL {
            let result = CrowdDiscovery::new(p, strategy).run(&cdb);
            let mut found: Vec<Vec<(u32, usize)>> = result
                .closed_crowds
                .iter()
                .map(|c| {
                    c.cluster_ids()
                        .iter()
                        .map(|id| (id.time, id.index))
                        .collect()
                })
                .collect();
            found.sort();
            // Expected (in (time, index-within-tick) notation):
            //  - <c1^1..c1^4, c2^5>           = (1,0)(2,0)(3,0)(4,0)(5,1)
            //  - <c1^1..c1^6> through row 2/1 = (1,0)(2,0)(3,0)(4,0)(5,0)(6,0)
            //  - <c3^5, c2^6, c1^7, c1^8>     = (5,2)(6,1)(7,0)(8,0)
            let mut expected = vec![
                vec![(1, 0), (2, 0), (3, 0), (4, 0), (5, 1)],
                vec![(1, 0), (2, 0), (3, 0), (4, 0), (5, 0), (6, 0)],
                vec![(5, 2), (6, 1), (7, 0), (8, 0)],
            ];
            expected.sort();
            assert_eq!(found, expected, "strategy {strategy}");

            // Frontier (Figure 4's CS): the sequences ending at t8.
            let mut frontier: Vec<Vec<(u32, usize)>> = result
                .frontier
                .iter()
                .map(|c| {
                    c.cluster_ids()
                        .iter()
                        .map(|id| (id.time, id.index))
                        .collect()
                })
                .collect();
            frontier.sort();
            let mut expected_frontier = vec![
                vec![(5, 2), (6, 1), (7, 0), (8, 0)],
                vec![(6, 2), (7, 0), (8, 0)],
            ];
            expected_frontier.sort();
            assert_eq!(frontier, expected_frontier, "strategy {strategy}");
        }
    }

    #[test]
    fn all_closed_crowds_are_valid_and_closed() {
        let (cdb, _) = figure2_database();
        let p = params(3, 4, 150.0);
        let result = CrowdDiscovery::new(p, RangeSearchStrategy::Grid).run(&cdb);
        assert!(!result.closed_crowds.is_empty());
        for crowd in &result.closed_crowds {
            assert!(crowd.is_valid_crowd(&cdb, &p));
            // No other closed crowd strictly contains this one as a window.
            for other in &result.closed_crowds {
                if other == crowd {
                    continue;
                }
                assert!(
                    !(crowd.is_window_of(other) && other.len() > crowd.len()),
                    "crowd is contained in a longer closed crowd"
                );
            }
        }
    }

    #[test]
    fn support_threshold_filters_small_clusters() {
        // Three objects per cluster; mc = 4 means no crowd at all.
        let (cdb, _) = figure2_database();
        let p = params(4, 4, 150.0);
        let result = CrowdDiscovery::new(p, RangeSearchStrategy::Grid).run(&cdb);
        assert!(result.closed_crowds.is_empty());
        assert!(result.frontier.is_empty());
    }

    #[test]
    fn lifetime_threshold_filters_short_sequences() {
        let (cdb, _) = figure2_database();
        // kc = 7: the longest chain has 6 clusters, so nothing qualifies.
        let p = params(3, 7, 150.0);
        let result = CrowdDiscovery::new(p, RangeSearchStrategy::Grid).run(&cdb);
        assert!(result.closed_crowds.is_empty());
        // The frontier still tracks the sequences ending at t8.
        assert_eq!(result.frontier.len(), 2);
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let cdb = ClusterDatabase::new();
        let p = params(3, 3, 100.0);
        let result = CrowdDiscovery::new(p, RangeSearchStrategy::Grid).run(&cdb);
        assert!(result.closed_crowds.is_empty());
        assert!(result.frontier.is_empty());
    }

    #[test]
    fn stationary_blob_yields_single_closed_crowd() {
        // One stable blob over 10 ticks: exactly one closed crowd covering
        // the whole interval, which is also the only frontier entry.
        let sets: Vec<SnapshotClusterSet> = (0..10u32)
            .map(|t| SnapshotClusterSet {
                time: t,
                clusters: vec![blob(t, &[1, 2, 3, 4], 50.0, 50.0)],
            })
            .collect();
        let cdb = ClusterDatabase::from_sets(sets);
        let p = params(3, 5, 100.0);
        let result = CrowdDiscovery::new(p, RangeSearchStrategy::Grid).run(&cdb);
        assert_eq!(result.closed_crowds.len(), 1);
        assert_eq!(result.closed_crowds[0].lifetime(), 10);
        assert_eq!(result.frontier.len(), 1);
        assert_eq!(result.frontier[0], result.closed_crowds[0]);
    }

    #[test]
    fn moving_blob_breaks_when_jump_exceeds_delta() {
        // The blob teleports at t=5 by more than δ: two separate closed
        // crowds.
        let sets: Vec<SnapshotClusterSet> = (0..10u32)
            .map(|t| {
                let cx = if t < 5 { 0.0 } else { 10_000.0 };
                SnapshotClusterSet {
                    time: t,
                    clusters: vec![blob(t, &[1, 2, 3], cx, 0.0)],
                }
            })
            .collect();
        let cdb = ClusterDatabase::from_sets(sets);
        let p = params(3, 4, 200.0);
        let result = CrowdDiscovery::new(p, RangeSearchStrategy::Grid).run(&cdb);
        assert_eq!(result.closed_crowds.len(), 2);
        let mut lifetimes: Vec<u32> = result.closed_crowds.iter().map(Crowd::lifetime).collect();
        lifetimes.sort_unstable();
        assert_eq!(lifetimes, vec![5, 5]);
    }

    #[test]
    fn observer_sees_every_tick_candidate_set_without_changing_results() {
        let (cdb, _) = figure2_database();
        let p = params(3, 4, 150.0);
        let discovery = CrowdDiscovery::new(p, RangeSearchStrategy::Grid);
        let unobserved = discovery.run(&cdb);

        let mut per_tick: Vec<(Timestamp, Vec<Crowd>)> = Vec::new();
        let mut observer = |t: Timestamp, candidates: &[Crowd]| {
            per_tick.push((t, candidates.to_vec()));
        };
        let observed = discovery.run_resumed_observed(&cdb, 1, Vec::new(), Some(&mut observer));
        assert_eq!(observed.closed_crowds, unobserved.closed_crowds);
        assert_eq!(observed.frontier, unobserved.frontier);

        // One callback per tick of the domain, in time order, every candidate
        // ending exactly at the callback's tick; the last callback carries the
        // frontier.
        assert_eq!(
            per_tick.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            (1..=8).collect::<Vec<_>>()
        );
        for (t, candidates) in &per_tick {
            assert!(candidates.iter().all(|c| c.end_time() == *t));
        }
        assert_eq!(per_tick.last().unwrap().1, observed.frontier);
    }

    #[test]
    fn discover_helper_returns_closed_crowds_only() {
        let (cdb, _) = figure2_database();
        let p = params(3, 4, 150.0);
        let crowds = discover_closed_crowds(&cdb, &p, RangeSearchStrategy::BruteForce);
        assert_eq!(crowds.len(), 3);
    }
}
