//! Incremental discovery for growing trajectory databases (§III-C).
//!
//! When a new batch of trajectory data is appended to the database, a full
//! re-computation becomes increasingly expensive.  The paper exploits two
//! facts:
//!
//! * **Crowd extension (Lemma 4)** — only cluster sequences that end at the
//!   last timestamp of the old database can possibly be extended; everything
//!   else is already final.  [`CrowdDiscovery::run_resumed`](crate::crowd::CrowdDiscovery::run_resumed) restarts
//!   Algorithm 1 at the first new timestamp with the saved frontier as the
//!   candidate set.
//! * **Gathering update (Theorem 2)** — when an old crowd is extended into a
//!   longer one, the closed gatherings to the left of the right-most invalid
//!   cluster that lies within the old part (or at the first new cluster) are
//!   unchanged; only the region to its right needs a fresh Test-and-Divide.
//!
//! Both are packaged into the streaming
//! [`GatheringEngine`]; this module keeps
//! [`update_gatherings`], the Theorem 2 primitive the engine (and the
//! Figure 8b benchmark) builds on, and [`IncrementalDiscovery`], a thin
//! stateful façade over the engine preserved for callers that only ingest
//! pre-clustered batches.

use gpdt_clustering::{ClusterDatabase, ClusteringParams};

use crate::crowd::Crowd;
use crate::engine::GatheringEngine;
use crate::gathering::{detect_with_occurrence, CrowdOccurrence, Gathering, TadVariant};
use crate::params::{CrowdParams, GatheringConfig, GatheringParams};
use crate::range_search::RangeSearchStrategy;

pub use crate::engine::{CrowdRecord, EngineUpdate as IncrementalUpdate};

/// Re-detects the closed gatherings of an *extended* crowd, reusing the
/// gatherings already known for its old prefix (Theorem 2).
///
/// * `new_crowd` — the extended crowd `⟨c_i, ..., c_n, c_{n+1}, ..., c_m⟩`;
/// * `old_len` — the length of the old prefix (`n - i + 1`);
/// * `old_gatherings` — the closed gatherings previously found in the prefix.
///
/// The occurrence table is built for the whole extended crowd (signatures are
/// built once, as in TAD\*); the old gatherings that Theorem 2 proves stable
/// are copied over and Test-and-Divide only runs on the part to the right of
/// the pivot invalid cluster.
pub fn update_gatherings(
    new_crowd: &Crowd,
    cdb: &ClusterDatabase,
    old_len: usize,
    old_gatherings: &[Gathering],
    params: &GatheringParams,
    kc: u32,
    variant: TadVariant,
) -> Vec<Gathering> {
    assert!(
        old_len <= new_crowd.len(),
        "old prefix cannot be longer than the extended crowd"
    );
    let occ = CrowdOccurrence::build(new_crowd, cdb);

    if variant == TadVariant::BruteForce {
        // The brute-force enumerator has no divide step to restrict, so the
        // Theorem 2 shortcut does not apply; detect over the whole crowd.
        return detect_with_occurrence(new_crowd, &occ, params, kc, variant);
    }

    // Find the invalid clusters of the extended crowd (positions with fewer
    // than mp participators w.r.t. the whole extended crowd).
    let invalid = crate::gathering::find_invalid_positions(&occ, params, 0, new_crowd.len());

    // The pivot: the right-most invalid cluster at a position ≤ old_len
    // (i.e. inside the old crowd or at the first new cluster, 0-based index
    // old_len is the first new cluster).
    let pivot = invalid.iter().copied().filter(|&j| j <= old_len).max();

    let Some(pivot) = pivot else {
        // No invalid cluster in the reusable region: Theorem 2 gives no
        // shortcut, fall back to a full detection on the extended crowd.
        return detect_with_occurrence(new_crowd, &occ, params, kc, variant);
    };

    // Left of the pivot: the old closed gatherings there are still closed and
    // unchanged.
    let pivot_time = new_crowd.cluster_ids()[pivot].time;
    let mut result: Vec<Gathering> = old_gatherings
        .iter()
        .filter(|g| g.crowd().end_time() < pivot_time)
        .cloned()
        .collect();

    // Right of the pivot: run Test-and-Divide on that region only, reusing
    // the signatures already built for the whole extended crowd.
    if pivot + 1 < new_crowd.len() {
        result.extend(crate::gathering::detect_in_range(
            new_crowd,
            &occ,
            params,
            kc,
            variant,
            pivot + 1,
            new_crowd.len(),
        ));
    }
    result.sort_by_key(|g| (g.crowd().start_time(), g.crowd().end_time()));
    result
}

/// Stateful incremental discovery over an ever-growing cluster database.
///
/// A thin façade over [`GatheringEngine`] for callers that ingest
/// pre-clustered batches: there is no separate incremental implementation —
/// the engine *is* the incremental path, and the batch pipeline is the
/// one-big-batch special case of it.
#[derive(Debug)]
pub struct IncrementalDiscovery {
    engine: GatheringEngine,
}

impl IncrementalDiscovery {
    /// Creates an empty incremental pipeline.
    pub fn new(
        crowd_params: CrowdParams,
        gathering_params: GatheringParams,
        strategy: RangeSearchStrategy,
        variant: TadVariant,
    ) -> Self {
        // The clustering parameters are irrelevant here: this façade only
        // ever ingests pre-clustered batches.
        let config = GatheringConfig {
            clustering: ClusteringParams::paper_default(),
            crowd: crowd_params,
            gathering: gathering_params,
        };
        IncrementalDiscovery {
            engine: GatheringEngine::new(config)
                .with_strategy(strategy)
                .with_variant(variant),
        }
    }

    /// The underlying streaming engine.
    pub fn engine(&self) -> &GatheringEngine {
        &self.engine
    }

    /// The accumulated cluster database.
    pub fn cluster_database(&self) -> &ClusterDatabase {
        self.engine.cluster_database()
    }

    /// All currently known closed crowds (finalized ones plus frontier
    /// sequences that are long enough and cannot yet be ruled closed or
    /// extended — they are closed *with respect to the data seen so far*).
    pub fn closed_crowds(&self) -> Vec<Crowd> {
        self.engine.closed_crowds()
    }

    /// All currently known closed gatherings.
    pub fn gatherings(&self) -> Vec<Gathering> {
        self.engine.gatherings()
    }

    /// Ingests the next batch of snapshot clusters.
    ///
    /// The batch must start exactly one tick after the data ingested so far
    /// (or may be the first batch).  Returns a summary of what changed.
    pub fn ingest(&mut self, batch: ClusterDatabase) -> IncrementalUpdate {
        self.engine.ingest_clusters(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crowd::CrowdDiscovery;
    use gpdt_clustering::{ClusterId, SnapshotCluster, SnapshotClusterSet};
    use gpdt_geo::Point;
    use gpdt_trajectory::{ObjectId, Timestamp};

    /// Builds a cluster database with a single cluster per tick whose
    /// membership is given explicitly; all clusters sit at the same location
    /// so every consecutive pair is within any reasonable δ.
    fn membership_cdb(start: Timestamp, memberships: &[&[u32]]) -> ClusterDatabase {
        let sets: Vec<SnapshotClusterSet> = memberships
            .iter()
            .enumerate()
            .map(|(i, ids)| {
                let t = start + i as u32;
                SnapshotClusterSet {
                    time: t,
                    clusters: vec![SnapshotCluster::new(
                        t,
                        ids.iter().map(|&i| ObjectId::new(i)).collect(),
                        ids.iter()
                            .enumerate()
                            .map(|(k, _)| Point::new(k as f64, 0.0))
                            .collect(),
                    )],
                }
            })
            .collect();
        ClusterDatabase::from_sets(sets)
    }

    fn single_cluster_crowd(start: Timestamp, len: usize) -> Crowd {
        Crowd::new(
            (0..len)
                .map(|i| ClusterId::new(start + i as u32, 0))
                .collect(),
        )
    }

    #[test]
    fn update_gatherings_matches_full_recomputation() {
        // Old crowd: positions 0..5 (objects 1-3 stable, position 3 invalid).
        // Extension: positions 6..9 where objects 1-3 return.
        let memberships: Vec<&[u32]> = vec![
            &[1, 2, 3],
            &[1, 2, 3],
            &[1, 2, 3],
            &[7, 8, 9],
            &[1, 2, 3],
            &[1, 2, 3],
            &[1, 2, 3],
            &[1, 2, 3],
            &[1, 2, 3],
        ];
        let cdb = membership_cdb(0, &memberships);
        let params = GatheringParams::new(3, 3);
        let kc = 3;
        let old_len = 6;
        let old_crowd = single_cluster_crowd(0, old_len);
        let new_crowd = single_cluster_crowd(0, memberships.len());

        let old_gatherings = crate::gathering::detect_closed_gatherings(
            &old_crowd,
            &cdb,
            &params,
            kc,
            TadVariant::TadStar,
        );
        // Only the prefix before the invalid cluster qualifies in the old
        // crowd; the two positions after it are too short to host a crowd.
        assert_eq!(old_gatherings.len(), 1);
        assert_eq!(old_gatherings[0].lifetime(), 3);

        let updated = update_gatherings(
            &new_crowd,
            &cdb,
            old_len,
            &old_gatherings,
            &params,
            kc,
            TadVariant::TadStar,
        );
        let recomputed = crate::gathering::detect_closed_gatherings(
            &new_crowd,
            &cdb,
            &params,
            kc,
            TadVariant::TadStar,
        );
        assert_eq!(updated, recomputed);
        assert_eq!(updated.len(), 2);
        // The stable gathering before the pivot is exactly the old one.
        assert_eq!(updated[0], old_gatherings[0]);
        // Right of the pivot a new, longer gathering emerged from the
        // extension (positions 4..8).
        assert_eq!(updated[1].lifetime(), 5);
    }

    #[test]
    fn update_gatherings_without_reusable_pivot_falls_back() {
        // Every cluster valid: no invalid pivot in the old region, so the
        // update must simply recompute (and agree with recomputation).
        let memberships: Vec<&[u32]> = vec![&[1, 2, 3]; 8];
        let cdb = membership_cdb(0, &memberships);
        let params = GatheringParams::new(3, 3);
        let new_crowd = single_cluster_crowd(0, 8);
        let old_crowd = single_cluster_crowd(0, 5);
        let old = crate::gathering::detect_closed_gatherings(
            &old_crowd,
            &cdb,
            &params,
            3,
            TadVariant::TadStar,
        );
        let updated = update_gatherings(&new_crowd, &cdb, 5, &old, &params, 3, TadVariant::TadStar);
        let recomputed = crate::gathering::detect_closed_gatherings(
            &new_crowd,
            &cdb,
            &params,
            3,
            TadVariant::TadStar,
        );
        assert_eq!(updated, recomputed);
        assert_eq!(updated.len(), 1);
        assert_eq!(updated[0].lifetime(), 8);
    }

    #[test]
    #[should_panic(expected = "old prefix cannot be longer")]
    fn update_gatherings_rejects_bad_prefix_length() {
        let memberships: Vec<&[u32]> = vec![&[1, 2, 3]; 4];
        let cdb = membership_cdb(0, &memberships);
        let crowd = single_cluster_crowd(0, 4);
        let _ = update_gatherings(
            &crowd,
            &cdb,
            10,
            &[],
            &GatheringParams::new(2, 2),
            2,
            TadVariant::TadStar,
        );
    }

    fn incremental_equals_batch(memberships: &[&[u32]], split: usize) {
        let crowd_params = CrowdParams::new(3, 3, 100.0);
        let gathering_params = GatheringParams::new(3, 3);

        // Batch run over everything at once.
        let full_cdb = membership_cdb(0, memberships);
        let discovery = CrowdDiscovery::new(crowd_params, RangeSearchStrategy::Grid);
        let batch_crowds = discovery.run(&full_cdb).closed_crowds;
        let mut batch_gatherings: Vec<Gathering> = batch_crowds
            .iter()
            .flat_map(|c| {
                crate::gathering::detect_closed_gatherings(
                    c,
                    &full_cdb,
                    &gathering_params,
                    crowd_params.kc,
                    TadVariant::TadStar,
                )
            })
            .collect();
        batch_gatherings.sort_by_key(|g| (g.crowd().start_time(), g.crowd().end_time()));

        // Incremental run: first `split` ticks, then the rest.
        let mut inc = IncrementalDiscovery::new(
            crowd_params,
            gathering_params,
            RangeSearchStrategy::Grid,
            TadVariant::TadStar,
        );
        inc.ingest(membership_cdb(0, &memberships[..split]));
        inc.ingest(membership_cdb(split as u32, &memberships[split..]));

        let mut inc_crowds = inc.closed_crowds();
        let mut expected_crowds = batch_crowds;
        inc_crowds.sort_by_key(|c| (c.start_time(), c.end_time()));
        expected_crowds.sort_by_key(|c| (c.start_time(), c.end_time()));
        assert_eq!(inc_crowds, expected_crowds);

        let inc_gatherings = inc.gatherings();
        assert_eq!(inc_gatherings, batch_gatherings);
    }

    #[test]
    fn incremental_matches_batch_on_stable_group() {
        let memberships: Vec<&[u32]> = vec![&[1, 2, 3]; 10];
        incremental_equals_batch(&memberships, 6);
    }

    #[test]
    fn incremental_matches_batch_with_membership_churn() {
        let memberships: Vec<&[u32]> = vec![
            &[1, 2, 3],
            &[1, 2, 3, 4],
            &[2, 3, 4],
            &[9, 8, 7],
            &[1, 2, 3],
            &[1, 2, 3],
            &[1, 2, 3],
            &[4, 5, 6],
            &[4, 5, 6],
            &[4, 5, 6],
        ];
        for split in [3, 5, 7] {
            incremental_equals_batch(&memberships, split);
        }
    }

    #[test]
    fn ingest_summary_counts_extensions() {
        let crowd_params = CrowdParams::new(3, 3, 100.0);
        let gathering_params = GatheringParams::new(3, 3);
        let mut inc = IncrementalDiscovery::new(
            crowd_params,
            gathering_params,
            RangeSearchStrategy::Grid,
            TadVariant::TadStar,
        );
        let first: Vec<&[u32]> = vec![&[1, 2, 3]; 4];
        let update1 = inc.ingest(membership_cdb(0, &first));
        // The single stable crowd ends at the frontier, so it is reported as
        // closed-so-far but stays extendable.
        assert_eq!(update1.new_closed_crowds, 1);
        assert_eq!(inc.closed_crowds().len(), 1);
        assert_eq!(inc.gatherings().len(), 1);

        let second: Vec<&[u32]> = vec![&[1, 2, 3]; 3];
        let update2 = inc.ingest(membership_cdb(4, &second));
        assert_eq!(update2.new_closed_crowds, 1);
        assert_eq!(update2.extended_from_frontier, 1);
        let crowds = inc.closed_crowds();
        assert_eq!(crowds.len(), 1);
        assert_eq!(crowds[0].lifetime(), 7);
        let gatherings = inc.gatherings();
        assert_eq!(gatherings.len(), 1);
        assert_eq!(gatherings[0].lifetime(), 7);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut inc = IncrementalDiscovery::new(
            CrowdParams::new(3, 3, 100.0),
            GatheringParams::new(3, 3),
            RangeSearchStrategy::Grid,
            TadVariant::TadStar,
        );
        let update = inc.ingest(ClusterDatabase::new());
        assert_eq!(update.new_closed_crowds, 0);
        assert!(inc.closed_crowds().is_empty());
    }
}
