//! Parameters of the gathering-discovery problem and their validation.

use gpdt_clustering::ClusteringParams;

/// Parameters of the crowd pattern (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdParams {
    /// Support threshold `mc`: minimum number of objects in every snapshot
    /// cluster of the crowd.
    pub mc: usize,
    /// Lifetime threshold `kc`: minimum number of consecutive timestamps.
    pub kc: u32,
    /// Variation threshold `δ` (metres): maximum Hausdorff distance between
    /// consecutive snapshot clusters.
    pub delta: f64,
}

impl CrowdParams {
    /// Creates crowd parameters.
    ///
    /// # Panics
    ///
    /// Panics if `mc` or `kc` is zero, or `delta` is not positive and finite.
    pub fn new(mc: usize, kc: u32, delta: f64) -> Self {
        assert!(mc >= 1, "mc must be at least 1");
        assert!(kc >= 1, "kc must be at least 1");
        assert!(
            delta.is_finite() && delta > 0.0,
            "delta must be positive and finite, got {delta}"
        );
        CrowdParams { mc, kc, delta }
    }

    /// The default setting of the paper's effectiveness study
    /// (`mc = 15`, `kc = 20`, `δ = 300 m`).
    pub fn paper_default() -> Self {
        CrowdParams::new(15, 20, 300.0)
    }
}

/// Parameters of the gathering pattern (Definitions 3 and 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatheringParams {
    /// Support threshold `mp`: minimum number of participators in every
    /// snapshot cluster of the gathering.
    pub mp: usize,
    /// Lifetime threshold `kp`: minimum number of (possibly non-consecutive)
    /// clusters an object must appear in to be a participator.
    pub kp: u32,
}

impl GatheringParams {
    /// Creates gathering parameters.
    ///
    /// # Panics
    ///
    /// Panics if `mp` or `kp` is zero.
    pub fn new(mp: usize, kp: u32) -> Self {
        assert!(mp >= 1, "mp must be at least 1");
        assert!(kp >= 1, "kp must be at least 1");
        GatheringParams { mp, kp }
    }

    /// The default setting of the paper's effectiveness study
    /// (`mp = 10`, `kp = 15`).
    pub fn paper_default() -> Self {
        GatheringParams::new(10, 15)
    }
}

/// Error returned when a [`GatheringConfig`] is internally inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `kp` exceeds `kc`: a participator would need to appear in more
    /// clusters than the shortest admissible crowd has, so no gathering could
    /// ever exist.
    ParticipatorLifetimeExceedsCrowd {
        /// The configured participator lifetime threshold.
        kp: u32,
        /// The configured crowd lifetime threshold.
        kc: u32,
    },
    /// `mp` exceeds `mc`: a cluster would need more participators than its
    /// guaranteed membership, which is possible but almost always a mistake
    /// when `mp > mc` because clusters with exactly `mc` members could never
    /// be valid.  We reject only the degenerate case `mp > mc`.
    SupportThresholdsInconsistent {
        /// The configured gathering support threshold.
        mp: usize,
        /// The configured crowd support threshold.
        mc: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ParticipatorLifetimeExceedsCrowd { kp, kc } => write!(
                f,
                "participator lifetime threshold kp={kp} exceeds crowd lifetime threshold kc={kc}; \
                 no gathering can satisfy this configuration"
            ),
            ConfigError::SupportThresholdsInconsistent { mp, mc } => write!(
                f,
                "gathering support threshold mp={mp} exceeds crowd support threshold mc={mc}; \
                 clusters at the crowd support floor could never be valid"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of the discovery pipeline: snapshot clustering, crowd
/// discovery and gathering detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatheringConfig {
    /// DBSCAN parameters for the snapshot-clustering phase.
    pub clustering: ClusteringParams,
    /// Crowd parameters (`mc`, `kc`, `δ`).
    pub crowd: CrowdParams,
    /// Gathering parameters (`mp`, `kp`).
    pub gathering: GatheringParams,
}

impl GatheringConfig {
    /// Starts building a configuration.
    pub fn builder() -> GatheringConfigBuilder {
        GatheringConfigBuilder::default()
    }

    /// The paper's default evaluation setting.
    pub fn paper_default() -> Self {
        GatheringConfig {
            clustering: ClusteringParams::paper_default(),
            crowd: CrowdParams::paper_default(),
            gathering: GatheringParams::paper_default(),
        }
    }

    /// Validates cross-parameter consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.gathering.kp > self.crowd.kc {
            return Err(ConfigError::ParticipatorLifetimeExceedsCrowd {
                kp: self.gathering.kp,
                kc: self.crowd.kc,
            });
        }
        if self.gathering.mp > self.crowd.mc {
            return Err(ConfigError::SupportThresholdsInconsistent {
                mp: self.gathering.mp,
                mc: self.crowd.mc,
            });
        }
        Ok(())
    }
}

/// Builder for [`GatheringConfig`].
#[derive(Debug, Clone, Default)]
pub struct GatheringConfigBuilder {
    clustering: Option<ClusteringParams>,
    crowd: Option<CrowdParams>,
    gathering: Option<GatheringParams>,
}

impl GatheringConfigBuilder {
    /// Sets the clustering parameters (default: the paper's `ε=200 m, m=5`).
    pub fn clustering(mut self, params: ClusteringParams) -> Self {
        self.clustering = Some(params);
        self
    }

    /// Sets the crowd parameters (default: the paper's `mc=15, kc=20, δ=300`).
    pub fn crowd(mut self, params: CrowdParams) -> Self {
        self.crowd = Some(params);
        self
    }

    /// Sets the gathering parameters (default: the paper's `mp=10, kp=15`).
    pub fn gathering(mut self, params: GatheringParams) -> Self {
        self.gathering = Some(params);
        self
    }

    /// Builds and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the combined parameters are inconsistent.
    pub fn build(self) -> Result<GatheringConfig, ConfigError> {
        let config = GatheringConfig {
            clustering: self
                .clustering
                .unwrap_or_else(ClusteringParams::paper_default),
            crowd: self.crowd.unwrap_or_else(CrowdParams::paper_default),
            gathering: self
                .gathering
                .unwrap_or_else(GatheringParams::paper_default),
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_consistent() {
        let config = GatheringConfig::paper_default();
        assert!(config.validate().is_ok());
        assert_eq!(config.crowd.mc, 15);
        assert_eq!(config.crowd.kc, 20);
        assert_eq!(config.crowd.delta, 300.0);
        assert_eq!(config.gathering.mp, 10);
        assert_eq!(config.gathering.kp, 15);
    }

    #[test]
    fn builder_uses_defaults_for_missing_sections() {
        let config = GatheringConfig::builder().build().unwrap();
        assert_eq!(config, GatheringConfig::paper_default());
    }

    #[test]
    fn builder_rejects_kp_exceeding_kc() {
        let err = GatheringConfig::builder()
            .crowd(CrowdParams::new(10, 5, 100.0))
            .gathering(GatheringParams::new(3, 6))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ParticipatorLifetimeExceedsCrowd { kp: 6, kc: 5 }
        );
        assert!(err.to_string().contains("kp=6"));
    }

    #[test]
    fn builder_rejects_mp_exceeding_mc() {
        let err = GatheringConfig::builder()
            .crowd(CrowdParams::new(5, 10, 100.0))
            .gathering(GatheringParams::new(6, 3))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::SupportThresholdsInconsistent { mp: 6, mc: 5 }
        );
        assert!(err.to_string().contains("mp=6"));
    }

    #[test]
    fn boundary_equal_thresholds_are_accepted() {
        let config = GatheringConfig::builder()
            .crowd(CrowdParams::new(5, 10, 100.0))
            .gathering(GatheringParams::new(5, 10))
            .build();
        assert!(config.is_ok());
    }

    #[test]
    #[should_panic(expected = "mc must be at least 1")]
    fn crowd_params_reject_zero_mc() {
        let _ = CrowdParams::new(0, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn crowd_params_reject_negative_delta() {
        let _ = CrowdParams::new(1, 1, -5.0);
    }

    #[test]
    #[should_panic(expected = "kp must be at least 1")]
    fn gathering_params_reject_zero_kp() {
        let _ = GatheringParams::new(1, 0);
    }
}
