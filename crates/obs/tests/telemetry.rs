//! End-to-end telemetry-plane test: a private registry/recorder pair served
//! over a real socket, scraped with a raw `TcpStream`, and the scraped
//! `/metrics` exposition parsed back and compared — field for field —
//! against the snapshot it was rendered from.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gpdt_obs::{expo, FlightRecorder, Registry, Rule, RuleKind, ServeContext, TelemetryServer};

fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\nAccept: */*\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("well-formed response");
    (head.to_string(), body.to_string())
}

#[test]
fn scraped_metrics_parse_back_to_the_exact_snapshot() {
    gpdt_obs::set_enabled(true);
    let registry: &'static Registry = Box::leak(Box::default());
    let recorder: &'static FlightRecorder = Box::leak(Box::new(FlightRecorder::with_capacity(16)));

    // A representative mix: dotted names with underscores (the lossy
    // sanitisation case), counters, gauges, empty and loaded histograms
    // with extreme samples.
    registry.counter("vfs.bytes_written").add(987_654_321);
    registry.counter("store.tail_repairs").inc();
    registry.gauge("engine.load.ticks_ingested").set(42);
    let h = registry.histogram("vfs.fsync.nanos");
    for v in [0u64, 1, 999, 1_000_000, 50_000_000, u64::MAX] {
        h.record(v);
    }
    registry.histogram("engine.idle"); // registered, never recorded
    recorder.record("test.boot", Some(0), "telemetry test");

    let server = TelemetryServer::bind(
        "127.0.0.1:0",
        ServeContext {
            registry,
            recorder,
            series: None,
            watchdog: Some(Arc::new(gpdt_obs::Watchdog::new(vec![Rule {
                name: "never_fires",
                kind: RuleKind::Stall {
                    metric: "no.such.metric",
                    max_age_nanos: u64::MAX,
                },
            }]))),
        },
    )
    .expect("bind port 0");
    let addr = server.local_addr();

    // No writers are running, so the served snapshot is stable: what the
    // handler snapshots at scrape time equals what we snapshot here.
    let reference = registry.snapshot();
    let (head, body) = scrape(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let parsed = expo::parse(&body).expect("scraped exposition parses");
    assert_eq!(
        parsed, reference,
        "scraped /metrics must round-trip to the exact snapshot"
    );

    // And the exposition itself carries the exact sum/count satellites.
    assert!(body.contains("gpdt_vfs_fsync_nanos_count 6\n"), "{body}");
    assert!(body.contains("gpdt_vfs_fsync_nanos_min 0\n"));
    assert!(body.contains(&format!("gpdt_vfs_fsync_nanos_max {}\n", u64::MAX)));

    let (head, body) = scrape(addr, "/health");
    assert!(head.starts_with("HTTP/1.1 200 OK"));
    assert!(head.contains("application/json"));
    assert!(body.contains("\"watchdog\":[{\"rule\":\"never_fires\""));
    assert!(body.contains("\"flight_events_recorded\":1"));

    let (_, body) = scrape(addr, "/flightrec");
    assert!(body.starts_with("{\"recorded\":1,\"dropped\":0,"));
    assert!(body.contains("\"kind\":\"test.boot\""));

    // Scrapes under concurrent writers never tear a line: every scrape
    // parses, and totals are monotone between scrapes.
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop_ref = &stop;
        scope.spawn(move || {
            let c = registry.counter("vfs.bytes_written");
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                c.add(17);
                registry.histogram("vfs.fsync.nanos").record(123);
            }
        });
        let mut last = 0u64;
        for _ in 0..20 {
            let (_, body) = scrape(addr, "/metrics");
            let snap = expo::parse(&body).expect("mid-write scrape parses");
            let v = snap.counter("vfs.bytes_written").unwrap();
            assert!(v >= last, "counter went backwards across scrapes");
            last = v;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}
