//! Process-wide observability for the gathering-patterns stack: a lock-free
//! metrics registry, scoped stage spans, and a bounded flight recorder for
//! supervision events.
//!
//! The design follows the two-tier telemetry pattern: **cheap always-on
//! primitives** on the hot path (a counter bump is one relaxed atomic add, a
//! span is two `Instant::now` calls plus three adds) and **periodic exact
//! snapshots** read by whoever wants them ([`Registry::snapshot`] never
//! stops writers).  Three surfaces:
//!
//! * [`registry`] — named [`Counter`]s, [`Gauge`]s and fixed-bucket log2
//!   latency [`Histogram`]s (p50/p95/p99 derivable from the buckets).
//!   Registration takes a short-lived lock once per call site; updates are
//!   lock-free thereafter.  The [`counter!`], [`gauge!`] and [`span!`]
//!   macros cache the registered handle in a call-site `OnceLock` so hot
//!   loops never touch the registration lock.
//! * [`span!`] — a scoped timer guard: everything between construction and
//!   drop is recorded, in nanoseconds, into the named histogram.
//! * [`flight`] — a bounded ring buffer of structured supervision events
//!   (retries, panics, degraded transitions, shard rebuilds, tail repairs,
//!   injected faults) with tick timestamps, dumpable to JSON so a crash
//!   leaves a post-mortem artifact instead of a bare exit code.
//!
//! On top of the primitives sits the **live telemetry plane**
//! ([`telemetry_from_env`]): a background [`Sampler`] diffing registry
//! snapshots into windowed [`TimeSeries`] rings (rates/sec, "fsync p99 over
//! the last 10s"), a dependency-free HTTP responder ([`TelemetryServer`])
//! serving `/metrics` (Prometheus text exposition, [`expo`]), `/health`
//! ([`health`]) and `/flightrec`, an SLO [`Watchdog`] journalling
//! `watchdog.fired`/`watchdog.cleared` transitions, and a Chrome-trace span
//! capture ([`trace`], `GPDT_TRACE=<path>`) loadable in Perfetto.
//!
//! Everything is gated by the `GPDT_OBS` environment variable (`on` by
//! default; `off`/`0`/`false` disables).  Disabled call sites reduce to one
//! relaxed atomic load ([`enabled`]) — telemetry can never change results,
//! only record them, and the `fig5` byte-compare CI steps hold the stack to
//! that even while it is being scraped under load.
//!
//! `GPDT_OBS_DUMP` sets where flight-recorder dumps land (default
//! `gpdt-flightrec.json` under the system temp directory);
//! `GPDT_OBS_EVENTS` sizes the global flight-recorder ring.

pub mod expo;
pub mod health;
mod http;
mod recorder;
mod registry;
mod series;
mod span;
pub mod trace;
pub mod watchdog;

pub use http::{ServeContext, TelemetryServer};
pub use recorder::{flight, install_panic_hook, record_event, FlightEvent, FlightRecorder};
pub use registry::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricSource, Registry, Snapshot,
};
pub use series::{sample_interval_from_env, Sampler, TimeSeries, Window};
pub use span::{time_nanos, Span};
pub use watchdog::{Rule, RuleKind, Verdict, Watchdog};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

/// Gate state: 0 = unresolved, 1 = off, 2 = on.
static GATE: AtomicU8 = AtomicU8::new(0);

/// Whether observability is on — the pointer-sized check every instrumented
/// call site performs first.
///
/// Resolved once from `GPDT_OBS` (default: on; `off`, `0` or `false`
/// disable) and cached in a static, so the steady-state cost is a single
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        0 => resolve_gate(),
        state => state == 2,
    }
}

/// Reads `GPDT_OBS` and caches the verdict.
#[cold]
fn resolve_gate() -> bool {
    let on = match std::env::var("GPDT_OBS") {
        Ok(v) => {
            let v = v.trim();
            !(v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => true,
    };
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Overrides the `GPDT_OBS` gate for this process.
///
/// For tests and the micro-benchmark overhead ablation, which must compare
/// on- and off-mode within one process.  Regular code should leave the gate
/// to the environment.
pub fn set_enabled(on: bool) {
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Where flight-recorder dumps are written: `GPDT_OBS_DUMP`, defaulting to
/// `gpdt-flightrec.json` under the system temp directory.
///
/// The default deliberately avoids the current directory: dumps fire from
/// library code (degraded-mode entry, the panic hook), and a `cargo test`
/// run entering degraded mode on purpose must not litter the source tree.
/// Set `GPDT_OBS_DUMP` for a stable post-mortem location (CI does).
pub fn dump_path() -> PathBuf {
    std::env::var_os("GPDT_OBS_DUMP")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("gpdt-flightrec.json"))
}

/// Nanoseconds since the process telemetry epoch — the one clock the
/// sampler's windows, the watchdog's verdicts, and the trace events all
/// share.  The epoch is the first call from any of them (monotonic, so
/// never negative or jumping).
pub fn now_nanos() -> u64 {
    trace::epoch().elapsed().as_nanos() as u64
}

/// Starts the process-wide live telemetry plane from the environment, once;
/// later calls are no-ops.  A no-op too when observability is off.
///
/// * `GPDT_METRICS_ADDR=<host:port>` binds the scrape endpoint
///   (`/metrics`, `/health`, `/flightrec`) and implies the sampler.
/// * `GPDT_OBS_SAMPLE_MS=<ms>` starts the windowed sampler at that cadence
///   even with no endpoint (the watchdog journals to the flight recorder
///   regardless of anyone scraping).
///
/// The sampler and server are leaked: this is the serve-until-exit path
/// (`MonitorService::run`, the fig bins).  Tests wanting start/stop control
/// construct [`Sampler`] and [`TelemetryServer`] directly instead.
pub fn telemetry_from_env() {
    static STARTED: AtomicBool = AtomicBool::new(false);
    if STARTED.swap(true, Ordering::SeqCst) || !enabled() {
        return;
    }
    let addr = std::env::var("GPDT_METRICS_ADDR")
        .ok()
        .filter(|a| !a.trim().is_empty());
    let sample_requested = std::env::var_os("GPDT_OBS_SAMPLE_MS").is_some();
    if addr.is_none() && !sample_requested {
        return;
    }
    let watchdog = Arc::new(Watchdog::from_env());
    let sampler = Sampler::start(
        sample_interval_from_env(),
        registry(),
        Some(Arc::clone(&watchdog)),
        flight(),
    );
    let series = sampler.series();
    std::mem::forget(sampler); // serve until process exit
    if let Some(addr) = addr {
        let ctx = ServeContext {
            registry: registry(),
            recorder: flight(),
            series: Some(series),
            watchdog: Some(watchdog),
        };
        match TelemetryServer::bind(&addr, ctx) {
            Ok(server) => {
                eprintln!(
                    "gpdt-obs: serving /metrics /health /flightrec on http://{}",
                    server.local_addr()
                );
                std::mem::forget(server);
            }
            Err(e) => eprintln!("gpdt-obs: GPDT_METRICS_ADDR={addr} bind failed: {e}"),
        }
    }
}

/// Serialises tests that touch the global gate (it is process-wide state and
/// the test harness runs threads in parallel).
#[cfg(test)]
pub(crate) fn gate_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_defaults_on_and_overrides_stick() {
        let _guard = gate_test_lock();
        // Force re-resolution from the environment, which does not set
        // GPDT_OBS under `cargo test` — so the default must be on.
        GATE.store(0, Ordering::Relaxed);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn dump_path_defaults_under_temp() {
        let path = dump_path();
        assert!(path.to_string_lossy().ends_with("gpdt-flightrec.json"));
        assert!(path.starts_with(std::env::temp_dir()));
    }
}
