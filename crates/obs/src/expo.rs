//! Hand-rolled Prometheus text exposition (version 0.0.4) for a registry
//! [`Snapshot`], plus the inverse parser.
//!
//! Metric names are sanitised (`gpdt_` prefix, non-`[a-zA-Z0-9_]` mapped to
//! `_`) — a lossy map, since dotted names like `vfs.bytes_written` mix both
//! separators.  Each family therefore carries its original dotted name and
//! role in its `# HELP` line (`source=<name> kind=<role>`), which is what
//! makes [`parse`] an exact inverse: a scraped exposition parses back to the
//! very snapshot it was rendered from (the endpoint integration test holds
//! the pair to that).
//!
//! Histograms are emitted the standard way — cumulative `_bucket` lines
//! with `le` bounds, then exact `_sum`/`_count` (maintained by the registry,
//! not bucket-midpoint estimates) — plus `_min`/`_max` gauge families.
//! Buckets whose cumulative count does not change are elided; the cumulative
//! encoding makes that lossless, and it keeps 65-bucket log2 histograms from
//! bloating the scrape.

use std::collections::BTreeMap;

use crate::registry::{bucket_upper, HistogramSnapshot, Snapshot};

/// Renders `snap` in Prometheus text exposition format.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let fam = sanitize(name);
        push_help(&mut out, &fam, name, "counter");
        out.push_str(&format!("# TYPE {fam} counter\n{fam} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let fam = sanitize(name);
        push_help(&mut out, &fam, name, "gauge");
        out.push_str(&format!("# TYPE {fam} gauge\n{fam} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let fam = sanitize(name);
        push_help(&mut out, &fam, name, "histogram");
        out.push_str(&format!("# TYPE {fam} histogram\n"));
        let mut cumulative = 0u64;
        for (index, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            out.push_str(&format!(
                "{fam}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper(index)
            ));
        }
        out.push_str(&format!("{fam}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{fam}_sum {}\n{fam}_count {}\n", h.sum, h.count));
        for (suffix, value) in [("min", h.min), ("max", h.max)] {
            let sub = format!("{fam}_{suffix}");
            push_help(&mut out, &sub, name, &format!("hist_{suffix}"));
            out.push_str(&format!("# TYPE {sub} gauge\n{sub} {value}\n"));
        }
    }
    out
}

fn push_help(out: &mut String, fam: &str, source: &str, kind: &str) {
    out.push_str(&format!("# HELP {fam} source={source} kind={kind}\n"));
}

/// Maps a dotted metric name onto the Prometheus grammar.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("gpdt_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[derive(Default)]
struct PartialHist {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Parses an exposition produced by [`render`] back into the [`Snapshot`] it
/// came from.  Errors carry the offending line.
pub fn parse(text: &str) -> Result<Snapshot, String> {
    // family name -> (source, kind), from the HELP lines.
    let mut roles: BTreeMap<String, (String, String)> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
    let mut hists: BTreeMap<String, PartialHist> = BTreeMap::new();
    // The inverse of bucket_upper, for de-cumulating bucket lines.
    let index_of_le: BTreeMap<String, usize> =
        (0..65).map(|i| (bucket_upper(i).to_string(), i)).collect();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("# TYPE") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let fam = parts.next().unwrap_or_default().to_string();
            let help = parts.next().unwrap_or_default();
            let source = help
                .split_whitespace()
                .find_map(|w| w.strip_prefix("source="))
                .ok_or_else(|| format!("HELP without source=: {line}"))?;
            let kind = help
                .split_whitespace()
                .find_map(|w| w.strip_prefix("kind="))
                .ok_or_else(|| format!("HELP without kind=: {line}"))?;
            roles.insert(fam, (source.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("sample line without value: {line}"))?;
        let value: u64 = value
            .parse()
            .map_err(|e| format!("bad value in {line:?}: {e}"))?;
        // Histogram sub-series first: _bucket{le=".."}, _sum, _count.
        if let Some((fam, le)) = key
            .strip_suffix("\"}")
            .and_then(|k| k.split_once("_bucket{le=\""))
        {
            let (source, _) = family_role(&roles, fam, "histogram", line)?;
            let hist = hists.entry(source).or_default();
            if hist.buckets.is_empty() {
                hist.buckets = vec![0; 65];
            }
            if le == "+Inf" {
                continue; // Total repeats _count; nothing to de-cumulate.
            }
            let index = *index_of_le
                .get(le)
                .ok_or_else(|| format!("unknown bucket bound le={le:?}: {line}"))?;
            hist.buckets[index] = value;
            continue;
        }
        if let Some(fam) = key.strip_suffix("_sum") {
            if roles
                .get(fam)
                .is_some_and(|(_, kind)| kind.as_str() == "histogram")
            {
                let (source, _) = family_role(&roles, fam, "histogram", line)?;
                hists.entry(source).or_default().sum = value;
                continue;
            }
        }
        if let Some(fam) = key.strip_suffix("_count") {
            if roles
                .get(fam)
                .is_some_and(|(_, kind)| kind.as_str() == "histogram")
            {
                let (source, _) = family_role(&roles, fam, "histogram", line)?;
                hists.entry(source).or_default().count = value;
                continue;
            }
        }
        // Plain families: counter, gauge, hist_min, hist_max.
        let (source, kind) = roles
            .get(key)
            .cloned()
            .ok_or_else(|| format!("sample before its HELP line: {line}"))?;
        match kind.as_str() {
            "counter" => {
                counters.insert(source, value);
            }
            "gauge" => {
                gauges.insert(source, value);
            }
            "hist_min" => hists.entry(source).or_default().min = value,
            "hist_max" => hists.entry(source).or_default().max = value,
            other => return Err(format!("unknown kind={other}: {line}")),
        }
    }

    Ok(Snapshot {
        counters: counters.into_iter().collect(),
        gauges: gauges.into_iter().collect(),
        histograms: hists
            .into_iter()
            .map(|(name, partial)| {
                let mut buckets = if partial.buckets.is_empty() {
                    vec![0; 65]
                } else {
                    partial.buckets
                };
                // Bucket lines are cumulative; recover per-bucket counts by
                // de-cumulating in index order (elided lines carry zero).
                let mut prev = 0u64;
                for b in buckets.iter_mut() {
                    let cumulative = if *b == 0 { prev } else { *b };
                    *b = cumulative - prev;
                    prev = cumulative;
                }
                (
                    name,
                    HistogramSnapshot {
                        count: partial.count,
                        sum: partial.sum,
                        min: partial.min,
                        max: partial.max,
                        buckets,
                    },
                )
            })
            .collect(),
    })
}

fn family_role(
    roles: &BTreeMap<String, (String, String)>,
    fam: &str,
    expect: &str,
    line: &str,
) -> Result<(String, String), String> {
    let (source, kind) = roles
        .get(fam)
        .cloned()
        .ok_or_else(|| format!("sample before its HELP line: {line}"))?;
    if kind != expect {
        return Err(format!("family {fam} is {kind}, expected {expect}: {line}"));
    }
    Ok((source, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn exposition_round_trips_exactly() {
        let r = Registry::default();
        r.counter("vfs.bytes_written").add(123_456);
        r.counter("engine.ticks").inc();
        r.gauge("shard.count").set(4);
        let h = r.histogram("vfs.fsync.nanos");
        for v in [0u64, 1, 900, 900, 1_000_000, u64::MAX] {
            h.record(v);
        }
        r.histogram("engine.empty"); // registered, never recorded
        let snap = r.snapshot();
        let text = render(&snap);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, snap, "parse must invert render exactly");
    }

    #[test]
    fn exposition_shape_is_prometheus_text_format() {
        let r = Registry::default();
        r.counter("vfs.bytes_written").add(9);
        r.histogram("stage.lat").record(1000);
        let text = render(&r.snapshot());
        assert!(
            text.contains("# HELP gpdt_vfs_bytes_written source=vfs.bytes_written kind=counter\n")
        );
        assert!(text.contains("# TYPE gpdt_vfs_bytes_written counter\ngpdt_vfs_bytes_written 9\n"));
        assert!(text.contains("# TYPE gpdt_stage_lat histogram\n"));
        assert!(text.contains("gpdt_stage_lat_bucket{le=\"1023\"} 1\n"));
        assert!(text.contains("gpdt_stage_lat_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("gpdt_stage_lat_sum 1000\n"));
        assert!(text.contains("gpdt_stage_lat_count 1\n"));
        assert!(text.contains("# TYPE gpdt_stage_lat_min gauge\ngpdt_stage_lat_min 1000\n"));
        assert!(text.contains("gpdt_stage_lat_max 1000\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("gpdt_orphan 3").is_err(), "sample before HELP");
        let text = "# HELP gpdt_x source=x kind=counter\ngpdt_x not-a-number";
        assert!(parse(text).is_err());
        let text = "# HELP gpdt_h source=h kind=histogram\ngpdt_h_bucket{le=\"6\"} 1";
        assert!(parse(text).unwrap_err().contains("unknown bucket bound"));
    }
}
