//! The process-wide metrics registry: named atomic counters, gauges and
//! log2-bucket latency histograms.
//!
//! Registration (name → handle) takes a short-lived mutex and leaks the
//! metric so the returned reference is `'static`; every subsequent update is
//! a relaxed atomic operation and never blocks.  Snapshots read the same
//! atomics, so writers are never stopped — a snapshot taken mid-update sees
//! each metric at some valid recent value, and a snapshot taken after
//! writers quiesce is exact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins measurement (queue depths, calibration results).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1` holds
/// values with `i` significant bits (`2^(i-1) ..= 2^i - 1`), up to bucket 64.
const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples (latencies in
/// nanoseconds, byte counts, ...).
///
/// Recording is three relaxed atomic adds; quantiles (p50/p95/p99) are
/// derived from a [`HistogramSnapshot`], with each bucket answered by its
/// upper bound, so a derived quantile is exact to within a factor of two —
/// plenty for "which stage dominates" questions.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a sample: its significant-bit count.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value a bucket can hold (its reported representative).
pub(crate) fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample recorded (`0` before any sample lands).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest sample recorded (`0` before any sample lands).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (exact, not a bucket bound; `0` when empty).
    pub min: u64,
    /// Largest sample (exact, not a bucket bound; `0` when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`Histogram`] for the bucket layout).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (0.0 ..= 1.0), reported as the upper bound
    /// of the bucket the quantile falls into; `0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), clamped to at least the first sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// The mean sample, rounded down; `0` for an empty histogram.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Everything a stats struct needs to expose to join the one snapshot
/// vocabulary: a prefix and its `(name, value)` pairs.
///
/// `EngineStats`, `SearchStats`, `ShardedStats` and the service's load
/// snapshot all implement this, so every layer's numbers can be merged into
/// a [`Snapshot`] (or recorded as registry gauges via
/// [`Registry::record_source`]) under `prefix.name` keys instead of each
/// layer inventing its own reporting shape.
pub trait MetricSource {
    /// Key prefix, e.g. `"engine"`.
    fn metric_prefix(&self) -> &'static str;
    /// The `(name, value)` pairs, e.g. `("ticks_ingested", 42)`.
    fn metric_values(&self) -> Vec<(&'static str, u64)>;
}

#[derive(Default)]
struct Names {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

/// The process-wide metric namespace.  See the [crate docs](crate).
#[derive(Default)]
pub struct Registry {
    names: Mutex<Names>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Names> {
        self.names.lock().expect("metric registration never panics")
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// The handle is `'static`: cache it (the [`counter!`](crate::counter)
    /// macro does) and updates never touch the registration lock again.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut names = self.lock();
        if let Some(c) = names.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::default());
        names.counters.insert(name.to_string(), c);
        c
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut names = self.lock();
        if let Some(g) = names.gauges.get(name) {
            return g;
        }
        let g: &'static Gauge = Box::leak(Box::default());
        names.gauges.insert(name.to_string(), g);
        g
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut names = self.lock();
        if let Some(h) = names.histograms.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::default());
        names.histograms.insert(name.to_string(), h);
        h
    }

    /// Sets one gauge per `(name, value)` pair of `source`, keyed
    /// `prefix.name` — the bridge from per-layer stats structs into the
    /// registry vocabulary.
    pub fn record_source(&self, source: &dyn MetricSource) {
        let prefix = source.metric_prefix();
        for (name, value) in source.metric_values() {
            self.gauge(&format!("{prefix}.{name}")).set(value);
        }
    }

    /// A point-in-time copy of every registered metric, taken without
    /// stopping writers.  Names come out sorted.
    pub fn snapshot(&self) -> Snapshot {
        let names = self.lock();
        Snapshot {
            counters: names
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: names
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: names
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of the whole registry (or any merged set of
/// [`MetricSource`]s) — the one stats shape every layer reports through.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` histogram pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Merges a stats struct into the snapshot as `prefix.name` gauges
    /// (replacing same-named entries), keeping the gauge list sorted.
    pub fn merge_source(&mut self, source: &dyn MetricSource) {
        let prefix = source.metric_prefix();
        for (name, value) in source.metric_values() {
            let key = format!("{prefix}.{name}");
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(&key)) {
                Ok(i) => self.gauges[i].1 = value,
                Err(i) => self.gauges.insert(i, (key, value)),
            }
        }
    }

    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The snapshot of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Serialises the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
    /// "sum":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_pairs(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_pairs(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\
                 \"p95\":{},\"p99\":{}}}",
                json_string(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
        out.push_str("}}");
        out
    }
}

fn push_pairs(out: &mut String, pairs: &[(String, u64)]) {
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(name));
        out.push(':');
        out.push_str(&value.to_string());
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Returns the cached counter for a static name, registering on first use.
///
/// Expands to a call-site `OnceLock`, so the registration lock is taken at
/// most once per site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Returns the cached gauge for a static name, registering on first use.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Returns the cached histogram for a static name, registering on first use.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let r = Registry::default();
        let c = r.counter("t.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("t.count").get(), 5, "same name, same handle");

        let g = r.gauge("t.gauge");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);

        let h = r.histogram("t.hist");
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_006);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(Histogram::default().min(), 0, "empty histogram reports 0");

        let snap = r.snapshot();
        assert_eq!(snap.counter("t.count"), Some(5));
        assert_eq!(snap.gauge("t.gauge"), Some(11));
        assert_eq!(snap.histogram("t.hist").unwrap().count, 6);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_quantiles_land_in_log2_buckets() {
        let h = Histogram::default();
        // 90 fast samples (~1µs) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        // p50/p90 land in the 1µs bucket (upper bound 1023), p95/p99 in the
        // 1ms bucket (upper bound 2^20 - 1).
        assert_eq!(s.quantile(0.50), 1023);
        assert_eq!(s.quantile(0.90), 1023);
        assert_eq!(s.quantile(0.95), (1 << 20) - 1);
        assert_eq!(s.quantile(0.99), (1 << 20) - 1);
        assert_eq!(s.quantile(1.0), (1 << 20) - 1);
        assert_eq!(s.mean(), (90 * 1_000 + 10 * 1_000_000) / 100);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn snapshot_serialises_sorted_json() {
        let r = Registry::default();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.gauge("g").set(9);
        r.histogram("h").record(3);
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.one\":1,\"b.two\":2},\"gauges\":{\"g\":9},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\
             \"mean\":3,\"p50\":3,\"p95\":3,\"p99\":3}}}"
        );
    }

    #[test]
    fn merge_source_joins_the_snapshot_vocabulary() {
        struct Fake;
        impl MetricSource for Fake {
            fn metric_prefix(&self) -> &'static str {
                "fake"
            }
            fn metric_values(&self) -> Vec<(&'static str, u64)> {
                vec![("b", 2), ("a", 1)]
            }
        }
        let mut snap = Snapshot::default();
        snap.merge_source(&Fake);
        assert_eq!(snap.gauge("fake.a"), Some(1));
        assert_eq!(snap.gauge("fake.b"), Some(2));
        assert!(snap.gauges.windows(2).all(|w| w[0].0 < w[1].0));

        let r = Registry::default();
        r.record_source(&Fake);
        assert_eq!(r.snapshot().gauge("fake.a"), Some(1));
    }

    #[test]
    fn concurrent_writers_and_snapshotter_stay_exact() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let r: &'static Registry = Box::leak(Box::default());
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                scope.spawn(move || {
                    // Half the writers share one counter, half use their own,
                    // and everyone hammers one shared histogram.
                    let shared = r.counter("cc.shared");
                    let own = r.counter(&format!("cc.own.{w}"));
                    let h = r.histogram("cc.lat");
                    for i in 0..PER_WRITER {
                        shared.inc();
                        own.inc();
                        h.record(i % 4096);
                    }
                });
            }
            let stop_ref = &stop;
            scope.spawn(move || {
                // Concurrent snapshots must never block writers or observe
                // impossible values (counts above the final totals).  Note a
                // mid-flight histogram may transiently show bucket totals a
                // hair ahead of `count` (record() is three separate relaxed
                // adds), so only monotone upper bounds are asserted here.
                while !stop_ref.load(Ordering::Relaxed) {
                    let snap = r.snapshot();
                    if let Some(v) = snap.counter("cc.shared") {
                        assert!(v <= WRITERS as u64 * PER_WRITER);
                    }
                    if let Some(h) = snap.histogram("cc.lat") {
                        assert!(h.buckets.iter().sum::<u64>() <= WRITERS as u64 * PER_WRITER);
                    }
                    std::thread::yield_now();
                }
            });
            // Let the writers run against live snapshots for a moment, then
            // release the snapshotter; the scope joins everyone.
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                stop_ref.store(true, Ordering::Relaxed);
            });
        });
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("cc.shared"),
            Some(WRITERS as u64 * PER_WRITER),
            "contended counter must be exact after writers join"
        );
        for w in 0..WRITERS {
            assert_eq!(snap.gauge(&format!("cc.own.{w}")), None);
            assert_eq!(
                snap.counter(&format!("cc.own.{w}")),
                Some(PER_WRITER),
                "writer {w}'s private counter must be exact"
            );
        }
        let h = snap.histogram("cc.lat").unwrap();
        assert_eq!(h.count, WRITERS as u64 * PER_WRITER);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }
}
