//! Scoped stage timers: everything between a [`Span`]'s construction and its
//! drop is recorded, in nanoseconds, into a named latency histogram.

use std::time::Instant;

use crate::registry::Histogram;

/// A scoped timer guard.
///
/// Usually constructed through the [`span!`](crate::span) macro, which
/// caches the histogram handle per call site and skips the clock reads
/// entirely when observability is off (the disabled guard holds two `None`s
/// and its drop is a no-op).
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span {
    start: Option<Instant>,
    hist: Option<&'static Histogram>,
    name: &'static str,
}

impl Span {
    /// A live span named `name` recording into `hist` when dropped.  The
    /// name doubles as the trace-event label when `GPDT_TRACE` capture is
    /// on (see [`crate::trace`]).
    pub fn active(name: &'static str, hist: &'static Histogram) -> Span {
        Span {
            start: Some(Instant::now()),
            hist: Some(hist),
            name,
        }
    }

    /// A disabled span whose drop does nothing.
    pub fn disabled() -> Span {
        Span {
            start: None,
            hist: None,
            name: "",
        }
    }

    /// Nanoseconds elapsed so far (`0` for a disabled span).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(start), Some(hist)) = (self.start, self.hist) {
            let nanos = start.elapsed().as_nanos() as u64;
            hist.record(nanos);
            crate::trace::record_span(self.name, start, nanos);
        }
    }
}

/// Times a closure, returning its result and the elapsed nanoseconds.
///
/// The shared timing helper for calibration probes and benches — one
/// monotonic-clock idiom instead of scattered `Instant::now()` pairs.
pub fn time_nanos<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as u64)
}

/// Opens a scoped stage timer recording into the named histogram.
///
/// ```
/// let _span = gpdt_obs::span!("engine.dbscan");
/// // ... stage body; elapsed nanoseconds recorded when `_span` drops ...
/// ```
///
/// When observability is off this is one relaxed atomic load and a no-op
/// guard; when on, the histogram handle comes from a call-site `OnceLock`,
/// so hot loops never touch the registration lock.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::Span::active($name, $crate::histogram!($name))
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn span_records_into_its_histogram_on_drop() {
        let r = Registry::default();
        let h = r.histogram("sp.stage");
        {
            let _span = Span::active("sp.stage", h);
            std::hint::black_box(17u64);
        }
        assert_eq!(h.count(), 1);

        {
            let _span = Span::disabled();
        }
        assert_eq!(h.count(), 1, "disabled span must not record");
    }

    #[test]
    fn time_nanos_returns_the_closure_result() {
        let (value, nanos) = time_nanos(|| (0..100u64).sum::<u64>());
        assert_eq!(value, 4950);
        // A monotonic clock can legally report 0ns for a trivial closure;
        // just check it did not come back absurd.
        assert!(nanos < 1_000_000_000);
    }

    #[test]
    fn span_macro_respects_the_gate() {
        let _guard = crate::gate_test_lock();
        crate::set_enabled(false);
        {
            let span = crate::span!("sp.gated");
            assert_eq!(span.elapsed_nanos(), 0);
        }
        assert_eq!(crate::registry().histogram("sp.gated").count(), 0);

        crate::set_enabled(true);
        {
            let _span = crate::span!("sp.gated");
        }
        assert_eq!(crate::registry().histogram("sp.gated").count(), 1);
    }
}
