//! A dependency-free HTTP/1.1 telemetry responder on `std::net::TcpListener`
//! — just enough protocol to be scraped by Prometheus, `curl`, or a raw
//! `TcpStream` in tests.  Off by default; `GPDT_METRICS_ADDR` (e.g.
//! `127.0.0.1:9464`, port `0` for an OS-assigned port) turns it on via
//! [`crate::telemetry_from_env`].
//!
//! Routes:
//!
//! | path        | body                                                       |
//! |-------------|------------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of the live registry snapshot   |
//! | `/health`   | JSON: up/degraded, ingest progress, shard restarts, watchdog verdicts |
//! | `/flightrec`| the flight recorder ring as JSON, live                     |
//!
//! One short-lived connection per request (`Connection: close`), served from
//! a single poll thread: the accept loop runs nonblocking with a 10ms nap,
//! so dropping the server joins promptly and no request can wedge it for
//! longer than the 500ms per-connection I/O timeout.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::recorder::FlightRecorder;
use crate::registry::Registry;
use crate::series::TimeSeries;
use crate::watchdog::Watchdog;
use crate::{expo, health};

/// What the responder serves from — injectable so tests can run a private
/// registry/recorder pair instead of the process-global ones.
#[derive(Clone)]
pub struct ServeContext {
    /// The registry `/metrics` snapshots.
    pub registry: &'static Registry,
    /// The recorder `/flightrec` dumps.
    pub recorder: &'static FlightRecorder,
    /// The sampler's windowed series, when one is running (unused by the
    /// current routes directly, but the watchdog verdicts on `/health` are
    /// computed from it by the sampler thread).
    pub series: Option<Arc<Mutex<TimeSeries>>>,
    /// The watchdog whose verdicts `/health` reports.
    pub watchdog: Option<Arc<Watchdog>>,
}

impl ServeContext {
    /// The process-global registry and recorder, no sampler attached.
    pub fn global() -> ServeContext {
        ServeContext {
            registry: crate::registry(),
            recorder: crate::flight(),
            series: None,
            watchdog: None,
        }
    }
}

/// The serving thread's handle.  Dropping it stops the listener and joins.
pub struct TelemetryServer {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (host:port; port 0 for an OS-assigned one) and starts
    /// serving.
    pub fn bind(addr: &str, ctx: ServeContext) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_shutdown = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("gpdt-obs-http".into())
            .spawn(move || {
                while !thread_shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: telemetry bodies are small and
                            // scrapers are few; a wedged peer is bounded by
                            // the I/O timeouts.
                            let _ = serve_one(stream, &ctx);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })
            .expect("spawning the telemetry server thread never fails");
        Ok(TelemetryServer {
            local_addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address — with port 0 binds, where the OS actually put us.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

fn serve_one(mut stream: TcpStream, ctx: &ServeContext) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let path = match read_request_path(&mut stream) {
        Ok(path) => path,
        Err(_) => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    match path.as_str() {
        "/metrics" => {
            let body = expo::render(&ctx.registry.snapshot());
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/health" => {
            let verdicts = ctx
                .watchdog
                .as_ref()
                .map(|w| w.verdicts())
                .unwrap_or_default();
            let body = health::render_json(&verdicts, ctx.recorder);
            respond(&mut stream, 200, "application/json", &body)
        }
        "/flightrec" => respond(
            &mut stream,
            200,
            "application/json",
            &ctx.recorder.to_json(),
        ),
        _ => respond(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

/// Reads up to the end of the request headers and returns the request-line
/// path.  Anything that is not a well-formed `GET <path> HTTP/1.x` request
/// line within 8KB is an error.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if method != "GET" || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unsupported request line: {request_line:?}"),
        ));
    }
    // Strip any query string; the routes take no parameters.
    Ok(path.split('?').next().unwrap_or(path).to_string())
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal scrape client: one GET, read to EOF, split head and body.
    pub(crate) fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_flightrec_and_404() {
        let _guard = crate::gate_test_lock();
        crate::set_enabled(true);
        let registry: &'static Registry = Box::leak(Box::default());
        let recorder: &'static FlightRecorder =
            Box::leak(Box::new(FlightRecorder::with_capacity(8)));
        registry.counter("ep.requests").add(3);
        recorder.record("ep.event", Some(1), "hello");
        let server = TelemetryServer::bind(
            "127.0.0.1:0",
            ServeContext {
                registry,
                recorder,
                series: None,
                watchdog: None,
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let (head, body) = scrape(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert!(body.contains("gpdt_ep_requests 3\n"));

        let (head, body) = scrape(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.starts_with("{\"status\":"));
        assert!(body.contains("\"flight_events_recorded\":1"));

        let (head, body) = scrape(addr, "/flightrec");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"kind\":\"ep.event\""));
        assert!(body.contains("\"dropped\":0"));

        let (head, _) = scrape(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        // Query strings are tolerated and stripped.
        let (head, _) = scrape(addr, "/metrics?format=prometheus");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        drop(server);
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        s.set_read_timeout(Some(Duration::from_millis(200)))?;
                        s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n")?;
                        let mut out = String::new();
                        s.read_to_string(&mut out).map(|_| out.is_empty())
                    })
                    .unwrap_or(true),
            "a dropped server must stop answering"
        );
    }

    #[test]
    fn rejects_non_get_requests() {
        let registry: &'static Registry = Box::leak(Box::default());
        let recorder: &'static FlightRecorder =
            Box::leak(Box::new(FlightRecorder::with_capacity(2)));
        let server = TelemetryServer::bind(
            "127.0.0.1:0",
            ServeContext {
                registry,
                recorder,
                series: None,
                watchdog: None,
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
}
