//! The SLO watchdog: threshold rules evaluated over sampled windows that
//! flip `/health` to degraded and journal `watchdog.fired` /
//! `watchdog.cleared` events into the flight recorder, so "the service got
//! slow at 14:02" is on the record even if nobody was scraping.
//!
//! Three rule families ship by default, each env-tunable and disableable
//! with `0`:
//!
//! | rule            | fires when                                              | knob                  | default |
//! |-----------------|---------------------------------------------------------|-----------------------|---------|
//! | `ingest_stall`  | `service.batches` has moved before but not recently      | `GPDT_SLO_STALL_MS`   | 30000   |
//! | `fsync_p99`     | `vfs.fsync.nanos` p99 over the lookback above threshold | `GPDT_SLO_FSYNC_P99_MS` | 2000  |
//! | `degraded_dwell`| the service has sat degraded too long                   | `GPDT_SLO_DEGRADED_MS`| 10000   |
//!
//! The sampler thread calls [`Watchdog::evaluate`] after every sample; tests
//! drive it directly with an injected clock.

use std::sync::Mutex;
use std::time::Duration;

use crate::recorder::FlightRecorder;
use crate::registry::json_string;
use crate::series::TimeSeries;

/// How far back windowed rules look.
const LOOKBACK: Duration = Duration::from_secs(10);

/// One threshold rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule name, e.g. `"fsync_p99"` — the `/health` verdict key.
    pub name: &'static str,
    /// What the rule checks.
    pub kind: RuleKind,
}

/// The rule families the watchdog knows how to evaluate.
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// Fires when `metric`'s windowed quantile `q` exceeds
    /// `threshold_nanos` over the lookback.
    QuantileAbove {
        metric: &'static str,
        q: f64,
        threshold_nanos: u64,
    },
    /// Fires when `metric` has moved at least once but not within
    /// `max_age_nanos` — progress stopped, not "never started".
    Stall {
        metric: &'static str,
        max_age_nanos: u64,
    },
    /// Fires when the service has been degraded (per
    /// [`crate::health::degraded_since_nanos`]) longer than `max_nanos`.
    DegradedDwell { max_nanos: u64 },
}

#[derive(Debug, Default, Clone)]
struct RuleState {
    fired: bool,
    detail: String,
}

/// One rule's current verdict, as served on `/health`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The rule name.
    pub rule: String,
    /// Whether the rule is currently firing.
    pub fired: bool,
    /// Human-readable evidence for the current state.
    pub detail: String,
}

impl Verdict {
    pub(crate) fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"fired\":{},\"detail\":{}}}",
            json_string(&self.rule),
            self.fired,
            json_string(&self.detail)
        )
    }
}

/// The rule engine.  See the [module docs](self).
pub struct Watchdog {
    rules: Vec<Rule>,
    state: Mutex<Vec<RuleState>>,
}

fn env_ms(name: &str, default_ms: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default_ms)
}

impl Watchdog {
    /// A watchdog over an explicit rule set.
    pub fn new(rules: Vec<Rule>) -> Watchdog {
        let state = vec![RuleState::default(); rules.len()];
        Watchdog {
            rules,
            state: Mutex::new(state),
        }
    }

    /// The default rule set with `GPDT_SLO_*` thresholds (milliseconds; `0`
    /// disables a rule).
    pub fn from_env() -> Watchdog {
        let mut rules = Vec::new();
        let stall_ms = env_ms("GPDT_SLO_STALL_MS", 30_000);
        if stall_ms > 0 {
            rules.push(Rule {
                name: "ingest_stall",
                kind: RuleKind::Stall {
                    metric: "service.batches",
                    max_age_nanos: stall_ms * 1_000_000,
                },
            });
        }
        let fsync_ms = env_ms("GPDT_SLO_FSYNC_P99_MS", 2_000);
        if fsync_ms > 0 {
            rules.push(Rule {
                name: "fsync_p99",
                kind: RuleKind::QuantileAbove {
                    metric: "vfs.fsync.nanos",
                    q: 0.99,
                    threshold_nanos: fsync_ms * 1_000_000,
                },
            });
        }
        let degraded_ms = env_ms("GPDT_SLO_DEGRADED_MS", 10_000);
        if degraded_ms > 0 {
            rules.push(Rule {
                name: "degraded_dwell",
                kind: RuleKind::DegradedDwell {
                    max_nanos: degraded_ms * 1_000_000,
                },
            });
        }
        Watchdog::new(rules)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<RuleState>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Evaluates every rule against the sampled windows at `now_nanos`,
    /// journalling fire/clear transitions into `recorder`.
    pub fn evaluate(&self, series: &TimeSeries, now_nanos: u64, recorder: &FlightRecorder) {
        let mut state = self.lock();
        for (rule, state) in self.rules.iter().zip(state.iter_mut()) {
            let (firing, detail) = match &rule.kind {
                RuleKind::QuantileAbove {
                    metric,
                    q,
                    threshold_nanos,
                } => {
                    let quantile = series
                        .histogram_over(metric, LOOKBACK, now_nanos)
                        .filter(|h| h.count > 0)
                        .map(|h| h.quantile(*q));
                    match quantile {
                        Some(value) if value > *threshold_nanos => (
                            true,
                            format!(
                                "{metric} p{:02.0} {:.3}ms > {:.3}ms over last {}s",
                                q * 100.0,
                                value as f64 / 1e6,
                                *threshold_nanos as f64 / 1e6,
                                LOOKBACK.as_secs()
                            ),
                        ),
                        Some(value) => (
                            false,
                            format!(
                                "{metric} p{:02.0} {:.3}ms within budget",
                                q * 100.0,
                                value as f64 / 1e6
                            ),
                        ),
                        None => (false, format!("{metric}: no samples in window")),
                    }
                }
                RuleKind::Stall {
                    metric,
                    max_age_nanos,
                } => match series.age_of_last_change(metric, now_nanos) {
                    Some(age) if age > *max_age_nanos => (
                        true,
                        format!(
                            "{metric} stalled for {:.1}s (limit {:.1}s)",
                            age as f64 / 1e9,
                            *max_age_nanos as f64 / 1e9
                        ),
                    ),
                    Some(age) => (
                        false,
                        format!("{metric} moved {:.1}s ago", age as f64 / 1e9),
                    ),
                    None => (false, format!("{metric}: no progress recorded yet")),
                },
                RuleKind::DegradedDwell { max_nanos } => {
                    match crate::health::degraded_since_nanos() {
                        Some(since) => {
                            let dwell = now_nanos.saturating_sub(since);
                            if dwell > *max_nanos {
                                (
                                    true,
                                    format!(
                                        "degraded for {:.1}s (limit {:.1}s)",
                                        dwell as f64 / 1e9,
                                        *max_nanos as f64 / 1e9
                                    ),
                                )
                            } else {
                                (false, format!("degraded for {:.1}s", dwell as f64 / 1e9))
                            }
                        }
                        None => (false, "not degraded".to_string()),
                    }
                }
            };
            if firing && !state.fired {
                recorder.record("watchdog.fired", None, format!("{}: {detail}", rule.name));
                crate::counter!("obs.watchdog.fired").inc();
            } else if !firing && state.fired {
                recorder.record("watchdog.cleared", None, format!("{}: {detail}", rule.name));
                crate::counter!("obs.watchdog.cleared").inc();
            }
            state.fired = firing;
            state.detail = detail;
        }
    }

    /// The current verdict of every rule, in rule order.
    pub fn verdicts(&self) -> Vec<Verdict> {
        self.rules
            .iter()
            .zip(self.lock().iter())
            .map(|(rule, state)| Verdict {
                rule: rule.name.to_string(),
                fired: state.fired,
                detail: state.detail.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn stall_and_quantile_rules_fire_and_clear_in_causal_order() {
        let _guard = crate::gate_test_lock();
        crate::set_enabled(true);
        let r = Registry::default();
        let rec = FlightRecorder::with_capacity(64);
        let wd = Watchdog::new(vec![
            Rule {
                name: "ingest_stall",
                kind: RuleKind::Stall {
                    metric: "service.batches",
                    max_age_nanos: 3 * SEC,
                },
            },
            Rule {
                name: "fsync_p99",
                kind: RuleKind::QuantileAbove {
                    metric: "vfs.fsync.nanos",
                    q: 0.99,
                    threshold_nanos: 2_000_000,
                },
            },
        ]);
        let mut series = TimeSeries::with_capacity(64);

        // t=1s: progress, fast fsyncs — nothing fires.
        r.counter("service.batches").inc();
        r.histogram("vfs.fsync.nanos").record(100_000);
        series.sample(SEC, &r.snapshot());
        wd.evaluate(&series, SEC, &rec);
        assert!(wd.verdicts().iter().all(|v| !v.fired));
        assert_eq!(rec.recorded(), 0, "quiet rules journal nothing");

        // t=2s: a slow fsync arrives -> fsync_p99 fires.
        r.histogram("vfs.fsync.nanos").record(50_000_000);
        series.sample(2 * SEC, &r.snapshot());
        wd.evaluate(&series, 2 * SEC, &rec);
        let verdicts = wd.verdicts();
        assert!(!verdicts[0].fired);
        assert!(verdicts[1].fired, "{:?}", verdicts[1]);

        // t=6s: no batches since t=1s -> the stall rule joins in.
        series.sample(6 * SEC, &r.snapshot());
        wd.evaluate(&series, 6 * SEC, &rec);
        assert!(wd.verdicts()[0].fired);

        // t=14s: progress resumes and the slow fsync ages out of the 10s
        // lookback -> both rules clear.
        r.counter("service.batches").inc();
        series.sample(14 * SEC, &r.snapshot());
        wd.evaluate(&series, 14 * SEC, &rec);
        assert!(wd.verdicts().iter().all(|v| !v.fired));

        // The journal shows fire -> fire -> clear -> clear, causally ordered
        // by seq, one transition each.
        let events = rec.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                "watchdog.fired",
                "watchdog.fired",
                "watchdog.cleared",
                "watchdog.cleared"
            ]
        );
        assert!(
            events[0].detail.starts_with("fsync_p99:"),
            "{:?}",
            events[0]
        );
        assert!(events[1].detail.starts_with("ingest_stall:"));
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn degraded_dwell_tracks_global_health() {
        let _guard = crate::gate_test_lock();
        crate::set_enabled(true);
        crate::health::reset_for_tests();
        let rec = FlightRecorder::with_capacity(8);
        let wd = Watchdog::new(vec![Rule {
            name: "degraded_dwell",
            kind: RuleKind::DegradedDwell { max_nanos: SEC },
        }]);
        let series = TimeSeries::with_capacity(4);

        crate::health::set_degraded(3, "injected");
        let since = crate::health::degraded_since_nanos().unwrap();
        wd.evaluate(&series, since + SEC / 2, &rec);
        assert!(!wd.verdicts()[0].fired, "short dwell stays quiet");
        wd.evaluate(&series, since + 2 * SEC, &rec);
        assert!(wd.verdicts()[0].fired);
        crate::health::set_recovered();
        wd.evaluate(&series, since + 3 * SEC, &rec);
        assert!(!wd.verdicts()[0].fired);
        let kinds: Vec<&str> = rec.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["watchdog.fired", "watchdog.cleared"]);
        crate::health::reset_for_tests();
    }

    #[test]
    fn from_env_builds_the_default_rule_set() {
        let wd = Watchdog::from_env();
        let names: Vec<&str> = wd.rules.iter().map(|r| r.name).collect();
        assert_eq!(names, ["ingest_stall", "fsync_p99", "degraded_dwell"]);
    }
}
