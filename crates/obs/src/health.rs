//! Process-wide health state for the `/health` endpoint: whether the
//! service is up or degraded (and since when), how far ingest has advanced,
//! and per-shard restart counts.  `MonitorService` pushes transitions here;
//! the telemetry server and the watchdog's degraded-dwell rule read them.

use std::sync::Mutex;

use crate::recorder::FlightRecorder;
use crate::registry::json_string;
use crate::watchdog::Verdict;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthInfo {
    /// Whether the supervised service is running degraded, and the batch and
    /// epoch-nanos instant it entered that state.
    pub degraded_since: Option<(u64, u64)>,
    /// Reason the service degraded, when it has.
    pub degraded_reason: String,
    /// Latest engine tick the service applied.
    pub last_ingest_tick: Option<u32>,
    /// Batches the service has applied.
    pub batches_applied: u64,
    /// Per-shard worker restart counts (empty for a single-engine service).
    pub shard_restarts: Vec<u64>,
}

fn state() -> &'static Mutex<HealthInfo> {
    static STATE: Mutex<HealthInfo> = Mutex::new(HealthInfo {
        degraded_since: None,
        degraded_reason: String::new(),
        last_ingest_tick: None,
        batches_applied: 0,
        shard_restarts: Vec::new(),
    });
    &STATE
}

fn lock() -> std::sync::MutexGuard<'static, HealthInfo> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Marks the service degraded as of `batch` (stamped with the current
/// epoch-nanos) — called on degraded-mode entry.
pub fn set_degraded(batch: u64, reason: &str) {
    let mut s = lock();
    if s.degraded_since.is_none() {
        s.degraded_since = Some((batch, crate::now_nanos()));
    }
    s.degraded_reason = reason.to_string();
}

/// Clears the degraded flag — called when supervised recovery succeeds.
pub fn set_recovered() {
    let mut s = lock();
    s.degraded_since = None;
    s.degraded_reason.clear();
}

/// Records ingest progress and the current per-shard restart counts after an
/// applied batch.
pub fn note_ingest(tick: Option<u32>, shard_restarts: &[u64]) {
    let mut s = lock();
    if tick.is_some() {
        s.last_ingest_tick = tick;
    }
    s.batches_applied += 1;
    if s.shard_restarts.as_slice() != shard_restarts {
        s.shard_restarts = shard_restarts.to_vec();
    }
}

/// Epoch-nanos the service has been degraded since, if it is — the
/// watchdog's degraded-dwell input.
pub fn degraded_since_nanos() -> Option<u64> {
    lock().degraded_since.map(|(_, nanos)| nanos)
}

/// A copy of the current health state.
pub fn info() -> HealthInfo {
    lock().clone()
}

/// Resets the process-wide state (tests only — health is global).
pub fn reset_for_tests() {
    *lock() = HealthInfo::default();
}

/// Renders the `/health` JSON body: overall status (`"degraded"` when the
/// service is degraded **or** any watchdog rule is firing), degraded-since
/// coordinates, ingest progress, per-shard restarts, watchdog verdicts and
/// flight-recorder saturation.
pub fn render_json(verdicts: &[Verdict], recorder: &FlightRecorder) -> String {
    let info = info();
    let now = crate::now_nanos();
    let watchdog_firing = verdicts.iter().any(|v| v.fired);
    let degraded = info.degraded_since.is_some() || watchdog_firing;
    let mut out = String::from("{\"status\":");
    out.push_str(if degraded { "\"degraded\"" } else { "\"up\"" });
    out.push_str(",\"degraded_since_batch\":");
    match info.degraded_since {
        Some((batch, _)) => out.push_str(&batch.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"degraded_for_ms\":");
    match info.degraded_since {
        Some((_, nanos)) => {
            out.push_str(&(now.saturating_sub(nanos) / 1_000_000).to_string());
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"degraded_reason\":");
    out.push_str(&json_string(&info.degraded_reason));
    out.push_str(",\"last_ingest_tick\":");
    match info.last_ingest_tick {
        Some(t) => out.push_str(&t.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(&format!(",\"batches_applied\":{}", info.batches_applied));
    out.push_str(",\"shard_restarts\":[");
    for (i, n) in info.shard_restarts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&n.to_string());
    }
    out.push_str("],\"watchdog\":[");
    for (i, v) in verdicts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_json());
    }
    out.push_str(&format!(
        "],\"flight_events_recorded\":{},\"flight_events_dropped\":{},\"uptime_ms\":{}}}",
        recorder.recorded(),
        recorder.dropped(),
        now / 1_000_000,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Health is process-global state, so one serialized test covers the
    // transitions end to end.
    #[test]
    fn health_transitions_and_json_render() {
        let _guard = crate::gate_test_lock();
        crate::set_enabled(true);
        reset_for_tests();
        let rec = FlightRecorder::with_capacity(4);

        let json = render_json(&[], &rec);
        assert!(json.starts_with("{\"status\":\"up\",\"degraded_since_batch\":null"));
        assert!(json.contains("\"shard_restarts\":[]"));
        assert!(json.contains("\"watchdog\":[]"));

        note_ingest(Some(41), &[0, 2]);
        note_ingest(Some(42), &[0, 2]);
        set_degraded(7, "checkpoint failed: \"disk\"");
        let json = render_json(&[], &rec);
        assert!(json.starts_with("{\"status\":\"degraded\",\"degraded_since_batch\":7"));
        assert!(json.contains("\"degraded_reason\":\"checkpoint failed: \\\"disk\\\"\""));
        assert!(json.contains("\"last_ingest_tick\":42"));
        assert!(json.contains("\"batches_applied\":2"));
        assert!(json.contains("\"shard_restarts\":[0,2]"));
        assert!(degraded_since_nanos().is_some());

        // A later degradation reason updates, but the entry instant sticks.
        let first = info().degraded_since;
        set_degraded(9, "still down");
        assert_eq!(info().degraded_since, first);

        set_recovered();
        assert_eq!(degraded_since_nanos(), None);
        let verdict = Verdict {
            rule: "fsync_p99".to_string(),
            fired: true,
            detail: "p99 12ms > 2ms".to_string(),
        };
        let json = render_json(&[verdict], &rec);
        assert!(
            json.starts_with("{\"status\":\"degraded\""),
            "a firing watchdog flips status even when the service is up"
        );
        assert!(json.contains("\"rule\":\"fsync_p99\""));
        reset_for_tests();
    }
}
