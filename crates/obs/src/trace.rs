//! Chrome-trace span capture: when `GPDT_TRACE=<path>` is set, every
//! [`span!`](crate::span) records a complete event (`"ph":"X"`) into a
//! bounded per-thread buffer, and [`dump_if_enabled`] writes the whole
//! capture as trace-event-format JSON loadable in `chrome://tracing` or
//! Perfetto — a real timeline of dbscan→sweep→gathering→merge per tick.
//!
//! Capture piggybacks on the span guards, so it only sees what the
//! histogram layer sees and costs nothing when off (spans check one relaxed
//! atomic load before touching a buffer).  Buffers are bounded per thread;
//! overflow increments a drop count surfaced in the dump's `otherData`, so
//! saturation is visible instead of silent.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::registry::json_string;

/// Per-thread event bound: ~64Ki complete events (~1.5MB) before dropping.
const PER_THREAD_CAP: usize = 1 << 16;

/// One complete ("X") trace event, timestamped against the process epoch.
#[derive(Debug, Clone)]
struct TraceEvent {
    name: &'static str,
    ts_nanos: u64,
    dur_nanos: u64,
}

struct ThreadBuf {
    tid: u32,
    thread_name: String,
    events: Vec<TraceEvent>,
    dropped: u64,
}

fn buffers() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Mutex<ThreadBuf>>> =
        const { std::cell::OnceCell::new() };
}

/// Capture gate: 0 = unresolved, 1 = off, 2 = on.
static TRACE_GATE: AtomicU8 = AtomicU8::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Whether span capture is on — resolved once from `GPDT_TRACE` (set and
/// non-empty means on) and cached, so the steady-state cost on every span
/// drop is one relaxed atomic load.
pub fn capture_enabled() -> bool {
    match TRACE_GATE.load(Ordering::Relaxed) {
        0 => {
            let on = trace_path().is_some();
            TRACE_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        state => state == 2,
    }
}

/// Overrides the `GPDT_TRACE` capture gate for this process (tests and the
/// worst-case overhead ablation; regular code leaves it to the environment).
pub fn set_capture_for_tests(on: bool) {
    TRACE_GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The trace output path from `GPDT_TRACE`, if set and non-empty.
pub fn trace_path() -> Option<PathBuf> {
    match std::env::var_os("GPDT_TRACE") {
        Some(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// The process epoch all trace timestamps are measured from.  Initialised on
/// first use; [`crate::now_nanos`] shares it, so sampler windows and trace
/// events live on the same clock.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Records one completed span into this thread's buffer.  Called from
/// [`Span::drop`](crate::Span); a no-op unless capture is on.
pub(crate) fn record_span(name: &'static str, start: Instant, dur_nanos: u64) {
    if !capture_enabled() {
        return;
    }
    let ts_nanos = start.saturating_duration_since(epoch()).as_nanos() as u64;
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(Mutex::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                thread_name: std::thread::current()
                    .name()
                    .unwrap_or("worker")
                    .to_string(),
                events: Vec::new(),
                dropped: 0,
            }));
            lock(buffers()).push(Arc::clone(&buf));
            buf
        });
        let mut buf = lock(buf);
        if buf.events.len() < PER_THREAD_CAP {
            buf.events.push(TraceEvent {
                name,
                ts_nanos,
                dur_nanos,
            });
        } else {
            buf.dropped += 1;
        }
    });
}

/// Total events captured so far across all threads (tests, progress lines).
pub fn captured_events() -> u64 {
    lock(buffers())
        .iter()
        .map(|b| lock(b).events.len() as u64)
        .sum()
}

/// Serialises every thread's capture as Chrome trace-event-format JSON:
/// thread-name metadata events plus one `"ph":"X"` complete event per span,
/// `ts`/`dur` in microseconds.
pub fn to_json() -> String {
    let buffers = lock(buffers());
    let mut dropped = 0u64;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for buf in buffers.iter() {
        let buf = lock(buf);
        dropped += buf.dropped;
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            buf.tid,
            json_string(&buf.thread_name)
        ));
        for event in &buf.events {
            out.push_str(&format!(
                ",{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                buf.tid,
                json_string(event.name),
                event.ts_nanos as f64 / 1_000.0,
                event.dur_nanos as f64 / 1_000.0,
            ));
        }
    }
    out.push_str(&format!(
        "],\"otherData\":{{\"dropped_events\":\"{dropped}\"}}}}"
    ));
    out
}

/// Writes the capture to `path`.
pub fn dump_to(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_json())
}

/// Writes the capture to the `GPDT_TRACE` path if tracing is on, reporting
/// the destination (or a failure) on stderr.  The fig bins call this once at
/// exit through the report writer, so every bench run with `GPDT_TRACE` set
/// leaves a timeline behind.
pub fn dump_if_enabled() {
    let Some(path) = trace_path() else { return };
    match dump_to(&path) {
        Ok(()) => eprintln!(
            "gpdt-obs: wrote {} trace events to {}",
            captured_events(),
            path.display()
        ),
        Err(e) => eprintln!("gpdt-obs: trace dump to {} failed: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Capture state is process-global, so one test exercises the whole
    // surface to avoid cross-test interference under the parallel harness.
    #[test]
    fn capture_records_spans_and_dumps_valid_trace_json() {
        let _guard = crate::gate_test_lock();
        crate::set_enabled(true);
        set_capture_for_tests(true);
        {
            let _span = crate::span!("trace.stage.a");
            std::hint::black_box(3u64);
        }
        std::thread::Builder::new()
            .name("trace-worker".into())
            .spawn(|| {
                let _span = crate::span!("trace.stage.b");
            })
            .unwrap()
            .join()
            .unwrap();
        set_capture_for_tests(false);

        let before = captured_events();
        assert!(before >= 2, "both spans captured (got {before})");
        {
            let _span = crate::span!("trace.stage.gated");
        }
        assert_eq!(captured_events(), before, "capture off records nothing");

        let json = to_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"trace.stage.a\""));
        assert!(json.contains("\"name\":\"trace.stage.b\""));
        assert!(json.contains("\"args\":{\"name\":\"trace-worker\"}"));
        assert!(json.ends_with("\"otherData\":{\"dropped_events\":\"0\"}}"));

        let dir = std::env::temp_dir().join("gpdt-obs-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        dump_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), to_json());
        std::fs::remove_dir_all(&dir).ok();
    }
}
