//! The flight recorder: a bounded in-memory ring of structured supervision
//! events (retries, backoffs, worker panics, degraded transitions, shard
//! rebuilds, tail repairs, injected faults), dumpable to JSON so a crash
//! leaves a post-mortem artifact instead of a bare exit code.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::registry::json_string;

/// Default ring capacity: enough for the whole crash lattice without ever
/// growing, small enough to be free to keep around.
const DEFAULT_CAPACITY: usize = 1024;

/// Ring capacity for the [global recorder](flight): `GPDT_OBS_EVENTS`
/// (clamped to at least 1), defaulting to [`DEFAULT_CAPACITY`].
fn capacity_from_env() -> usize {
    std::env::var("GPDT_OBS_EVENTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_CAPACITY)
}

/// One recorded supervision event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number, never reused even after the ring wraps —
    /// a gap between consecutive dumped events means the ring dropped some.
    pub seq: u64,
    /// Engine tick the event refers to, when one is in scope.
    pub tick: Option<u32>,
    /// Stable event kind, e.g. `"service.retry"` or `"shard.rebuild"`.
    pub kind: &'static str,
    /// Free-form human-readable context.
    pub detail: String,
}

impl FlightEvent {
    fn to_json(&self) -> String {
        let mut out = format!("{{\"seq\":{},\"tick\":", self.seq);
        match self.tick {
            Some(t) => out.push_str(&t.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"kind\":");
        out.push_str(&json_string(self.kind));
        out.push_str(",\"detail\":");
        out.push_str(&json_string(&self.detail));
        out.push('}');
        out
    }
}

struct Ring {
    next_seq: u64,
    events: VecDeque<FlightEvent>,
}

/// A bounded ring buffer of [`FlightEvent`]s.  See the [crate docs](crate).
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                next_seq: 0,
                events: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // Poisoning cannot leave the ring in a broken state (every mutation
        // is a single push/pop), so keep recording through it.
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends an event, evicting the oldest once the ring is full.
    /// A no-op while observability is [off](crate::enabled).
    pub fn record(&self, kind: &'static str, tick: Option<u32>, detail: impl Into<String>) {
        if !crate::enabled() {
            return;
        }
        let mut ring = self.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(FlightEvent {
            seq,
            tick,
            kind,
            detail: detail.into(),
        });
    }

    /// Total events ever recorded (including ones the ring has dropped).
    pub fn recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Events the ring has evicted to stay within capacity — nonzero means
    /// the dump is a suffix of the real history, not all of it.
    pub fn dropped(&self) -> u64 {
        let ring = self.lock();
        ring.next_seq - ring.events.len() as u64
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Serialises the retained events as
    /// `{"recorded":N,"dropped":N,"events":[{"seq":..,"tick":..,"kind":..,
    /// "detail":..},..]}` — `dropped` counts ring evictions, so saturation
    /// is visible in the dump instead of silent.
    pub fn to_json(&self) -> String {
        let ring = self.lock();
        let mut out = format!(
            "{{\"recorded\":{},\"dropped\":{},\"events\":[",
            ring.next_seq,
            ring.next_seq - ring.events.len() as u64
        );
        for (i, event) in ring.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Writes the JSON dump to `path` (atomically enough for a post-mortem:
    /// single create + write + flush).
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())?;
        file.flush()
    }

    /// Writes the JSON dump to [`crate::dump_path`], reporting failures to
    /// stderr instead of propagating them — dump sites are always on error
    /// paths already.
    pub fn dump(&self) {
        let path = crate::dump_path();
        if let Err(e) = self.dump_to(&path) {
            eprintln!(
                "gpdt-obs: flight-recorder dump to {} failed: {e}",
                path.display()
            );
        }
    }
}

/// The global flight recorder.  Its capacity comes from `GPDT_OBS_EVENTS`
/// (default 1024), read once on first use.
pub fn flight() -> &'static FlightRecorder {
    static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
    FLIGHT.get_or_init(|| FlightRecorder::with_capacity(capacity_from_env()))
}

/// Records into the [global recorder](flight) — the one-line call sites use.
pub fn record_event(kind: &'static str, tick: Option<u32>, detail: impl Into<String>) {
    flight().record(kind, tick, detail);
}

/// Installs a process panic hook (once; later calls are no-ops) that dumps
/// the global flight recorder to [`crate::dump_path`] before the default
/// hook runs, so a crashed run leaves its event trail on disk.
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if crate::enabled() {
            record_event("panic", None, info.to_string());
            flight().dump();
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5u32 {
            rec.record("test.event", Some(i), format!("event {i}"));
        }
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[2].tick, Some(4));
        assert_eq!(events[2].detail, "event 4");
    }

    #[test]
    fn json_dump_round_trips_shape_and_escaping() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record("service.retry", Some(7), "attempt 1 of 3, \"transient\"");
        rec.record("service.degraded.enter", None, "line1\nline2");
        let json = rec.to_json();
        assert_eq!(
            json,
            "{\"recorded\":2,\"dropped\":0,\"events\":[\
             {\"seq\":0,\"tick\":7,\"kind\":\"service.retry\",\
             \"detail\":\"attempt 1 of 3, \\\"transient\\\"\"},\
             {\"seq\":1,\"tick\":null,\"kind\":\"service.degraded.enter\",\
             \"detail\":\"line1\\nline2\"}]}"
        );
    }

    #[test]
    fn dump_to_writes_the_json_file() {
        let dir = std::env::temp_dir().join("gpdt-obs-recorder-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.json");
        let rec = FlightRecorder::with_capacity(4);
        rec.record("tail.repair", Some(3), "truncated 12 bytes");
        rec.dump_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"kind\":\"tail.repair\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_respects_the_gate() {
        let _guard = crate::gate_test_lock();
        let rec = FlightRecorder::with_capacity(4);
        crate::set_enabled(false);
        rec.record("test.gated", None, "dropped");
        assert_eq!(rec.recorded(), 0);
        crate::set_enabled(true);
        rec.record("test.gated", None, "kept");
        assert_eq!(rec.recorded(), 1);
    }
}
