//! Windowed time-series over registry snapshots: a sampler thread (or an
//! injected clock, in tests) diffs consecutive [`Snapshot`]s into bounded
//! rings of per-window deltas, turning lifetime aggregates into live
//! queries — "ingest rate over the last second", "fsync p99 over the last
//! ten seconds" — without ever touching the hot-path atomics beyond the
//! reads a snapshot already does.
//!
//! All timestamps are nanoseconds since the process epoch shared with the
//! trace layer ([`crate::now_nanos`]), so sampler windows, trace events and
//! watchdog verdicts line up on one clock.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::recorder::FlightRecorder;
use crate::registry::{HistogramSnapshot, Registry, Snapshot};
use crate::watchdog::Watchdog;

/// Default ring bound: at the default 250ms cadence this retains ~4 minutes
/// of windows per metric.
pub const DEFAULT_WINDOWS: usize = 1024;

/// Default sampling cadence when `GPDT_OBS_SAMPLE_MS` is unset.
pub const DEFAULT_SAMPLE_MS: u64 = 250;

/// One sampling window: the half-open time range and the delta observed in
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window<T> {
    /// Window start, nanoseconds since the process epoch.
    pub start_nanos: u64,
    /// Window end (the sample instant), nanoseconds since the process epoch.
    pub end_nanos: u64,
    /// What changed inside the window.
    pub delta: T,
}

#[derive(Debug, Default)]
struct CounterSeries {
    last: u64,
    last_change_nanos: Option<u64>,
    windows: VecDeque<Window<u64>>,
}

#[derive(Debug, Default)]
struct HistSeries {
    last: HistogramSnapshot,
    windows: VecDeque<Window<HistogramSnapshot>>,
}

/// The windowed delta store.  Feed it snapshots through [`sample`]
/// (the [`Sampler`] thread does, tests drive it with an injected clock) and
/// query rates and windowed quantiles back out.
///
/// [`sample`]: TimeSeries::sample
#[derive(Debug)]
pub struct TimeSeries {
    capacity: usize,
    counters: BTreeMap<String, CounterSeries>,
    hists: BTreeMap<String, HistSeries>,
    samples_taken: u64,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::with_capacity(DEFAULT_WINDOWS)
    }
}

impl TimeSeries {
    /// A series retaining at most `capacity` windows per metric.
    pub fn with_capacity(capacity: usize) -> TimeSeries {
        TimeSeries {
            capacity: capacity.max(1),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            samples_taken: 0,
        }
    }

    /// Number of samples ingested.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Ingests one snapshot taken at `now_nanos`, recording one delta window
    /// per counter and histogram.  The first window of a metric starts at
    /// the epoch (0), so window deltas always sum to the metric's lifetime
    /// total.  Irregular cadence is fine: windows carry their real bounds,
    /// and every query below works off those, not an assumed tick width.
    ///
    /// Gauges are last-value-wins and already live in the snapshot, so they
    /// are not windowed here.
    pub fn sample(&mut self, now_nanos: u64, snap: &Snapshot) {
        self.samples_taken += 1;
        for (name, value) in &snap.counters {
            let series = self.counters.entry(name.clone()).or_default();
            let start = series.windows.back().map(|w| w.end_nanos).unwrap_or(0);
            let delta = value.saturating_sub(series.last);
            if delta > 0 {
                series.last_change_nanos = Some(now_nanos);
            }
            series.last = *value;
            if series.windows.len() == self.capacity {
                series.windows.pop_front();
            }
            series.windows.push_back(Window {
                start_nanos: start,
                end_nanos: now_nanos,
                delta,
            });
        }
        for (name, hist) in &snap.histograms {
            let series = self.hists.entry(name.clone()).or_default();
            let start = series.windows.back().map(|w| w.end_nanos).unwrap_or(0);
            let delta = diff_hist(&series.last, hist);
            series.last = hist.clone();
            if series.windows.len() == self.capacity {
                series.windows.pop_front();
            }
            series.windows.push_back(Window {
                start_nanos: start,
                end_nanos: now_nanos,
                delta,
            });
        }
    }

    /// The retained windows of a counter, oldest first.
    pub fn counter_windows(&self, name: &str) -> Vec<Window<u64>> {
        self.counters
            .get(name)
            .map(|s| s.windows.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Sum of the retained window deltas of a counter — equals the counter's
    /// lifetime total as long as the ring has not evicted.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .get(name)
            .map(|s| s.windows.iter().map(|w| w.delta).sum())
            .unwrap_or(0)
    }

    /// The counter's rate per second over the windows whose end falls in
    /// `(now - lookback, now]`: total delta divided by the time those
    /// windows actually cover.  `None` when no window qualifies.
    pub fn rate_per_sec(&self, name: &str, lookback: Duration, now_nanos: u64) -> Option<f64> {
        let series = self.counters.get(name)?;
        let cutoff = now_nanos.saturating_sub(lookback.as_nanos() as u64);
        let mut delta = 0u64;
        let mut covered = 0u64;
        for w in series.windows.iter().rev() {
            if w.end_nanos <= cutoff {
                break;
            }
            delta += w.delta;
            covered += w.end_nanos - w.start_nanos;
        }
        if covered == 0 {
            return None;
        }
        Some(delta as f64 * 1e9 / covered as f64)
    }

    /// Nanoseconds since the counter last moved, or `None` if it has never
    /// moved inside the retained history — the ingest-stall primitive.
    pub fn age_of_last_change(&self, name: &str, now_nanos: u64) -> Option<u64> {
        let changed = self.counters.get(name)?.last_change_nanos?;
        Some(now_nanos.saturating_sub(changed))
    }

    /// The merged histogram delta over the windows whose end falls in
    /// `(now - lookback, now]` — "the fsync latency distribution of the last
    /// ten seconds", ready for [`HistogramSnapshot::quantile`].  `None` when
    /// no window qualifies.
    pub fn histogram_over(
        &self,
        name: &str,
        lookback: Duration,
        now_nanos: u64,
    ) -> Option<HistogramSnapshot> {
        let series = self.hists.get(name)?;
        let cutoff = now_nanos.saturating_sub(lookback.as_nanos() as u64);
        let mut merged: Option<HistogramSnapshot> = None;
        for w in series.windows.iter().rev() {
            if w.end_nanos <= cutoff {
                break;
            }
            let merged = merged.get_or_insert_with(|| HistogramSnapshot {
                buckets: vec![0; w.delta.buckets.len()],
                ..HistogramSnapshot::default()
            });
            merged.count += w.delta.count;
            merged.sum = merged.sum.wrapping_add(w.delta.sum);
            for (into, from) in merged.buckets.iter_mut().zip(&w.delta.buckets) {
                *into += from;
            }
        }
        merged
    }
}

/// The per-window histogram delta between two cumulative snapshots.
/// Buckets, count and sum diff exactly; `min`/`max` are lifetime values (a
/// cumulative min/max cannot be windowed), so the delta carries the newer
/// snapshot's values for them.
fn diff_hist(prev: &HistogramSnapshot, cur: &HistogramSnapshot) -> HistogramSnapshot {
    HistogramSnapshot {
        count: cur.count.saturating_sub(prev.count),
        sum: cur.sum.wrapping_sub(prev.sum),
        min: cur.min,
        max: cur.max,
        buckets: cur
            .buckets
            .iter()
            .zip(prev.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(c, p)| c.saturating_sub(*p))
            .collect(),
    }
}

/// The sampling cadence: `GPDT_OBS_SAMPLE_MS` (clamped to at least 1ms),
/// defaulting to `DEFAULT_SAMPLE_MS` (250ms).
pub fn sample_interval_from_env() -> Duration {
    let ms = std::env::var("GPDT_OBS_SAMPLE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_SAMPLE_MS)
        .max(1);
    Duration::from_millis(ms)
}

/// The background sampling thread: snapshots `registry` every `interval`
/// into a shared [`TimeSeries`] and, when a [`Watchdog`] is attached, lets
/// it evaluate its rules against the fresh windows.  Dropping the handle
/// stops and joins the thread.
pub struct Sampler {
    series: Arc<Mutex<TimeSeries>>,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `registry` every `interval`.  The watchdog, when
    /// given, journals its verdict transitions into `recorder`.
    pub fn start(
        interval: Duration,
        registry: &'static Registry,
        watchdog: Option<Arc<Watchdog>>,
        recorder: &'static FlightRecorder,
    ) -> Sampler {
        let series = Arc::new(Mutex::new(TimeSeries::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread_series = Arc::clone(&series);
        let thread_shutdown = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("gpdt-obs-sampler".into())
            .spawn(move || {
                while !thread_shutdown.load(Ordering::Relaxed) {
                    if crate::enabled() {
                        let now = crate::now_nanos();
                        let snap = registry.snapshot();
                        let mut series = lock(&thread_series);
                        series.sample(now, &snap);
                        if let Some(watchdog) = &watchdog {
                            watchdog.evaluate(&series, now, recorder);
                        }
                    }
                    // Sleep in short slices so drop-to-join stays prompt even
                    // at second-scale cadences.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !thread_shutdown.load(Ordering::Relaxed) {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawning the sampler thread never fails");
        Sampler {
            series,
            shutdown,
            thread: Some(thread),
        }
    }

    /// The shared series the thread is filling — clone it into whoever
    /// queries the windows (the telemetry server does).
    pub fn series(&self) -> Arc<Mutex<TimeSeries>> {
        Arc::clone(&self.series)
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

/// Lock helper keeping queries alive through a poisoned mutex (a sampler
/// panic must not take the serving surface down with it).
pub fn lock(series: &Mutex<TimeSeries>) -> std::sync::MutexGuard<'_, TimeSeries> {
    series.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    const MS: u64 = 1_000_000;

    #[test]
    fn windowed_rates_with_an_irregular_injected_clock() {
        let r = Registry::default();
        let c = r.counter("ts.events");
        let mut series = TimeSeries::with_capacity(16);

        // Regular tick, a skipped tick (double-length window), and a long
        // stall: rates must come from real window bounds, not tick counts.
        c.add(100);
        series.sample(1_000 * MS, &r.snapshot());
        c.add(50);
        series.sample(2_000 * MS, &r.snapshot());
        // Sampler missed a tick: next window spans 2s.
        c.add(300);
        series.sample(4_000 * MS, &r.snapshot());
        // Nothing happens for 6s.
        series.sample(10_000 * MS, &r.snapshot());

        let windows = series.counter_windows("ts.events");
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].start_nanos, 0, "first window starts at epoch");
        assert_eq!(windows[2].start_nanos, 2_000 * MS);
        assert_eq!(windows[2].end_nanos, 4_000 * MS);
        assert_eq!(windows[2].delta, 300);
        assert_eq!(series.counter_total("ts.events"), 450);

        // Last 2s covers only the empty stall window.
        let rate = series
            .rate_per_sec("ts.events", Duration::from_secs(2), 10_000 * MS)
            .unwrap();
        assert_eq!(rate, 0.0);
        // Last 8s reaches back through the skipped-tick window: 300 events
        // over the 8 covered seconds.
        let rate = series
            .rate_per_sec("ts.events", Duration::from_secs(8), 10_000 * MS)
            .unwrap();
        assert!((rate - 300.0 / 8.0).abs() < 1e-9, "got {rate}");
        // Whole history: 450 events over 10s.
        let rate = series
            .rate_per_sec("ts.events", Duration::from_secs(60), 10_000 * MS)
            .unwrap();
        assert!((rate - 45.0).abs() < 1e-9, "got {rate}");

        assert_eq!(
            series.age_of_last_change("ts.events", 10_000 * MS),
            Some(6_000 * MS),
            "counter last moved at the 4s sample"
        );
        assert_eq!(
            series.rate_per_sec("ts.missing", Duration::from_secs(1), 0),
            None
        );
    }

    #[test]
    fn windowed_histogram_quantiles_see_only_their_window() {
        let r = Registry::default();
        let h = r.histogram("ts.lat");
        let mut series = TimeSeries::with_capacity(16);

        // Window 1: fast samples.  Window 2: slow ones.
        for _ in 0..100 {
            h.record(1_000);
        }
        series.sample(1_000 * MS, &r.snapshot());
        for _ in 0..100 {
            h.record(1_000_000);
        }
        series.sample(2_000 * MS, &r.snapshot());

        // A 1s lookback at t=2s sees only the slow window, while the
        // lifetime aggregate would blend both.
        let recent = series
            .histogram_over("ts.lat", Duration::from_secs(1), 2_000 * MS)
            .unwrap();
        assert_eq!(recent.count, 100);
        assert_eq!(recent.quantile(0.50), (1 << 20) - 1);
        let whole = series
            .histogram_over("ts.lat", Duration::from_secs(10), 2_000 * MS)
            .unwrap();
        assert_eq!(whole.count, 200);
        assert_eq!(whole.quantile(0.50), 1023);
        assert_eq!(whole.sum, 100 * 1_000 + 100 * 1_000_000);
    }

    #[test]
    fn ring_eviction_keeps_the_newest_windows() {
        let r = Registry::default();
        let c = r.counter("ts.ring");
        let mut series = TimeSeries::with_capacity(3);
        for i in 1..=5u64 {
            c.add(i);
            series.sample(i * 1_000 * MS, &r.snapshot());
        }
        let windows = series.counter_windows("ts.ring");
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].delta, 3);
        assert_eq!(windows[2].delta, 5);
        assert_eq!(windows[2].end_nanos, 5_000 * MS);
    }

    #[test]
    fn sampler_deltas_sum_to_writer_totals_under_concurrency() {
        let r: &'static Registry = Box::leak(Box::default());
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        let mut series = TimeSeries::with_capacity(1 << 20);
        let series_ref = &mut series;
        let done = std::sync::atomic::AtomicUsize::new(0);
        let done = &done;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                scope.spawn(move || {
                    let shared = r.counter("sc.shared");
                    let own = r.counter(&format!("sc.own.{w}"));
                    let h = r.histogram("sc.lat");
                    for i in 0..PER_WRITER {
                        shared.inc();
                        own.inc();
                        h.record(i % 4096);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Sample continuously while the writers run, with a synthetic
            // clock (the windows' bounds are irrelevant here — only that the
            // deltas tile the counter's history exactly).
            let mut now = 0u64;
            while done.load(Ordering::Relaxed) < WRITERS {
                now += MS;
                series_ref.sample(now, &r.snapshot());
                std::thread::yield_now();
            }
            // One final sample after all writers joined captures the tail.
            series_ref.sample(now + MS, &r.snapshot());
        });
        assert_eq!(
            series.counter_total("sc.shared"),
            WRITERS as u64 * PER_WRITER,
            "window deltas must tile the contended counter exactly"
        );
        for w in 0..WRITERS {
            assert_eq!(series.counter_total(&format!("sc.own.{w}")), PER_WRITER);
        }
        // Merge every retained histogram window (query at the last window's
        // end with a lookback far past the synthetic clock range) and check
        // the deltas tile the histogram.
        let last_end = series
            .counter_windows("sc.shared")
            .last()
            .map(|w| w.end_nanos)
            .unwrap();
        let whole = series
            .histogram_over("sc.lat", Duration::from_secs(1 << 30), last_end)
            .unwrap();
        assert_eq!(whole.count, WRITERS as u64 * PER_WRITER);
        assert_eq!(whole.buckets.iter().sum::<u64>(), whole.count);
        assert!(series.samples_taken() >= 2);
    }

    #[test]
    fn sampler_thread_fills_the_series_and_stops_on_drop() {
        let _guard = crate::gate_test_lock();
        crate::set_enabled(true);
        let r: &'static Registry = Box::leak(Box::default());
        let rec: &'static FlightRecorder = Box::leak(Box::new(FlightRecorder::with_capacity(8)));
        r.counter("st.ticks").add(5);
        let sampler = Sampler::start(Duration::from_millis(1), r, None, rec);
        let series = sampler.series();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if lock(&series).samples_taken() >= 3 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "sampler never sampled"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(sampler);
        let total = lock(&series).counter_total("st.ticks");
        assert_eq!(total, 5);
    }
}
