//! Streaming snapshot clustering: cluster newly appended ticks on demand.
//!
//! The discovery engine ingests trajectory data tick-by-tick (or in arbitrary
//! batches); re-clustering the whole history on every arrival would defeat
//! the incremental algorithms it feeds.  [`StreamingClusterer`] keeps a
//! cursor into the time domain and clusters only the snapshots that appeared
//! since the previous call, reusing the scoped-thread parallelism of
//! [`ClusterDatabase::build_parallel`] (per-timestamp clustering is
//! embarrassingly parallel).

use gpdt_trajectory::{TimeInterval, Timestamp, TrajectoryDatabase};

use crate::dbscan::DbscanScratch;
use crate::params::ClusteringParams;
use crate::snapshot::ClusterDatabase;

/// A stateful snapshot clusterer over a growing trajectory database.
///
/// Each [`advance`](StreamingClusterer::advance) call clusters exactly the
/// timestamps between the cursor (initially the database's first timestamp)
/// and the database's current end, then moves the cursor past them.  The
/// concatenation of the returned batches is identical to a one-shot
/// [`ClusterDatabase::build`] over the final database.
#[derive(Debug, Clone)]
pub struct StreamingClusterer {
    params: ClusteringParams,
    threads: usize,
    next: Option<Timestamp>,
    /// DBSCAN scratch arena reused across `advance` calls on the
    /// single-threaded path, so tick-by-tick streaming stays allocation-free
    /// in steady state.
    scratch: DbscanScratch,
}

impl StreamingClusterer {
    /// Creates a clusterer with its cursor at the start of the (future)
    /// database, using all available cores.
    pub fn new(params: ClusteringParams) -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        StreamingClusterer {
            params,
            threads,
            next: None,
            scratch: DbscanScratch::new(),
        }
    }

    /// Overrides the number of worker threads (clamped to at least 1; the
    /// thread count never changes the produced clusters).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The clustering parameters.
    pub fn params(&self) -> &ClusteringParams {
        &self.params
    }

    /// The first timestamp the next [`advance`](StreamingClusterer::advance)
    /// will cluster, or `None` if nothing has been clustered yet (the cursor
    /// then starts at the database's first timestamp).
    pub fn next_time(&self) -> Option<Timestamp> {
        self.next
    }

    /// Moves the cursor so the next advance starts at `t`.
    pub fn seek(&mut self, t: Timestamp) {
        self.next = Some(t);
    }

    /// Clusters every not-yet-clustered snapshot of `db` (cursor through the
    /// database's last timestamp) and returns them as a batch; the batch is
    /// empty when the database holds no new ticks.
    pub fn advance(&mut self, db: &TrajectoryDatabase) -> ClusterDatabase {
        let Some(domain) = db.time_domain() else {
            return ClusterDatabase::new();
        };
        self.advance_until(db, domain.end)
    }

    /// Like [`advance`](StreamingClusterer::advance) but stops at `end`
    /// (inclusive) instead of the database's last timestamp, allowing a large
    /// backlog to be drained in controlled slices.
    pub fn advance_until(&mut self, db: &TrajectoryDatabase, end: Timestamp) -> ClusterDatabase {
        let Some(domain) = db.time_domain() else {
            return ClusterDatabase::new();
        };
        let start = self.next.unwrap_or(domain.start);
        let end = end.min(domain.end);
        if start > end {
            return ClusterDatabase::new();
        }
        self.next = Some(end + 1);
        let interval = TimeInterval::new(start, end);
        // Small batches (the tick-by-tick streaming steady state) are not
        // worth a thread spawn; run them through the long-lived scratch
        // arena instead.  Results never depend on the path taken.
        if self.threads == 1 || interval.len() < 2 {
            ClusterDatabase::build_interval_with(db, &self.params, interval, &mut self.scratch)
        } else {
            ClusterDatabase::build_parallel(db, &self.params, interval, self.threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::{ObjectId, Trajectory};

    fn blob_db(duration: u32) -> TrajectoryDatabase {
        let trajs: Vec<Trajectory> = (0..6u32)
            .map(|i| {
                let x = i as f64 * 10.0;
                Trajectory::from_points(
                    ObjectId::new(i),
                    (0..duration)
                        .map(|t| (t, (x, t as f64 * 3.0)))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        TrajectoryDatabase::from_trajectories(trajs)
    }

    #[test]
    fn advancing_in_slices_equals_one_shot_build() {
        let db = blob_db(12);
        let params = ClusteringParams::new(80.0, 3);
        let reference = ClusterDatabase::build(&db, &params);

        for slice in [1u32, 3, 5, 12] {
            let mut clusterer = StreamingClusterer::new(params).with_threads(2);
            let mut accumulated: Option<ClusterDatabase> = None;
            loop {
                let upto = clusterer.next_time().unwrap_or(0) + slice - 1;
                let batch = clusterer.advance_until(&db, upto);
                if batch.is_empty() {
                    break;
                }
                match accumulated.as_mut() {
                    None => accumulated = Some(batch),
                    Some(acc) => acc.append(batch),
                }
            }
            let accumulated = accumulated.expect("clustered something");
            assert_eq!(accumulated.len(), reference.len(), "slice {slice}");
            for (a, b) in accumulated.iter().zip(reference.iter()) {
                assert_eq!(a, b, "slice {slice}");
            }
        }
    }

    #[test]
    fn advance_is_idempotent_once_caught_up() {
        let db = blob_db(5);
        let mut clusterer = StreamingClusterer::new(ClusteringParams::new(80.0, 3));
        let first = clusterer.advance(&db);
        assert_eq!(first.len(), 5);
        assert_eq!(clusterer.next_time(), Some(5));
        assert!(clusterer.advance(&db).is_empty());
    }

    #[test]
    fn seek_repositions_the_cursor() {
        let db = blob_db(8);
        let mut clusterer = StreamingClusterer::new(ClusteringParams::new(80.0, 3));
        clusterer.seek(6);
        let batch = clusterer.advance(&db);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.time_domain().unwrap().start, 6);
    }

    #[test]
    fn empty_database_yields_empty_batch() {
        let mut clusterer = StreamingClusterer::new(ClusteringParams::new(80.0, 3));
        assert!(clusterer.advance(&TrajectoryDatabase::new()).is_empty());
        assert_eq!(clusterer.next_time(), None);
    }
}
