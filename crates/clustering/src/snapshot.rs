//! Snapshot clusters and the snapshot-cluster database `CDB`.
//!
//! Storage is columnar: all clusters of one timestamp share a single
//! structure-of-arrays arena (one `ObjectId` column plus parallel `xs`/`ys`
//! coordinate columns behind `Arc`s) and each [`SnapshotCluster`] holds a
//! `(start, end)` range into it.  Cloning a cluster — or partitioning a
//! tick's clusters across shards — bumps two reference counts instead of
//! copying point data, and the per-tick kernels (Hausdorff tests, index
//! builds) stream dense coordinate columns.

use std::sync::Arc;

use gpdt_geo::{
    hausdorff_distance_views, hausdorff_within_views, Mbr, Point, PointAccess, PointColumns,
    PointsView,
};
use gpdt_trajectory::{ObjectId, TimeInterval, Timestamp, TrajectoryDatabase};

use crate::dbscan::{dbscan_columns_with, DbscanScratch};
use crate::params::ClusteringParams;

/// A snapshot cluster (Definition 1): a maximal group of objects whose
/// positions at one timestamp are density-connected.
///
/// The member ids and coordinates live in an `Arc`-shared per-tick arena;
/// the cluster itself is a range into it plus the cached MBR/centroid, so
/// `clone()` is cheap and clusters of one tick stay cache-adjacent.
#[derive(Debug, Clone)]
pub struct SnapshotCluster {
    time: Timestamp,
    /// Shared member-id arena of the tick (sorted within each cluster range).
    ids: Arc<[ObjectId]>,
    /// Shared coordinate arena of the tick, parallel to `ids`.
    cols: Arc<PointColumns>,
    /// This cluster's range within the arenas.
    start: u32,
    end: u32,
    mbr: Mbr,
    centroid: Point,
}

impl SnapshotCluster {
    /// Creates a cluster from parallel member/point lists.
    ///
    /// Builds a private single-cluster arena; clusters that should share one
    /// arena per tick are built through [`SnapshotClusterSetBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty or have different lengths.
    pub fn new(time: Timestamp, members: Vec<ObjectId>, points: Vec<Point>) -> Self {
        assert!(!members.is_empty(), "a snapshot cluster cannot be empty");
        assert_eq!(
            members.len(),
            points.len(),
            "members and points must be parallel"
        );
        let mut builder = SnapshotClusterSetBuilder::new(time);
        builder.push_cluster(&members, points.as_slice());
        builder.finish().clusters.pop().expect("one cluster")
    }

    /// The timestamp of the cluster.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// Member object ids, sorted.
    pub fn members(&self) -> &[ObjectId] {
        &self.ids[self.start as usize..self.end as usize]
    }

    /// Member positions, parallel to [`Self::members`], as a columnar view.
    pub fn points(&self) -> PointsView<'_> {
        self.cols.slice(self.start as usize..self.end as usize)
    }

    /// Number of member objects (`|c_t|`, compared against the crowd support
    /// threshold `mc`).
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Always `false`: clusters are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The minimum bounding rectangle of the member positions.
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// Centroid of the member positions (cached at construction).
    pub fn centroid(&self) -> Point {
        self.centroid
    }

    /// Returns `true` if the object is a member.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.members().binary_search(&id).is_ok()
    }

    /// Exact Hausdorff distance to another cluster.
    pub fn hausdorff_to(&self, other: &SnapshotCluster) -> f64 {
        hausdorff_distance_views(self.points(), other.points())
    }

    /// Threshold test `dH(self, other) ≤ delta` with early exit.
    ///
    /// The cached MBRs give a free lower bound first (Lemma 2:
    /// `dmin(MBR) ≤ dH`), so far-apart clusters are rejected without touching
    /// any point.
    pub fn within_hausdorff(&self, other: &SnapshotCluster, delta: f64) -> bool {
        if self.mbr.min_distance(other.mbr()) > delta {
            return false;
        }
        hausdorff_within_views(self.points(), other.points(), delta)
    }
}

impl PartialEq for SnapshotCluster {
    /// Logical equality: same timestamp, members and coordinates.  Two
    /// clusters compare equal regardless of which arena holds their data or
    /// where their ranges start.
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
            && self.members() == other.members()
            && self.points().xs() == other.points().xs()
            && self.points().ys() == other.points().ys()
    }
}

/// Incrementally builds one tick's [`SnapshotClusterSet`] with all clusters
/// sharing a single column arena.
///
/// Feed clusters either whole ([`Self::push_cluster`]) or member by member
/// ([`Self::push_member`] / [`Self::end_cluster`]); `finish()` freezes the
/// arenas behind `Arc`s and computes each cluster's cached MBR and centroid
/// from its column range.
#[derive(Debug)]
pub struct SnapshotClusterSetBuilder {
    time: Timestamp,
    ids: Vec<ObjectId>,
    cols: PointColumns,
    ranges: Vec<(u32, u32)>,
    /// The cluster currently being fed, buffered so its members can be
    /// sorted by object id before being appended to the arenas.
    pending: Vec<(ObjectId, f64, f64)>,
}

impl SnapshotClusterSetBuilder {
    /// Starts a builder for timestamp `time`.
    pub fn new(time: Timestamp) -> Self {
        SnapshotClusterSetBuilder {
            time,
            ids: Vec::new(),
            cols: PointColumns::new(),
            ranges: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Adds one member to the cluster currently being built.
    pub fn push_member(&mut self, id: ObjectId, x: f64, y: f64) {
        self.pending.push((id, x, y));
    }

    /// Seals the cluster currently being built.
    ///
    /// # Panics
    ///
    /// Panics if no member was pushed since the last seal.
    pub fn end_cluster(&mut self) {
        assert!(
            !self.pending.is_empty(),
            "a snapshot cluster cannot be empty"
        );
        // Stable sort by id, matching `SnapshotCluster::new`'s ordering for
        // duplicate ids.
        self.pending.sort_by_key(|&(id, _, _)| id);
        let start = self.ids.len() as u32;
        for &(id, x, y) in &self.pending {
            self.ids.push(id);
            self.cols.push_xy(x, y);
        }
        self.ranges.push((start, self.ids.len() as u32));
        self.pending.clear();
    }

    /// Appends a whole cluster from parallel member/point sequences.
    ///
    /// # Panics
    ///
    /// Panics if the sequences are empty or have different lengths.
    pub fn push_cluster<P: PointAccess>(&mut self, members: &[ObjectId], points: P) {
        assert_eq!(
            members.len(),
            points.len(),
            "members and points must be parallel"
        );
        for (k, &id) in members.iter().enumerate() {
            self.push_member(id, points.x(k), points.y(k));
        }
        self.end_cluster();
    }

    /// Freezes the arenas and returns the finished set.
    ///
    /// # Panics
    ///
    /// Panics if a cluster is still being fed (members pushed without a
    /// sealing [`Self::end_cluster`]).
    pub fn finish(self) -> SnapshotClusterSet {
        assert!(
            self.pending.is_empty(),
            "unfinished cluster: call end_cluster() before finish()"
        );
        let ids: Arc<[ObjectId]> = self.ids.into();
        let cols = Arc::new(self.cols);
        let clusters = self
            .ranges
            .iter()
            .map(|&(start, end)| {
                let view = cols.slice(start as usize..end as usize);
                SnapshotCluster {
                    time: self.time,
                    ids: Arc::clone(&ids),
                    cols: Arc::clone(&cols),
                    start,
                    end,
                    mbr: view.mbr().expect("non-empty"),
                    centroid: view.centroid().expect("non-empty"),
                }
            })
            .collect();
        SnapshotClusterSet {
            time: self.time,
            clusters,
        }
    }
}

/// Identifier of a snapshot cluster inside a [`ClusterDatabase`]: the
/// timestamp and the position within that timestamp's cluster set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId {
    /// The timestamp of the cluster.
    pub time: Timestamp,
    /// Index within the cluster set of that timestamp.
    pub index: usize,
}

impl ClusterId {
    /// Creates a cluster id.
    pub const fn new(time: Timestamp, index: usize) -> Self {
        ClusterId { time, index }
    }
}

/// All snapshot clusters of one timestamp (`C_t` in the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotClusterSet {
    /// The timestamp shared by all clusters in the set.
    pub time: Timestamp,
    /// The clusters, in discovery order.
    pub clusters: Vec<SnapshotCluster>,
}

impl SnapshotClusterSet {
    /// Number of clusters at this timestamp.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if no cluster exists at this timestamp.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Iterates over `(ClusterId, &SnapshotCluster)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = (ClusterId, &SnapshotCluster)> {
        self.clusters
            .iter()
            .enumerate()
            .map(move |(i, c)| (ClusterId::new(self.time, i), c))
    }

    /// Bytes of member-id and coordinate payload held live by this set's
    /// arenas.
    ///
    /// Clusters sharing one arena (the normal case: one arena per tick) are
    /// counted once; the arena pointers are deduplicated.  This is the
    /// figure the out-of-core ingest layer budgets against.
    pub fn arena_bytes(&self) -> usize {
        let mut seen: Vec<*const PointColumns> = Vec::new();
        let mut bytes = 0;
        for c in &self.clusters {
            let ptr = Arc::as_ptr(&c.cols);
            if !seen.contains(&ptr) {
                seen.push(ptr);
                bytes += c.cols.payload_bytes() + c.ids.len() * std::mem::size_of::<ObjectId>();
            }
        }
        bytes
    }
}

/// The snapshot-cluster database `CDB`: one [`SnapshotClusterSet`] per
/// timestamp over a contiguous time interval.
#[derive(Debug, Clone, Default)]
pub struct ClusterDatabase {
    sets: Vec<SnapshotClusterSet>,
}

impl ClusterDatabase {
    /// Creates an empty cluster database.
    pub fn new() -> Self {
        ClusterDatabase::default()
    }

    /// Builds the cluster database by clustering every snapshot of the
    /// trajectory database over its full time domain.
    ///
    /// Objects present at a timestamp (after linear interpolation) are
    /// clustered with DBSCAN; noise objects simply do not appear in any
    /// cluster for that timestamp.
    pub fn build(db: &TrajectoryDatabase, params: &ClusteringParams) -> Self {
        match db.time_domain() {
            Some(domain) => Self::build_interval(db, params, domain),
            None => ClusterDatabase::new(),
        }
    }

    /// Builds the cluster database over an explicit time interval.
    pub fn build_interval(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        interval: TimeInterval,
    ) -> Self {
        Self::build_interval_with(db, params, interval, &mut DbscanScratch::new())
    }

    /// Like [`ClusterDatabase::build_interval`] but clusters through a
    /// caller-provided scratch arena, so repeated builds (e.g. the streaming
    /// clusterer's tick-by-tick batches) reuse their buffers across calls.
    pub fn build_interval_with(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        interval: TimeInterval,
        scratch: &mut DbscanScratch,
    ) -> Self {
        let sets = interval
            .iter()
            .map(|t| Self::cluster_snapshot(db, params, t, scratch))
            .collect();
        ClusterDatabase { sets }
    }

    /// Builds the cluster database in parallel across timestamps using
    /// `threads` worker threads.
    ///
    /// Produces exactly the same result as [`ClusterDatabase::build_interval`];
    /// per-timestamp clustering is embarrassingly parallel.
    pub fn build_parallel(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        interval: TimeInterval,
        threads: usize,
    ) -> Self {
        let threads = threads.max(1);
        let ticks: Vec<Timestamp> = interval.iter().collect();
        let mut sets: Vec<Option<SnapshotClusterSet>> = vec![None; ticks.len()];
        let chunk = ticks.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (tick_chunk, out_chunk) in ticks.chunks(chunk).zip(sets.chunks_mut(chunk)) {
                scope.spawn(move || {
                    // One scratch arena per worker, reused across its ticks.
                    let mut scratch = DbscanScratch::new();
                    for (t, slot) in tick_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(Self::cluster_snapshot(db, params, *t, &mut scratch));
                    }
                });
            }
        });
        ClusterDatabase {
            sets: sets.into_iter().map(|s| s.expect("filled")).collect(),
        }
    }

    fn cluster_snapshot(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        t: Timestamp,
        scratch: &mut DbscanScratch,
    ) -> SnapshotClusterSet {
        let snapshot = db.snapshot(t);
        // Split the snapshot into coordinate columns once: DBSCAN scans them
        // and the finished clusters' shared arena is filled from them.
        let mut cols = PointColumns::with_capacity(snapshot.positions.len());
        for (_, p) in &snapshot.positions {
            cols.push(*p);
        }
        let result = {
            let _span = gpdt_obs::span!("dbscan.snapshot");
            dbscan_columns_with(cols.view(), params, scratch)
        };
        let mut builder = SnapshotClusterSetBuilder::new(t);
        for member_indices in &result.clusters {
            for &i in member_indices {
                builder.push_member(snapshot.positions[i].0, cols.xs()[i], cols.ys()[i]);
            }
            builder.end_cluster();
        }
        builder.finish()
    }

    /// Creates a database directly from per-timestamp cluster sets.
    ///
    /// The sets must be ordered by timestamp and contiguous (each timestamp
    /// exactly one larger than the previous).  Used by tests and by the
    /// synthetic crowd generators in the benchmark harness.
    ///
    /// # Panics
    ///
    /// Panics if the sets are not contiguous in time.
    pub fn from_sets(sets: Vec<SnapshotClusterSet>) -> Self {
        for w in sets.windows(2) {
            assert_eq!(
                w[1].time,
                w[0].time + 1,
                "cluster sets must cover contiguous timestamps"
            );
        }
        ClusterDatabase { sets }
    }

    /// Number of timestamps covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if the database covers no timestamps.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The covered time interval, or `None` if empty.
    pub fn time_domain(&self) -> Option<TimeInterval> {
        match (self.sets.first(), self.sets.last()) {
            (Some(first), Some(last)) => Some(TimeInterval::new(first.time, last.time)),
            _ => None,
        }
    }

    /// The cluster set at timestamp `t`, if covered.
    pub fn set_at(&self, t: Timestamp) -> Option<&SnapshotClusterSet> {
        let first = self.sets.first()?.time;
        if t < first {
            return None;
        }
        self.sets.get((t - first) as usize)
    }

    /// The cluster referenced by `id`, if it exists.
    pub fn cluster(&self, id: ClusterId) -> Option<&SnapshotCluster> {
        self.set_at(id.time)?.clusters.get(id.index)
    }

    /// Iterates over the cluster sets in time order.
    pub fn iter(&self) -> impl Iterator<Item = &SnapshotClusterSet> {
        self.sets.iter()
    }

    /// Total number of snapshot clusters across all timestamps.
    pub fn total_clusters(&self) -> usize {
        self.sets.iter().map(|s| s.clusters.len()).sum()
    }

    /// Bytes of cluster-arena payload held live across all timestamps
    /// (see [`SnapshotClusterSet::arena_bytes`]).
    pub fn arena_bytes(&self) -> usize {
        self.sets.iter().map(|s| s.arena_bytes()).sum()
    }

    /// Consumes the database into its per-timestamp sets, in time order.
    ///
    /// The out-of-core ingest driver uses this to feed a pre-built database
    /// to an engine batch by batch while *dropping* each batch from the
    /// source side, so the engine's retention policy actually frees arena
    /// memory instead of keeping it alive through the source's `Arc` clones.
    pub fn into_sets(self) -> Vec<SnapshotClusterSet> {
        self.sets
    }

    /// Drops every cluster set strictly older than `t` and returns how many
    /// ticks were evicted.
    ///
    /// This is the primitive behind bounded cluster-database retention: a
    /// streaming engine only ever revisits the ticks its open crowd
    /// candidates reference (plus the trailing `kc` window), so everything
    /// older can be reclaimed once the referencing crowds finalize.  Lookups
    /// for evicted ticks ([`Self::set_at`], [`Self::cluster`]) return `None`
    /// afterwards; [`Self::time_domain`] shrinks from the front.
    pub fn evict_before(&mut self, t: Timestamp) -> usize {
        let Some(first) = self.sets.first().map(|s| s.time) else {
            return 0;
        };
        if t <= first {
            return 0;
        }
        let drop = (t - first) as usize;
        let drop = drop.min(self.sets.len());
        self.sets.drain(..drop);
        drop
    }

    /// Appends the cluster sets of a newer batch (incremental update).
    ///
    /// # Panics
    ///
    /// Panics if `newer` does not start exactly one tick after the current
    /// last timestamp (or if either database is empty, in which case there is
    /// nothing meaningful to append to/from).
    pub fn append(&mut self, newer: ClusterDatabase) {
        let last = self
            .time_domain()
            .expect("cannot append to an empty cluster database")
            .end;
        let newer_start = newer
            .time_domain()
            .expect("cannot append an empty cluster database")
            .start;
        assert_eq!(
            newer_start,
            last + 1,
            "appended batch must start right after the existing time domain"
        );
        self.sets.extend(newer.sets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn cluster(time: Timestamp, ids: &[u32], pts: &[(f64, f64)]) -> SnapshotCluster {
        SnapshotCluster::new(
            time,
            ids.iter().map(|&i| ObjectId::new(i)).collect(),
            pts.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        )
    }

    #[test]
    fn cluster_members_sorted_and_queried() {
        let c = cluster(3, &[5, 1, 9], &[(5.0, 0.0), (1.0, 0.0), (9.0, 0.0)]);
        assert_eq!(
            c.members(),
            &[ObjectId::new(1), ObjectId::new(5), ObjectId::new(9)]
        );
        // Points stay parallel to their member after sorting.
        assert_eq!(c.points().point(0), Point::new(1.0, 0.0));
        assert_eq!(c.points().point(2), Point::new(9.0, 0.0));
        assert!(c.contains(ObjectId::new(5)));
        assert!(!c.contains(ObjectId::new(2)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.time(), 3);
        assert_eq!(c.mbr(), &Mbr::new(1.0, 0.0, 9.0, 0.0));
        assert_eq!(c.centroid(), Point::new(5.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_cluster_rejected() {
        let _ = SnapshotCluster::new(0, vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_rejected() {
        let _ = SnapshotCluster::new(0, vec![ObjectId::new(1)], vec![]);
    }

    #[test]
    fn hausdorff_between_clusters() {
        let a = cluster(0, &[1, 2], &[(0.0, 0.0), (1.0, 0.0)]);
        let b = cluster(1, &[1, 2], &[(0.0, 3.0), (1.0, 3.0)]);
        assert_eq!(a.hausdorff_to(&b), 3.0);
        assert!(a.within_hausdorff(&b, 3.0));
        assert!(!a.within_hausdorff(&b, 2.9));
    }

    fn dense_blob_db() -> TrajectoryDatabase {
        // Five objects stay clustered near the origin for ticks 0..=2, one
        // object wanders far away.
        let mut trajs = Vec::new();
        for i in 0..5u32 {
            let x = i as f64 * 10.0;
            trajs.push(Trajectory::from_points(
                ObjectId::new(i),
                vec![(0, (x, 0.0)), (1, (x, 5.0)), (2, (x, 10.0))],
            ));
        }
        trajs.push(Trajectory::from_points(
            ObjectId::new(99),
            vec![(0, (5000.0, 5000.0)), (2, (6000.0, 6000.0))],
        ));
        TrajectoryDatabase::from_trajectories(trajs)
    }

    #[test]
    fn build_produces_one_cluster_per_tick() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let cdb = ClusterDatabase::build(&db, &params);
        assert_eq!(cdb.len(), 3);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(0, 2)));
        for set in cdb.iter() {
            assert_eq!(set.len(), 1, "tick {}", set.time);
            assert_eq!(set.clusters[0].len(), 5);
            assert!(!set.clusters[0].contains(ObjectId::new(99)));
        }
        assert_eq!(cdb.total_clusters(), 3);
    }

    #[test]
    fn build_parallel_matches_sequential() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let interval = db.time_domain().unwrap();
        let seq = ClusterDatabase::build_interval(&db, &params, interval);
        for threads in [1, 2, 4] {
            let par = ClusterDatabase::build_parallel(&db, &params, interval, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(seq.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn set_at_and_cluster_lookup() {
        let db = dense_blob_db();
        let cdb = ClusterDatabase::build(&db, &ClusteringParams::new(15.0, 3));
        assert!(cdb.set_at(1).is_some());
        assert!(cdb.set_at(3).is_none());
        assert!(cdb.cluster(ClusterId::new(1, 0)).is_some());
        assert!(cdb.cluster(ClusterId::new(1, 5)).is_none());
        assert!(cdb.cluster(ClusterId::new(9, 0)).is_none());
    }

    #[test]
    fn from_sets_requires_contiguous_time() {
        let sets = vec![
            SnapshotClusterSet {
                time: 4,
                clusters: vec![cluster(4, &[1], &[(0.0, 0.0)])],
            },
            SnapshotClusterSet {
                time: 5,
                clusters: vec![],
            },
        ];
        let cdb = ClusterDatabase::from_sets(sets);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(4, 5)));
        assert!(cdb.set_at(3).is_none());
        assert_eq!(cdb.set_at(4).unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn from_sets_rejects_gaps() {
        let sets = vec![
            SnapshotClusterSet {
                time: 0,
                clusters: vec![],
            },
            SnapshotClusterSet {
                time: 2,
                clusters: vec![],
            },
        ];
        let _ = ClusterDatabase::from_sets(sets);
    }

    #[test]
    fn append_extends_time_domain() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let mut first = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(0, 1));
        let second = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(2, 2));
        first.append(second);
        assert_eq!(first.time_domain(), Some(TimeInterval::new(0, 2)));
        assert_eq!(first.len(), 3);
    }

    #[test]
    #[should_panic(expected = "right after")]
    fn append_rejects_non_adjacent_batch() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let mut first = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(0, 0));
        let second = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(2, 2));
        first.append(second);
    }

    #[test]
    fn evict_before_drops_leading_ticks_only() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let mut cdb = ClusterDatabase::build(&db, &params);
        assert_eq!(cdb.evict_before(0), 0, "t before the domain is a no-op");
        assert_eq!(cdb.evict_before(2), 2);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(2, 2)));
        assert!(cdb.set_at(1).is_none());
        assert!(cdb.cluster(ClusterId::new(0, 0)).is_none());
        assert!(cdb.cluster(ClusterId::new(2, 0)).is_some());
        // Appending after eviction still works off the (shrunk) domain.
        let next = ClusterDatabase::from_sets(vec![SnapshotClusterSet {
            time: 3,
            clusters: vec![],
        }]);
        cdb.append(next);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(2, 3)));
        // Evicting past the end empties the database.
        assert_eq!(cdb.evict_before(10), 2);
        assert!(cdb.is_empty());
        assert_eq!(cdb.evict_before(10), 0);
    }

    #[test]
    fn builder_shares_one_arena_per_tick() {
        let mut b = SnapshotClusterSetBuilder::new(2);
        b.push_member(ObjectId::new(3), 3.0, 0.0);
        b.push_member(ObjectId::new(1), 1.0, 0.0);
        b.end_cluster();
        b.push_cluster(
            &[ObjectId::new(7), ObjectId::new(5)],
            [Point::new(7.0, 0.0), Point::new(5.0, 0.0)].as_slice(),
        );
        let set = b.finish();
        assert_eq!(set.len(), 2);
        // Members are sorted within each cluster, points stay parallel.
        assert_eq!(
            set.clusters[0].members(),
            &[ObjectId::new(1), ObjectId::new(3)]
        );
        assert_eq!(set.clusters[0].points().xs(), &[1.0, 3.0]);
        assert_eq!(
            set.clusters[1].members(),
            &[ObjectId::new(5), ObjectId::new(7)]
        );
        // Both clusters reference the same arena...
        assert!(Arc::ptr_eq(&set.clusters[0].cols, &set.clusters[1].cols));
        // ...so the arena is counted once: 4 points × (16 coord + 4 id) bytes.
        assert_eq!(set.arena_bytes(), 4 * 20);
        // Logical equality is layout-independent: a standalone cluster with
        // its own arena compares equal to the arena-backed one.
        let standalone = cluster(2, &[1, 3], &[(1.0, 0.0), (3.0, 0.0)]);
        assert_eq!(set.clusters[0], standalone);
        // A clone shares its arena (counted once); a separately built twin
        // does not (counted again).
        let twin = cluster(2, &[1, 3], &[(1.0, 0.0), (3.0, 0.0)]);
        let shared = SnapshotClusterSet {
            time: 2,
            clusters: vec![standalone.clone(), standalone],
        };
        assert_eq!(shared.arena_bytes(), 2 * 20);
        let distinct = SnapshotClusterSet {
            time: 2,
            clusters: vec![shared.clusters[0].clone(), twin],
        };
        assert_eq!(distinct.arena_bytes(), 2 * 2 * 20);
    }

    #[test]
    fn built_sets_share_arena_and_match_new() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let cdb = ClusterDatabase::build(&db, &params);
        assert!(cdb.arena_bytes() > 0);
        for set in cdb.iter() {
            for w in set.clusters.windows(2) {
                assert!(Arc::ptr_eq(&w[0].cols, &w[1].cols));
            }
            for c in &set.clusters {
                // Rebuilding through SnapshotCluster::new (private arena)
                // reproduces the identical cluster, cached fields included.
                let rebuilt =
                    SnapshotCluster::new(c.time(), c.members().to_vec(), c.points().to_points());
                assert_eq!(&rebuilt, c);
                assert_eq!(rebuilt.mbr(), c.mbr());
                assert_eq!(rebuilt.centroid(), c.centroid());
            }
        }
    }

    #[test]
    #[should_panic(expected = "unfinished cluster")]
    fn builder_rejects_unsealed_cluster() {
        let mut b = SnapshotClusterSetBuilder::new(0);
        b.push_member(ObjectId::new(1), 0.0, 0.0);
        let _ = b.finish();
    }

    #[test]
    fn iter_ids_enumerates_clusters() {
        let set = SnapshotClusterSet {
            time: 7,
            clusters: vec![
                cluster(7, &[1], &[(0.0, 0.0)]),
                cluster(7, &[2], &[(100.0, 0.0)]),
            ],
        };
        let ids: Vec<ClusterId> = set.iter_ids().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ClusterId::new(7, 0), ClusterId::new(7, 1)]);
    }
}
