//! Snapshot clusters and the snapshot-cluster database `CDB`.

use gpdt_geo::{hausdorff_distance, hausdorff_within, Mbr, Point};
use gpdt_trajectory::{ObjectId, TimeInterval, Timestamp, TrajectoryDatabase};

use crate::dbscan::{dbscan_with, DbscanScratch};
use crate::params::ClusteringParams;

/// A snapshot cluster (Definition 1): a maximal group of objects whose
/// positions at one timestamp are density-connected.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotCluster {
    time: Timestamp,
    members: Vec<ObjectId>,
    points: Vec<Point>,
    mbr: Mbr,
    centroid: Point,
}

impl SnapshotCluster {
    /// Creates a cluster from parallel member/point lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty or have different lengths.
    pub fn new(time: Timestamp, members: Vec<ObjectId>, points: Vec<Point>) -> Self {
        assert!(!members.is_empty(), "a snapshot cluster cannot be empty");
        assert_eq!(
            members.len(),
            points.len(),
            "members and points must be parallel"
        );
        let mut pairs: Vec<(ObjectId, Point)> = members.into_iter().zip(points).collect();
        pairs.sort_by_key(|(id, _)| *id);
        let members: Vec<ObjectId> = pairs.iter().map(|(id, _)| *id).collect();
        let points: Vec<Point> = pairs.iter().map(|(_, p)| *p).collect();
        let mbr = Mbr::from_points(&points).expect("non-empty");
        let centroid = Point::centroid(&points).expect("non-empty");
        SnapshotCluster {
            time,
            members,
            points,
            mbr,
            centroid,
        }
    }

    /// The timestamp of the cluster.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// Member object ids, sorted.
    pub fn members(&self) -> &[ObjectId] {
        &self.members
    }

    /// Member positions, parallel to [`Self::members`].
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of member objects (`|c_t|`, compared against the crowd support
    /// threshold `mc`).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always `false`: clusters are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The minimum bounding rectangle of the member positions.
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// Centroid of the member positions (cached at construction).
    pub fn centroid(&self) -> Point {
        self.centroid
    }

    /// Returns `true` if the object is a member.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// Exact Hausdorff distance to another cluster.
    pub fn hausdorff_to(&self, other: &SnapshotCluster) -> f64 {
        hausdorff_distance(&self.points, &other.points)
    }

    /// Threshold test `dH(self, other) ≤ delta` with early exit.
    ///
    /// The cached MBRs give a free lower bound first (Lemma 2:
    /// `dmin(MBR) ≤ dH`), so far-apart clusters are rejected without touching
    /// any point.
    pub fn within_hausdorff(&self, other: &SnapshotCluster, delta: f64) -> bool {
        if self.mbr.min_distance(other.mbr()) > delta {
            return false;
        }
        hausdorff_within(&self.points, &other.points, delta)
    }
}

/// Identifier of a snapshot cluster inside a [`ClusterDatabase`]: the
/// timestamp and the position within that timestamp's cluster set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId {
    /// The timestamp of the cluster.
    pub time: Timestamp,
    /// Index within the cluster set of that timestamp.
    pub index: usize,
}

impl ClusterId {
    /// Creates a cluster id.
    pub const fn new(time: Timestamp, index: usize) -> Self {
        ClusterId { time, index }
    }
}

/// All snapshot clusters of one timestamp (`C_t` in the paper).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotClusterSet {
    /// The timestamp shared by all clusters in the set.
    pub time: Timestamp,
    /// The clusters, in discovery order.
    pub clusters: Vec<SnapshotCluster>,
}

impl SnapshotClusterSet {
    /// Number of clusters at this timestamp.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if no cluster exists at this timestamp.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Iterates over `(ClusterId, &SnapshotCluster)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = (ClusterId, &SnapshotCluster)> {
        self.clusters
            .iter()
            .enumerate()
            .map(move |(i, c)| (ClusterId::new(self.time, i), c))
    }
}

/// The snapshot-cluster database `CDB`: one [`SnapshotClusterSet`] per
/// timestamp over a contiguous time interval.
#[derive(Debug, Clone, Default)]
pub struct ClusterDatabase {
    sets: Vec<SnapshotClusterSet>,
}

impl ClusterDatabase {
    /// Creates an empty cluster database.
    pub fn new() -> Self {
        ClusterDatabase::default()
    }

    /// Builds the cluster database by clustering every snapshot of the
    /// trajectory database over its full time domain.
    ///
    /// Objects present at a timestamp (after linear interpolation) are
    /// clustered with DBSCAN; noise objects simply do not appear in any
    /// cluster for that timestamp.
    pub fn build(db: &TrajectoryDatabase, params: &ClusteringParams) -> Self {
        match db.time_domain() {
            Some(domain) => Self::build_interval(db, params, domain),
            None => ClusterDatabase::new(),
        }
    }

    /// Builds the cluster database over an explicit time interval.
    pub fn build_interval(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        interval: TimeInterval,
    ) -> Self {
        Self::build_interval_with(db, params, interval, &mut DbscanScratch::new())
    }

    /// Like [`ClusterDatabase::build_interval`] but clusters through a
    /// caller-provided scratch arena, so repeated builds (e.g. the streaming
    /// clusterer's tick-by-tick batches) reuse their buffers across calls.
    pub fn build_interval_with(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        interval: TimeInterval,
        scratch: &mut DbscanScratch,
    ) -> Self {
        let sets = interval
            .iter()
            .map(|t| Self::cluster_snapshot(db, params, t, scratch))
            .collect();
        ClusterDatabase { sets }
    }

    /// Builds the cluster database in parallel across timestamps using
    /// `threads` worker threads.
    ///
    /// Produces exactly the same result as [`ClusterDatabase::build_interval`];
    /// per-timestamp clustering is embarrassingly parallel.
    pub fn build_parallel(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        interval: TimeInterval,
        threads: usize,
    ) -> Self {
        let threads = threads.max(1);
        let ticks: Vec<Timestamp> = interval.iter().collect();
        let mut sets: Vec<Option<SnapshotClusterSet>> = vec![None; ticks.len()];
        let chunk = ticks.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (tick_chunk, out_chunk) in ticks.chunks(chunk).zip(sets.chunks_mut(chunk)) {
                scope.spawn(move || {
                    // One scratch arena per worker, reused across its ticks.
                    let mut scratch = DbscanScratch::new();
                    for (t, slot) in tick_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(Self::cluster_snapshot(db, params, *t, &mut scratch));
                    }
                });
            }
        });
        ClusterDatabase {
            sets: sets.into_iter().map(|s| s.expect("filled")).collect(),
        }
    }

    fn cluster_snapshot(
        db: &TrajectoryDatabase,
        params: &ClusteringParams,
        t: Timestamp,
        scratch: &mut DbscanScratch,
    ) -> SnapshotClusterSet {
        let snapshot = db.snapshot(t);
        let points: Vec<Point> = snapshot.positions.iter().map(|(_, p)| *p).collect();
        let result = dbscan_with(&points, params, scratch);
        let clusters = result
            .clusters
            .into_iter()
            .map(|member_indices| {
                let members: Vec<ObjectId> = member_indices
                    .iter()
                    .map(|&i| snapshot.positions[i].0)
                    .collect();
                let pts: Vec<Point> = member_indices.iter().map(|&i| points[i]).collect();
                SnapshotCluster::new(t, members, pts)
            })
            .collect();
        SnapshotClusterSet { time: t, clusters }
    }

    /// Creates a database directly from per-timestamp cluster sets.
    ///
    /// The sets must be ordered by timestamp and contiguous (each timestamp
    /// exactly one larger than the previous).  Used by tests and by the
    /// synthetic crowd generators in the benchmark harness.
    ///
    /// # Panics
    ///
    /// Panics if the sets are not contiguous in time.
    pub fn from_sets(sets: Vec<SnapshotClusterSet>) -> Self {
        for w in sets.windows(2) {
            assert_eq!(
                w[1].time,
                w[0].time + 1,
                "cluster sets must cover contiguous timestamps"
            );
        }
        ClusterDatabase { sets }
    }

    /// Number of timestamps covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if the database covers no timestamps.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The covered time interval, or `None` if empty.
    pub fn time_domain(&self) -> Option<TimeInterval> {
        match (self.sets.first(), self.sets.last()) {
            (Some(first), Some(last)) => Some(TimeInterval::new(first.time, last.time)),
            _ => None,
        }
    }

    /// The cluster set at timestamp `t`, if covered.
    pub fn set_at(&self, t: Timestamp) -> Option<&SnapshotClusterSet> {
        let first = self.sets.first()?.time;
        if t < first {
            return None;
        }
        self.sets.get((t - first) as usize)
    }

    /// The cluster referenced by `id`, if it exists.
    pub fn cluster(&self, id: ClusterId) -> Option<&SnapshotCluster> {
        self.set_at(id.time)?.clusters.get(id.index)
    }

    /// Iterates over the cluster sets in time order.
    pub fn iter(&self) -> impl Iterator<Item = &SnapshotClusterSet> {
        self.sets.iter()
    }

    /// Total number of snapshot clusters across all timestamps.
    pub fn total_clusters(&self) -> usize {
        self.sets.iter().map(|s| s.clusters.len()).sum()
    }

    /// Drops every cluster set strictly older than `t` and returns how many
    /// ticks were evicted.
    ///
    /// This is the primitive behind bounded cluster-database retention: a
    /// streaming engine only ever revisits the ticks its open crowd
    /// candidates reference (plus the trailing `kc` window), so everything
    /// older can be reclaimed once the referencing crowds finalize.  Lookups
    /// for evicted ticks ([`Self::set_at`], [`Self::cluster`]) return `None`
    /// afterwards; [`Self::time_domain`] shrinks from the front.
    pub fn evict_before(&mut self, t: Timestamp) -> usize {
        let Some(first) = self.sets.first().map(|s| s.time) else {
            return 0;
        };
        if t <= first {
            return 0;
        }
        let drop = (t - first) as usize;
        let drop = drop.min(self.sets.len());
        self.sets.drain(..drop);
        drop
    }

    /// Appends the cluster sets of a newer batch (incremental update).
    ///
    /// # Panics
    ///
    /// Panics if `newer` does not start exactly one tick after the current
    /// last timestamp (or if either database is empty, in which case there is
    /// nothing meaningful to append to/from).
    pub fn append(&mut self, newer: ClusterDatabase) {
        let last = self
            .time_domain()
            .expect("cannot append to an empty cluster database")
            .end;
        let newer_start = newer
            .time_domain()
            .expect("cannot append an empty cluster database")
            .start;
        assert_eq!(
            newer_start,
            last + 1,
            "appended batch must start right after the existing time domain"
        );
        self.sets.extend(newer.sets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn cluster(time: Timestamp, ids: &[u32], pts: &[(f64, f64)]) -> SnapshotCluster {
        SnapshotCluster::new(
            time,
            ids.iter().map(|&i| ObjectId::new(i)).collect(),
            pts.iter().map(|&(x, y)| Point::new(x, y)).collect(),
        )
    }

    #[test]
    fn cluster_members_sorted_and_queried() {
        let c = cluster(3, &[5, 1, 9], &[(5.0, 0.0), (1.0, 0.0), (9.0, 0.0)]);
        assert_eq!(
            c.members(),
            &[ObjectId::new(1), ObjectId::new(5), ObjectId::new(9)]
        );
        // Points stay parallel to their member after sorting.
        assert_eq!(c.points()[0], Point::new(1.0, 0.0));
        assert_eq!(c.points()[2], Point::new(9.0, 0.0));
        assert!(c.contains(ObjectId::new(5)));
        assert!(!c.contains(ObjectId::new(2)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.time(), 3);
        assert_eq!(c.mbr(), &Mbr::new(1.0, 0.0, 9.0, 0.0));
        assert_eq!(c.centroid(), Point::new(5.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_cluster_rejected() {
        let _ = SnapshotCluster::new(0, vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_rejected() {
        let _ = SnapshotCluster::new(0, vec![ObjectId::new(1)], vec![]);
    }

    #[test]
    fn hausdorff_between_clusters() {
        let a = cluster(0, &[1, 2], &[(0.0, 0.0), (1.0, 0.0)]);
        let b = cluster(1, &[1, 2], &[(0.0, 3.0), (1.0, 3.0)]);
        assert_eq!(a.hausdorff_to(&b), 3.0);
        assert!(a.within_hausdorff(&b, 3.0));
        assert!(!a.within_hausdorff(&b, 2.9));
    }

    fn dense_blob_db() -> TrajectoryDatabase {
        // Five objects stay clustered near the origin for ticks 0..=2, one
        // object wanders far away.
        let mut trajs = Vec::new();
        for i in 0..5u32 {
            let x = i as f64 * 10.0;
            trajs.push(Trajectory::from_points(
                ObjectId::new(i),
                vec![(0, (x, 0.0)), (1, (x, 5.0)), (2, (x, 10.0))],
            ));
        }
        trajs.push(Trajectory::from_points(
            ObjectId::new(99),
            vec![(0, (5000.0, 5000.0)), (2, (6000.0, 6000.0))],
        ));
        TrajectoryDatabase::from_trajectories(trajs)
    }

    #[test]
    fn build_produces_one_cluster_per_tick() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let cdb = ClusterDatabase::build(&db, &params);
        assert_eq!(cdb.len(), 3);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(0, 2)));
        for set in cdb.iter() {
            assert_eq!(set.len(), 1, "tick {}", set.time);
            assert_eq!(set.clusters[0].len(), 5);
            assert!(!set.clusters[0].contains(ObjectId::new(99)));
        }
        assert_eq!(cdb.total_clusters(), 3);
    }

    #[test]
    fn build_parallel_matches_sequential() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let interval = db.time_domain().unwrap();
        let seq = ClusterDatabase::build_interval(&db, &params, interval);
        for threads in [1, 2, 4] {
            let par = ClusterDatabase::build_parallel(&db, &params, interval, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(seq.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn set_at_and_cluster_lookup() {
        let db = dense_blob_db();
        let cdb = ClusterDatabase::build(&db, &ClusteringParams::new(15.0, 3));
        assert!(cdb.set_at(1).is_some());
        assert!(cdb.set_at(3).is_none());
        assert!(cdb.cluster(ClusterId::new(1, 0)).is_some());
        assert!(cdb.cluster(ClusterId::new(1, 5)).is_none());
        assert!(cdb.cluster(ClusterId::new(9, 0)).is_none());
    }

    #[test]
    fn from_sets_requires_contiguous_time() {
        let sets = vec![
            SnapshotClusterSet {
                time: 4,
                clusters: vec![cluster(4, &[1], &[(0.0, 0.0)])],
            },
            SnapshotClusterSet {
                time: 5,
                clusters: vec![],
            },
        ];
        let cdb = ClusterDatabase::from_sets(sets);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(4, 5)));
        assert!(cdb.set_at(3).is_none());
        assert_eq!(cdb.set_at(4).unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn from_sets_rejects_gaps() {
        let sets = vec![
            SnapshotClusterSet {
                time: 0,
                clusters: vec![],
            },
            SnapshotClusterSet {
                time: 2,
                clusters: vec![],
            },
        ];
        let _ = ClusterDatabase::from_sets(sets);
    }

    #[test]
    fn append_extends_time_domain() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let mut first = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(0, 1));
        let second = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(2, 2));
        first.append(second);
        assert_eq!(first.time_domain(), Some(TimeInterval::new(0, 2)));
        assert_eq!(first.len(), 3);
    }

    #[test]
    #[should_panic(expected = "right after")]
    fn append_rejects_non_adjacent_batch() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let mut first = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(0, 0));
        let second = ClusterDatabase::build_interval(&db, &params, TimeInterval::new(2, 2));
        first.append(second);
    }

    #[test]
    fn evict_before_drops_leading_ticks_only() {
        let db = dense_blob_db();
        let params = ClusteringParams::new(15.0, 3);
        let mut cdb = ClusterDatabase::build(&db, &params);
        assert_eq!(cdb.evict_before(0), 0, "t before the domain is a no-op");
        assert_eq!(cdb.evict_before(2), 2);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(2, 2)));
        assert!(cdb.set_at(1).is_none());
        assert!(cdb.cluster(ClusterId::new(0, 0)).is_none());
        assert!(cdb.cluster(ClusterId::new(2, 0)).is_some());
        // Appending after eviction still works off the (shrunk) domain.
        let next = ClusterDatabase::from_sets(vec![SnapshotClusterSet {
            time: 3,
            clusters: vec![],
        }]);
        cdb.append(next);
        assert_eq!(cdb.time_domain(), Some(TimeInterval::new(2, 3)));
        // Evicting past the end empties the database.
        assert_eq!(cdb.evict_before(10), 2);
        assert!(cdb.is_empty());
        assert_eq!(cdb.evict_before(10), 0);
    }

    #[test]
    fn iter_ids_enumerates_clusters() {
        let set = SnapshotClusterSet {
            time: 7,
            clusters: vec![
                cluster(7, &[1], &[(0.0, 0.0)]),
                cluster(7, &[2], &[(100.0, 0.0)]),
            ],
        };
        let ids: Vec<ClusterId> = set.iter_ids().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ClusterId::new(7, 0), ClusterId::new(7, 1)]);
    }
}
