//! DBSCAN density-based clustering with a grid-accelerated neighbour search.
//!
//! This is the clustering primitive behind Definition 1 (snapshot cluster) of
//! the paper.  The implementation follows the classic DBSCAN formulation of
//! Ester et al.: core points have at least `min_pts` points (themselves
//! included) within radius `eps`; clusters are the maximal sets of
//! density-connected points; border points are attached to the first cluster
//! that reaches them; everything else is noise.
//!
//! The ε-neighbourhood query is served by a uniform grid with cell side
//! `eps`, so a query only inspects the 3×3 block of cells around the query
//! point instead of the whole snapshot.  The grid is stored as a flat
//! sorted-bucket (CSR-style) structure inside a reusable [`DbscanScratch`]
//! arena: point indices are sorted by cell key into one contiguous buffer
//! with per-cell offset ranges, and cell lookup is a binary search over the
//! sorted unique keys.  Callers that cluster many snapshots (the cluster
//! database builders, the streaming clusterer) keep one scratch alive and
//! pass it to [`dbscan_with`], making the per-snapshot hot path free of heap
//! allocation apart from the output itself.

use gpdt_geo::bvs::BitVector;
use gpdt_geo::{Point, PointAccess, PointsView};

use crate::params::ClusteringParams;

const UNVISITED: u32 = u32::MAX;
const NOISE: u32 = u32::MAX - 1;

/// Result of running DBSCAN on a set of points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbscanResult {
    /// For each cluster, the indices (into the input slice) of its members,
    /// sorted in increasing order.
    pub clusters: Vec<Vec<usize>>,
    /// Indices of points assigned to no cluster.
    pub noise: Vec<usize>,
    /// Per-point cluster label (`NOISE` sentinel for noise), kept so that
    /// [`Self::label_of`] answers in O(1).
    labels: Vec<u32>,
}

impl DbscanResult {
    fn empty() -> Self {
        DbscanResult {
            clusters: Vec::new(),
            noise: Vec::new(),
            labels: Vec::new(),
        }
    }

    fn from_labels(clusters: Vec<Vec<usize>>, labels: &[u32]) -> Self {
        let noise = labels
            .iter()
            .enumerate()
            .filter_map(|(idx, &l)| (l == NOISE).then_some(idx))
            .collect();
        DbscanResult {
            clusters,
            noise,
            labels: labels.to_vec(),
        }
    }

    /// Cluster label of point `idx`: `Some(cluster_index)` or `None` for
    /// noise.  O(1) — labels are precomputed at construction.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not an index into the clustered point slice.
    pub fn label_of(&self, idx: usize) -> Option<usize> {
        match self.labels[idx] {
            NOISE => None,
            l => Some(l as usize),
        }
    }
}

#[inline]
fn cell_key_xy(x: f64, y: f64, eps: f64) -> (i64, i64) {
    ((x / eps).floor() as i64, (y / eps).floor() as i64)
}

#[inline]
fn cell_key(p: &Point, eps: f64) -> (i64, i64) {
    cell_key_xy(p.x, p.y, eps)
}

/// Reusable scratch arena for [`dbscan_with`]: the CSR grid buffers and the
/// per-point working state.  Create one (cheap, all-empty) and reuse it
/// across snapshots; every buffer is resized in place, so steady-state
/// clustering performs no heap allocation beyond the returned result.
#[derive(Debug, Clone, Default)]
pub struct DbscanScratch {
    /// `(cell key, point index)` pairs, sorted; materialised so the sort
    /// compares contiguous elements instead of chasing per-point key
    /// lookups.
    pairs: Vec<((i64, i64), u32)>,
    /// The CSR bucket payload sorted by (cell key, index), stored as three
    /// parallel columns (SoA): coordinates split into `bxs`/`bys` so the
    /// ε-scan streams two dense `f64` arrays, with the original point index
    /// alongside in `bidx`.
    bxs: Vec<f64>,
    bys: Vec<f64>,
    bidx: Vec<u32>,
    /// Sorted unique cell keys.
    cells: Vec<(i64, i64)>,
    /// CSR offsets into `bucketed`; `starts[c]..starts[c + 1]` is cell `c`'s
    /// bucket (one trailing sentinel).
    starts: Vec<u32>,
    /// Cell index (into `cells`) of each point.
    cell_of_point: Vec<u32>,
    /// Per cell: the three contiguous `bucketed` ranges covering its 3×3
    /// neighbourhood (cells are sorted by (col, row), so for each of the
    /// three columns the rows `r-1..=r+1` form one contiguous run).  The
    /// per-point ε-query walks these precomputed ranges without any lookup.
    neighbor_ranges: Vec<[(u32, u32); 3]>,
    /// Per-point cluster label during the sweep.
    labels: Vec<u32>,
    /// BFS expansion frontier of the cluster under construction.
    frontier: Vec<u32>,
    /// ε-neighbourhood query output buffer.
    neighbors: Vec<u32>,
    /// Points already pushed onto some cluster's frontier (enqueueing a
    /// point twice is a no-op, so the bit lets us skip the duplicate push).
    enqueued: BitVector,
}

impl DbscanScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        DbscanScratch::default()
    }

    /// Rebuilds the CSR grid over `points` with cell side `eps`.
    fn build_grid<P: PointAccess>(&mut self, points: P, eps: f64) {
        // Sorting (key, index) pairs keeps each bucket in increasing point
        // order, matching the insertion order of a per-cell push loop.
        self.pairs.clear();
        self.pairs.extend(
            (0..points.len()).map(|i| (cell_key_xy(points.x(i), points.y(i), eps), i as u32)),
        );
        self.pairs.sort_unstable();
        self.bxs.clear();
        self.bys.clear();
        self.bidx.clear();
        self.cells.clear();
        self.starts.clear();
        self.cell_of_point.clear();
        self.cell_of_point.resize(points.len(), 0);
        for (pos, &(key, i)) in self.pairs.iter().enumerate() {
            if self.cells.last() != Some(&key) {
                self.cells.push(key);
                self.starts.push(pos as u32);
            }
            self.bxs.push(points.x(i as usize));
            self.bys.push(points.y(i as usize));
            self.bidx.push(i);
            self.cell_of_point[i as usize] = (self.cells.len() - 1) as u32;
        }
        self.starts.push(points.len() as u32);

        // Precompute each cell's three 3×3-block ranges: three binary
        // searches per *cell* instead of nine per *point*.
        self.neighbor_ranges.clear();
        self.neighbor_ranges.reserve(self.cells.len());
        for &(col, row) in &self.cells {
            let mut ranges = [(0u32, 0u32); 3];
            for (k, dc) in (-1i64..=1).enumerate() {
                let lo = self.cells.partition_point(|&c| c < (col + dc, row - 1));
                let hi = self.cells.partition_point(|&c| c <= (col + dc, row + 1));
                ranges[k] = (self.starts[lo], self.starts[hi]);
            }
            self.neighbor_ranges.push(ranges);
        }
    }

    /// Writes the indices of all points within `eps` of `points[idx]`
    /// (including `idx` itself) into the `neighbors` buffer.
    fn find_neighbors<P: PointAccess>(&mut self, points: P, idx: usize, eps: f64) {
        let (px, py) = (points.x(idx), points.y(idx));
        let eps_sq = eps * eps;
        self.neighbors.clear();
        // The bucketed copies are columnar regardless of the input layout,
        // so the ε-scan always runs on the dispatched SIMD kernel.  It
        // pushes matches in bucket order with an exact comparison, so the
        // neighbour list is identical to a scalar scan at every level.
        let d = gpdt_geo::simd::dispatch();
        for &(lo, hi) in &self.neighbor_ranges[self.cell_of_point[idx] as usize] {
            let (lo, hi) = (lo as usize, hi as usize);
            d.filter_within(
                &self.bxs[lo..hi],
                &self.bys[lo..hi],
                &self.bidx[lo..hi],
                px,
                py,
                eps_sq,
                &mut self.neighbors,
            );
        }
    }
}

/// Runs DBSCAN over `points` with the given parameters.
///
/// The result's clusters are reported in order of discovery (by lowest seed
/// index) with their member index lists sorted.
///
/// Allocates a fresh scratch arena per call; snapshot-per-snapshot callers
/// should hold a [`DbscanScratch`] and use [`dbscan_with`] instead.
pub fn dbscan(points: &[Point], params: &ClusteringParams) -> DbscanResult {
    dbscan_with(points, params, &mut DbscanScratch::new())
}

/// Runs DBSCAN over `points`, reusing `scratch` for every intermediate
/// buffer.  Produces exactly the same result as [`dbscan`].
pub fn dbscan_with(
    points: &[Point],
    params: &ClusteringParams,
    scratch: &mut DbscanScratch,
) -> DbscanResult {
    dbscan_access(points, params, scratch)
}

/// Runs DBSCAN over a columnar point set ([`PointsView`]).
///
/// Allocates a fresh scratch arena; repeated callers should use
/// [`dbscan_columns_with`].
pub fn dbscan_columns(points: PointsView<'_>, params: &ClusteringParams) -> DbscanResult {
    dbscan_access(points, params, &mut DbscanScratch::new())
}

/// Runs DBSCAN over a columnar point set, reusing `scratch`.
///
/// Index-for-index identical to [`dbscan_with`] on the same point sequence:
/// the shared sweep is monomorphised over the layout and performs the same
/// float comparisons in the same order.
pub fn dbscan_columns_with(
    points: PointsView<'_>,
    params: &ClusteringParams,
    scratch: &mut DbscanScratch,
) -> DbscanResult {
    dbscan_access(points, params, scratch)
}

/// The DBSCAN sweep, generic over the point layout.
pub fn dbscan_access<P: PointAccess>(
    points: P,
    params: &ClusteringParams,
    scratch: &mut DbscanScratch,
) -> DbscanResult {
    if points.is_empty() {
        return DbscanResult::empty();
    }

    scratch.build_grid(points, params.eps);
    scratch.labels.clear();
    scratch.labels.resize(points.len(), UNVISITED);
    scratch.enqueued.reset(points.len());
    let mut clusters: Vec<Vec<usize>> = Vec::new();

    for start in 0..points.len() {
        if scratch.labels[start] != UNVISITED {
            continue;
        }
        scratch.find_neighbors(points, start, params.eps);
        if scratch.neighbors.len() < params.min_pts {
            scratch.labels[start] = NOISE;
            continue;
        }
        // `start` is a core point: begin a new cluster and expand it.
        let cluster_id = clusters.len() as u32;
        clusters.push(Vec::new());
        scratch.labels[start] = cluster_id;
        clusters[cluster_id as usize].push(start);

        scratch.frontier.clear();
        for i in 0..scratch.neighbors.len() {
            let q = scratch.neighbors[i];
            if !scratch.enqueued.get(q as usize) {
                scratch.enqueued.set(q as usize, true);
                scratch.frontier.push(q);
            }
        }
        let mut cursor = 0;
        while cursor < scratch.frontier.len() {
            let q = scratch.frontier[cursor] as usize;
            cursor += 1;
            if scratch.labels[q] == NOISE {
                // Border point previously marked noise: claim it.
                scratch.labels[q] = cluster_id;
                clusters[cluster_id as usize].push(q);
                continue;
            }
            if scratch.labels[q] != UNVISITED {
                continue;
            }
            scratch.labels[q] = cluster_id;
            clusters[cluster_id as usize].push(q);
            scratch.find_neighbors(points, q, params.eps);
            if scratch.neighbors.len() >= params.min_pts {
                // `q` is itself a core point: its neighbourhood joins the
                // expansion frontier (each point at most once — a duplicate
                // enqueue would be skipped by the label check anyway).
                for i in 0..scratch.neighbors.len() {
                    let r = scratch.neighbors[i];
                    if !scratch.enqueued.get(r as usize) {
                        scratch.enqueued.set(r as usize, true);
                        scratch.frontier.push(r);
                    }
                }
            }
        }
    }

    for members in &mut clusters {
        members.sort_unstable();
    }
    DbscanResult::from_labels(clusters, &scratch.labels)
}

/// The previous hash-grid implementation, kept as the ablation baseline for
/// the `micro` benchmark (CSR arena vs per-snapshot `HashMap` grid) and as a
/// second oracle for the equivalence tests.
#[doc(hidden)]
pub fn dbscan_hashgrid(points: &[Point], params: &ClusteringParams) -> DbscanResult {
    use std::collections::HashMap;

    if points.is_empty() {
        return DbscanResult::empty();
    }

    let eps = params.eps;
    let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (idx, p) in points.iter().enumerate() {
        cells.entry(cell_key(p, eps)).or_default().push(idx);
    }
    let neighbors_of = |idx: usize| -> Vec<usize> {
        let p = &points[idx];
        let (cx, cy) = cell_key(p, eps);
        let eps_sq = eps * eps;
        let mut out = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = cells.get(&(cx + dx, cy + dy)) {
                    for &other in bucket {
                        if points[other].distance_sq(p) <= eps_sq {
                            out.push(other);
                        }
                    }
                }
            }
        }
        out
    };
    run_with_neighbors(points, params, neighbors_of)
}

/// Brute-force DBSCAN used as a test oracle: identical semantics, O(n²)
/// neighbour search.
#[doc(hidden)]
pub fn dbscan_bruteforce(points: &[Point], params: &ClusteringParams) -> DbscanResult {
    let neighbors_of = |idx: usize| -> Vec<usize> {
        let eps_sq = params.eps * params.eps;
        points
            .iter()
            .enumerate()
            .filter_map(|(j, q)| (points[idx].distance_sq(q) <= eps_sq).then_some(j))
            .collect()
    };
    run_with_neighbors(points, params, neighbors_of)
}

/// The reference DBSCAN sweep shared by the two oracle implementations,
/// parameterised by an allocating neighbour query.
fn run_with_neighbors(
    points: &[Point],
    params: &ClusteringParams,
    neighbors_of: impl Fn(usize) -> Vec<usize>,
) -> DbscanResult {
    let mut labels = vec![UNVISITED; points.len()];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for start in 0..points.len() {
        if labels[start] != UNVISITED {
            continue;
        }
        let neighbors = neighbors_of(start);
        if neighbors.len() < params.min_pts {
            labels[start] = NOISE;
            continue;
        }
        let cluster_id = clusters.len() as u32;
        clusters.push(Vec::new());
        labels[start] = cluster_id;
        clusters[cluster_id as usize].push(start);
        let mut frontier = neighbors;
        let mut cursor = 0;
        while cursor < frontier.len() {
            let q = frontier[cursor];
            cursor += 1;
            if labels[q] == NOISE {
                labels[q] = cluster_id;
                clusters[cluster_id as usize].push(q);
                continue;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster_id;
            clusters[cluster_id as usize].push(q);
            let q_neighbors = neighbors_of(q);
            if q_neighbors.len() >= params.min_pts {
                frontier.extend(q_neighbors);
            }
        }
    }
    for members in &mut clusters {
        members.sort_unstable();
        members.dedup();
    }
    DbscanResult::from_labels(clusters, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn empty_input() {
        let r = dbscan(&[], &ClusteringParams::new(1.0, 2));
        assert!(r.clusters.is_empty());
        assert!(r.noise.is_empty());
    }

    #[test]
    fn single_point_is_noise_unless_min_pts_one() {
        let p = pts(&[(0.0, 0.0)]);
        let r = dbscan(&p, &ClusteringParams::new(1.0, 2));
        assert!(r.clusters.is_empty());
        assert_eq!(r.noise, vec![0]);

        let r1 = dbscan(&p, &ClusteringParams::new(1.0, 1));
        assert_eq!(r1.clusters, vec![vec![0]]);
        assert!(r1.noise.is_empty());
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut coords = Vec::new();
        for i in 0..5 {
            coords.push((i as f64 * 0.5, 0.0));
        }
        for i in 0..4 {
            coords.push((100.0 + i as f64 * 0.5, 0.0));
        }
        let p = pts(&coords);
        let r = dbscan(&p, &ClusteringParams::new(1.0, 3));
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.clusters[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(r.clusters[1], vec![5, 6, 7, 8]);
        assert!(r.noise.is_empty());
    }

    #[test]
    fn isolated_outlier_is_noise() {
        let p = pts(&[
            (0.0, 0.0),
            (0.5, 0.0),
            (1.0, 0.0),
            (0.5, 0.5),
            (500.0, 500.0),
        ]);
        let r = dbscan(&p, &ClusteringParams::new(1.0, 3));
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.noise, vec![4]);
        assert_eq!(r.label_of(0), Some(0));
        assert_eq!(r.label_of(4), None);
    }

    #[test]
    fn chain_is_density_connected() {
        // A chain of points each within eps of the next: all of them are
        // density-reachable from the ends through core points.
        let p: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 0.9, 0.0)).collect();
        let r = dbscan(&p, &ClusteringParams::new(1.0, 2));
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].len(), 10);
    }

    #[test]
    fn border_point_between_two_clusters_assigned_once() {
        // Two dense blobs share one border point in the middle; it must end
        // up in exactly one cluster so that clusters never overlap.
        let mut coords = vec![];
        for i in 0..4 {
            coords.push((i as f64 * 0.4, 0.0)); // left blob: 0..4
        }
        coords.push((2.0, 0.0)); // border point, index 4
        for i in 0..4 {
            coords.push((2.8 + i as f64 * 0.4, 0.0)); // right blob: 5..9
        }
        let p = pts(&coords);
        let r = dbscan(&p, &ClusteringParams::new(0.9, 3));
        let total: usize = r.clusters.iter().map(Vec::len).sum();
        assert_eq!(total + r.noise.len(), p.len());
        let appearing: usize = r
            .clusters
            .iter()
            .map(|c| c.iter().filter(|&&i| i == 4).count())
            .sum();
        assert_eq!(
            appearing, 1,
            "border point must belong to exactly one cluster"
        );
    }

    #[test]
    fn clusters_partition_points_with_noise() {
        let p: Vec<Point> = (0..50)
            .map(|i| Point::new((i % 7) as f64 * 3.0, (i / 7) as f64 * 3.0))
            .collect();
        let r = dbscan(&p, &ClusteringParams::new(3.5, 4));
        let mut all: Vec<usize> = r.clusters.iter().flatten().copied().collect();
        all.extend(&r.noise);
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn labels_agree_with_cluster_membership() {
        let p: Vec<Point> = (0..60)
            .map(|i| Point::new((i % 9) as f64 * 2.5, (i / 9) as f64 * 2.5))
            .collect();
        let r = dbscan(&p, &ClusteringParams::new(3.0, 3));
        for (ci, members) in r.clusters.iter().enumerate() {
            for &m in members {
                assert_eq!(r.label_of(m), Some(ci));
            }
        }
        for &m in &r.noise {
            assert_eq!(r.label_of(m), None);
        }
    }

    #[test]
    fn grid_matches_bruteforce_on_structured_scene() {
        let mut coords = Vec::new();
        for i in 0..20 {
            coords.push((i as f64 * 7.0, (i % 3) as f64 * 5.0));
        }
        for i in 0..15 {
            coords.push((200.0 + (i % 5) as f64 * 2.0, (i / 5) as f64 * 2.0));
        }
        let p = pts(&coords);
        for (eps, m) in [(3.0, 2), (6.0, 3), (10.0, 4), (25.0, 5)] {
            let params = ClusteringParams::new(eps, m);
            let fast = dbscan(&p, &params);
            let slow = dbscan_bruteforce(&p, &params);
            assert_eq!(fast.clusters, slow.clusters, "eps={eps} m={m}");
            assert_eq!(fast.noise, slow.noise, "eps={eps} m={m}");
        }
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(rng: &mut StdRng) -> Vec<Point> {
        let n = rng.gen_range(0..60);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect()
    }

    fn random_params(rng: &mut StdRng) -> ClusteringParams {
        ClusteringParams::new(rng.gen_range(0.5..40.0), rng.gen_range(1usize..6))
    }

    /// The grid-accelerated implementation agrees with the brute-force
    /// oracle.
    #[test]
    fn grid_equals_bruteforce() {
        let mut rng = StdRng::seed_from_u64(0xd1);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let fast = dbscan(&points, &params);
            let slow = dbscan_bruteforce(&points, &params);
            assert_eq!(fast, slow);
        }
    }

    /// A scratch arena reused across many differently-sized snapshots gives
    /// exactly the same result as a fresh run, the hash-grid ablation
    /// baseline and the brute-force oracle.
    #[test]
    fn reused_scratch_equals_fresh_and_oracles() {
        let mut rng = StdRng::seed_from_u64(0xd5);
        let mut scratch = DbscanScratch::new();
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let reused = dbscan_with(&points, &params, &mut scratch);
            assert_eq!(reused, dbscan(&points, &params));
            assert_eq!(reused, dbscan_hashgrid(&points, &params));
            assert_eq!(reused, dbscan_bruteforce(&points, &params));
        }
    }

    /// The columnar (SoA) entry points agree exactly with the slice (AoS)
    /// path — same clusters, same noise, same labels — across random scenes
    /// and a scratch arena shared between the two layouts.
    #[test]
    fn columns_equal_slices() {
        use gpdt_geo::PointColumns;
        let mut rng = StdRng::seed_from_u64(0xd6);
        let mut scratch = DbscanScratch::new();
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let cols = PointColumns::from_points(&points);
            let aos = dbscan_with(&points, &params, &mut scratch);
            let soa = dbscan_columns_with(cols.view(), &params, &mut scratch);
            assert_eq!(aos, soa);
            assert_eq!(soa, dbscan_columns(cols.view(), &params));
        }
    }

    /// Clusters and noise together partition the input exactly.
    #[test]
    fn output_is_partition() {
        let mut rng = StdRng::seed_from_u64(0xd2);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let r = dbscan(&points, &params);
            let mut all: Vec<usize> = r.clusters.iter().flatten().copied().collect();
            all.extend(&r.noise);
            all.sort_unstable();
            assert_eq!(all, (0..points.len()).collect::<Vec<_>>());
        }
    }

    /// Every cluster is non-empty and contains at least one core point
    /// (the seed it was grown from).
    #[test]
    fn clusters_contain_a_core_point() {
        let mut rng = StdRng::seed_from_u64(0xd3);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let r = dbscan(&points, &params);
            let eps_sq = params.eps * params.eps;
            for c in &r.clusters {
                assert!(!c.is_empty());
                let has_core = c.iter().any(|&i| {
                    points
                        .iter()
                        .filter(|q| points[i].distance_sq(q) <= eps_sq)
                        .count()
                        >= params.min_pts
                });
                assert!(has_core);
            }
        }
    }

    /// No noise point is a core point: every core point ends up in some
    /// cluster.
    #[test]
    fn noise_points_are_not_core() {
        let mut rng = StdRng::seed_from_u64(0xd4);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let r = dbscan(&points, &params);
            let eps_sq = params.eps * params.eps;
            for &i in &r.noise {
                let degree = points
                    .iter()
                    .filter(|q| points[i].distance_sq(q) <= eps_sq)
                    .count();
                assert!(degree < params.min_pts);
            }
        }
    }
}
