//! DBSCAN density-based clustering with a grid-accelerated neighbour search.
//!
//! This is the clustering primitive behind Definition 1 (snapshot cluster) of
//! the paper.  The implementation follows the classic DBSCAN formulation of
//! Ester et al.: core points have at least `min_pts` points (themselves
//! included) within radius `eps`; clusters are the maximal sets of
//! density-connected points; border points are attached to the first cluster
//! that reaches them; everything else is noise.
//!
//! The ε-neighbourhood query is served by a uniform hash grid with cell side
//! `eps`, so a query only inspects the 3×3 block of cells around the query
//! point instead of the whole snapshot.

use std::collections::HashMap;

use gpdt_geo::Point;

use crate::params::ClusteringParams;

/// Result of running DBSCAN on a set of points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbscanResult {
    /// For each cluster, the indices (into the input slice) of its members,
    /// sorted in increasing order.
    pub clusters: Vec<Vec<usize>>,
    /// Indices of points assigned to no cluster.
    pub noise: Vec<usize>,
}

impl DbscanResult {
    /// Cluster label of point `idx`: `Some(cluster_index)` or `None` for
    /// noise.
    pub fn label_of(&self, idx: usize) -> Option<usize> {
        self.clusters
            .iter()
            .position(|members| members.binary_search(&idx).is_ok())
    }
}

/// A hash-grid over points with cell side `eps`, answering ε-range queries.
struct NeighborGrid<'a> {
    points: &'a [Point],
    eps: f64,
    cells: HashMap<(i64, i64), Vec<usize>>,
}

impl<'a> NeighborGrid<'a> {
    fn build(points: &'a [Point], eps: f64) -> Self {
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (idx, p) in points.iter().enumerate() {
            cells.entry(Self::key(p, eps)).or_default().push(idx);
        }
        NeighborGrid { points, eps, cells }
    }

    #[inline]
    fn key(p: &Point, eps: f64) -> (i64, i64) {
        ((p.x / eps).floor() as i64, (p.y / eps).floor() as i64)
    }

    /// Indices of all points within `eps` of `points[idx]`, including `idx`
    /// itself.
    fn neighbors_of(&self, idx: usize) -> Vec<usize> {
        let p = &self.points[idx];
        let (cx, cy) = Self::key(p, self.eps);
        let eps_sq = self.eps * self.eps;
        let mut out = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &other in bucket {
                        if self.points[other].distance_sq(p) <= eps_sq {
                            out.push(other);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Runs DBSCAN over `points` with the given parameters.
///
/// The result's clusters are reported in order of discovery (by lowest seed
/// index) with their member index lists sorted.
pub fn dbscan(points: &[Point], params: &ClusteringParams) -> DbscanResult {
    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;

    if points.is_empty() {
        return DbscanResult {
            clusters: Vec::new(),
            noise: Vec::new(),
        };
    }

    let grid = NeighborGrid::build(points, params.eps);
    let mut labels = vec![UNVISITED; points.len()];
    let mut clusters: Vec<Vec<usize>> = Vec::new();

    for start in 0..points.len() {
        if labels[start] != UNVISITED {
            continue;
        }
        let neighbors = grid.neighbors_of(start);
        if neighbors.len() < params.min_pts {
            labels[start] = NOISE;
            continue;
        }
        // `start` is a core point: begin a new cluster and expand it.
        let cluster_id = clusters.len() as u32;
        clusters.push(Vec::new());
        labels[start] = cluster_id;
        clusters[cluster_id as usize].push(start);

        let mut frontier: Vec<usize> = neighbors;
        let mut cursor = 0;
        while cursor < frontier.len() {
            let q = frontier[cursor];
            cursor += 1;
            if labels[q] == NOISE {
                // Border point previously marked noise: claim it.
                labels[q] = cluster_id;
                clusters[cluster_id as usize].push(q);
                continue;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster_id;
            clusters[cluster_id as usize].push(q);
            let q_neighbors = grid.neighbors_of(q);
            if q_neighbors.len() >= params.min_pts {
                // `q` is itself a core point: its neighbourhood joins the
                // expansion frontier.
                frontier.extend(q_neighbors);
            }
        }
    }

    for members in &mut clusters {
        members.sort_unstable();
        members.dedup();
    }
    let noise = labels
        .iter()
        .enumerate()
        .filter_map(|(idx, &l)| (l == NOISE).then_some(idx))
        .collect();
    DbscanResult { clusters, noise }
}

/// Brute-force DBSCAN used as a test oracle: identical semantics, O(n²)
/// neighbour search.
#[doc(hidden)]
pub fn dbscan_bruteforce(points: &[Point], params: &ClusteringParams) -> DbscanResult {
    // Same algorithm with a linear-scan neighbour query; kept separate so the
    // grid-accelerated version can be validated against it.
    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;

    let neighbors_of = |idx: usize| -> Vec<usize> {
        let eps_sq = params.eps * params.eps;
        points
            .iter()
            .enumerate()
            .filter_map(|(j, q)| (points[idx].distance_sq(q) <= eps_sq).then_some(j))
            .collect()
    };

    let mut labels = vec![UNVISITED; points.len()];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for start in 0..points.len() {
        if labels[start] != UNVISITED {
            continue;
        }
        let neighbors = neighbors_of(start);
        if neighbors.len() < params.min_pts {
            labels[start] = NOISE;
            continue;
        }
        let cluster_id = clusters.len() as u32;
        clusters.push(Vec::new());
        labels[start] = cluster_id;
        clusters[cluster_id as usize].push(start);
        let mut frontier = neighbors;
        let mut cursor = 0;
        while cursor < frontier.len() {
            let q = frontier[cursor];
            cursor += 1;
            if labels[q] == NOISE {
                labels[q] = cluster_id;
                clusters[cluster_id as usize].push(q);
                continue;
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster_id;
            clusters[cluster_id as usize].push(q);
            let q_neighbors = neighbors_of(q);
            if q_neighbors.len() >= params.min_pts {
                frontier.extend(q_neighbors);
            }
        }
    }
    for members in &mut clusters {
        members.sort_unstable();
        members.dedup();
    }
    let noise = labels
        .iter()
        .enumerate()
        .filter_map(|(idx, &l)| (l == NOISE).then_some(idx))
        .collect();
    DbscanResult { clusters, noise }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn empty_input() {
        let r = dbscan(&[], &ClusteringParams::new(1.0, 2));
        assert!(r.clusters.is_empty());
        assert!(r.noise.is_empty());
    }

    #[test]
    fn single_point_is_noise_unless_min_pts_one() {
        let p = pts(&[(0.0, 0.0)]);
        let r = dbscan(&p, &ClusteringParams::new(1.0, 2));
        assert!(r.clusters.is_empty());
        assert_eq!(r.noise, vec![0]);

        let r1 = dbscan(&p, &ClusteringParams::new(1.0, 1));
        assert_eq!(r1.clusters, vec![vec![0]]);
        assert!(r1.noise.is_empty());
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut coords = Vec::new();
        for i in 0..5 {
            coords.push((i as f64 * 0.5, 0.0));
        }
        for i in 0..4 {
            coords.push((100.0 + i as f64 * 0.5, 0.0));
        }
        let p = pts(&coords);
        let r = dbscan(&p, &ClusteringParams::new(1.0, 3));
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.clusters[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(r.clusters[1], vec![5, 6, 7, 8]);
        assert!(r.noise.is_empty());
    }

    #[test]
    fn isolated_outlier_is_noise() {
        let p = pts(&[
            (0.0, 0.0),
            (0.5, 0.0),
            (1.0, 0.0),
            (0.5, 0.5),
            (500.0, 500.0),
        ]);
        let r = dbscan(&p, &ClusteringParams::new(1.0, 3));
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.noise, vec![4]);
        assert_eq!(r.label_of(0), Some(0));
        assert_eq!(r.label_of(4), None);
    }

    #[test]
    fn chain_is_density_connected() {
        // A chain of points each within eps of the next: all of them are
        // density-reachable from the ends through core points.
        let p: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 0.9, 0.0)).collect();
        let r = dbscan(&p, &ClusteringParams::new(1.0, 2));
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].len(), 10);
    }

    #[test]
    fn border_point_between_two_clusters_assigned_once() {
        // Two dense blobs share one border point in the middle; it must end
        // up in exactly one cluster so that clusters never overlap.
        let mut coords = vec![];
        for i in 0..4 {
            coords.push((i as f64 * 0.4, 0.0)); // left blob: 0..4
        }
        coords.push((2.0, 0.0)); // border point, index 4
        for i in 0..4 {
            coords.push((2.8 + i as f64 * 0.4, 0.0)); // right blob: 5..9
        }
        let p = pts(&coords);
        let r = dbscan(&p, &ClusteringParams::new(0.9, 3));
        let total: usize = r.clusters.iter().map(Vec::len).sum();
        assert_eq!(total + r.noise.len(), p.len());
        let appearing: usize = r
            .clusters
            .iter()
            .map(|c| c.iter().filter(|&&i| i == 4).count())
            .sum();
        assert_eq!(
            appearing, 1,
            "border point must belong to exactly one cluster"
        );
    }

    #[test]
    fn clusters_partition_points_with_noise() {
        let p: Vec<Point> = (0..50)
            .map(|i| Point::new((i % 7) as f64 * 3.0, (i / 7) as f64 * 3.0))
            .collect();
        let r = dbscan(&p, &ClusteringParams::new(3.5, 4));
        let mut all: Vec<usize> = r.clusters.iter().flatten().copied().collect();
        all.extend(&r.noise);
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn grid_matches_bruteforce_on_structured_scene() {
        let mut coords = Vec::new();
        for i in 0..20 {
            coords.push((i as f64 * 7.0, (i % 3) as f64 * 5.0));
        }
        for i in 0..15 {
            coords.push((200.0 + (i % 5) as f64 * 2.0, (i / 5) as f64 * 2.0));
        }
        let p = pts(&coords);
        for (eps, m) in [(3.0, 2), (6.0, 3), (10.0, 4), (25.0, 5)] {
            let params = ClusteringParams::new(eps, m);
            let fast = dbscan(&p, &params);
            let slow = dbscan_bruteforce(&p, &params);
            assert_eq!(fast.clusters, slow.clusters, "eps={eps} m={m}");
            assert_eq!(fast.noise, slow.noise, "eps={eps} m={m}");
        }
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(rng: &mut StdRng) -> Vec<Point> {
        let n = rng.gen_range(0..60);
        (0..n)
            .map(|_| Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
            .collect()
    }

    fn random_params(rng: &mut StdRng) -> ClusteringParams {
        ClusteringParams::new(rng.gen_range(0.5..40.0), rng.gen_range(1usize..6))
    }

    /// The grid-accelerated implementation agrees with the brute-force
    /// oracle.
    #[test]
    fn grid_equals_bruteforce() {
        let mut rng = StdRng::seed_from_u64(0xd1);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let fast = dbscan(&points, &params);
            let slow = dbscan_bruteforce(&points, &params);
            assert_eq!(fast, slow);
        }
    }

    /// Clusters and noise together partition the input exactly.
    #[test]
    fn output_is_partition() {
        let mut rng = StdRng::seed_from_u64(0xd2);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let r = dbscan(&points, &params);
            let mut all: Vec<usize> = r.clusters.iter().flatten().copied().collect();
            all.extend(&r.noise);
            all.sort_unstable();
            assert_eq!(all, (0..points.len()).collect::<Vec<_>>());
        }
    }

    /// Every cluster is non-empty and contains at least one core point
    /// (the seed it was grown from).
    #[test]
    fn clusters_contain_a_core_point() {
        let mut rng = StdRng::seed_from_u64(0xd3);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let r = dbscan(&points, &params);
            let eps_sq = params.eps * params.eps;
            for c in &r.clusters {
                assert!(!c.is_empty());
                let has_core = c.iter().any(|&i| {
                    points
                        .iter()
                        .filter(|q| points[i].distance_sq(q) <= eps_sq)
                        .count()
                        >= params.min_pts
                });
                assert!(has_core);
            }
        }
    }

    /// No noise point is a core point: every core point ends up in some
    /// cluster.
    #[test]
    fn noise_points_are_not_core() {
        let mut rng = StdRng::seed_from_u64(0xd4);
        for _ in 0..128 {
            let points = random_points(&mut rng);
            let params = random_params(&mut rng);
            let r = dbscan(&points, &params);
            let eps_sq = params.eps * params.eps;
            for &i in &r.noise {
                let degree = points
                    .iter()
                    .filter(|q| points[i].distance_sq(q) <= eps_sq)
                    .count();
                assert!(degree < params.min_pts);
            }
        }
    }
}
