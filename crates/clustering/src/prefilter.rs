//! CuTS-style pre-partitioning of the object population.
//!
//! The paper notes (§III, phase 1) that snapshot clustering can be sped up by
//! first simplifying the trajectories with Douglas–Peucker and clustering the
//! resulting line segments, so that the per-timestamp DBSCAN only has to look
//! at objects that could possibly be density-connected during a time window.
//!
//! [`segment_prefilter`] implements this idea as a *partitioning* step: for a
//! given time window it groups objects into connected components such that
//! two objects in different components are guaranteed to be farther apart
//! than `eps` at every tick of the window.  Clustering each component
//! independently therefore yields exactly the same snapshot clusters as
//! clustering the whole population.
//!
//! The guarantee is obtained conservatively from the simplified
//! trajectories: an object's position at any tick of the window deviates from
//! its simplified polyline by at most the simplification tolerance, so two
//! objects whose simplified sub-polylines stay farther apart than
//! `eps + 2·tolerance` throughout the window can never be ε-neighbours.

use std::collections::HashMap;

use gpdt_geo::Point;
use gpdt_trajectory::{simplify::simplify_trajectory, ObjectId, TimeInterval, TrajectoryDatabase};

/// A partition of the object population for one time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Groups of objects; objects in different groups are never within `eps`
    /// of each other during the window.
    pub groups: Vec<Vec<ObjectId>>,
}

impl Partition {
    /// Total number of objects covered by the partition.
    pub fn total_objects(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

/// Groups the objects of `db` into independently clusterable components for
/// the time window `window`.
///
/// `eps` is the DBSCAN radius that will later be used for snapshot
/// clustering; `tolerance` is the Douglas–Peucker tolerance applied to each
/// trajectory before measuring separations.
pub fn segment_prefilter(
    db: &TrajectoryDatabase,
    window: TimeInterval,
    eps: f64,
    tolerance: f64,
) -> Partition {
    // Conservative separation threshold: simplified positions may be off by
    // up to `tolerance` for each of the two objects.
    let threshold = eps + 2.0 * tolerance;

    // Sample each object's simplified position at the window boundaries and a
    // midpoint, plus its bounding box over the window; two objects whose
    // window bounding boxes (padded by the threshold) do not intersect can
    // never interact.
    struct Summary {
        id: ObjectId,
        min: Point,
        max: Point,
    }

    let mut summaries: Vec<Summary> = Vec::new();
    for traj in db.iter() {
        let Some(lifespan) = window.intersect(&traj.lifespan()) else {
            continue;
        };
        let simplified = simplify_trajectory(traj, tolerance);
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for t in lifespan.iter() {
            if let Some(p) = simplified.position_at(t) {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
            }
        }
        if min.x.is_finite() {
            summaries.push(Summary {
                id: traj.id(),
                min,
                max,
            });
        }
    }

    // Union-find over objects whose padded window boxes intersect.
    let n = summaries.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let boxes_interact = |a: &Summary, b: &Summary| -> bool {
        a.min.x - threshold <= b.max.x
            && b.min.x - threshold <= a.max.x
            && a.min.y - threshold <= b.max.y
            && b.min.y - threshold <= a.max.y
    };
    for (i, left) in summaries.iter().enumerate() {
        for (j, right) in summaries.iter().enumerate().skip(i + 1) {
            if boxes_interact(left, right) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    let mut groups: HashMap<usize, Vec<ObjectId>> = HashMap::new();
    for (i, summary) in summaries.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(summary.id);
    }
    let mut groups: Vec<Vec<ObjectId>> = groups.into_values().collect();
    for g in &mut groups {
        g.sort();
    }
    groups.sort();
    Partition { groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn stationary(id: u32, x: f64, y: f64, start: u32, end: u32) -> Trajectory {
        Trajectory::from_points(ObjectId::new(id), vec![(start, (x, y)), (end, (x, y))])
    }

    #[test]
    fn far_apart_objects_are_separated() {
        let db = TrajectoryDatabase::from_trajectories(vec![
            stationary(1, 0.0, 0.0, 0, 10),
            stationary(2, 5.0, 0.0, 0, 10),
            stationary(3, 10_000.0, 0.0, 0, 10),
        ]);
        let p = segment_prefilter(&db, TimeInterval::new(0, 10), 50.0, 1.0);
        assert_eq!(p.groups.len(), 2);
        assert_eq!(p.total_objects(), 3);
        assert_eq!(p.groups[0], vec![ObjectId::new(1), ObjectId::new(2)]);
        assert_eq!(p.groups[1], vec![ObjectId::new(3)]);
    }

    #[test]
    fn objects_outside_window_are_excluded() {
        let db = TrajectoryDatabase::from_trajectories(vec![
            stationary(1, 0.0, 0.0, 0, 5),
            stationary(2, 0.0, 0.0, 50, 60),
        ]);
        let p = segment_prefilter(&db, TimeInterval::new(0, 10), 50.0, 1.0);
        assert_eq!(p.total_objects(), 1);
        assert_eq!(p.groups[0], vec![ObjectId::new(1)]);
    }

    #[test]
    fn moving_objects_that_cross_are_grouped() {
        // Two objects start far apart but cross paths inside the window.
        let a =
            Trajectory::from_points(ObjectId::new(1), vec![(0, (0.0, 0.0)), (10, (1000.0, 0.0))]);
        let b = Trajectory::from_points(
            ObjectId::new(2),
            vec![(0, (1000.0, 10.0)), (10, (0.0, 10.0))],
        );
        let db = TrajectoryDatabase::from_trajectories(vec![a, b]);
        let p = segment_prefilter(&db, TimeInterval::new(0, 10), 50.0, 1.0);
        assert_eq!(p.groups.len(), 1);
        assert_eq!(p.groups[0].len(), 2);
    }

    #[test]
    fn partition_is_safe_for_dbscan() {
        // Objects in different groups are farther apart than eps at every
        // tick of the window, so clustering per group equals clustering the
        // whole set.
        let db = TrajectoryDatabase::from_trajectories(vec![
            stationary(1, 0.0, 0.0, 0, 20),
            stationary(2, 30.0, 0.0, 0, 20),
            stationary(3, 2_000.0, 0.0, 0, 20),
            stationary(4, 2_030.0, 0.0, 0, 20),
        ]);
        let eps = 100.0;
        let window = TimeInterval::new(0, 20);
        let p = segment_prefilter(&db, window, eps, 5.0);
        assert_eq!(p.groups.len(), 2);
        for t in window.iter() {
            let snap = db.snapshot(t);
            for g1 in &p.groups {
                for g2 in &p.groups {
                    if g1 == g2 {
                        continue;
                    }
                    for &o1 in g1 {
                        for &o2 in g2 {
                            let p1 = snap.position_of(o1).unwrap();
                            let p2 = snap.position_of(o2).unwrap();
                            assert!(p1.distance(&p2) > eps);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_database_gives_empty_partition() {
        let db = TrajectoryDatabase::new();
        let p = segment_prefilter(&db, TimeInterval::new(0, 10), 50.0, 1.0);
        assert!(p.groups.is_empty());
        assert_eq!(p.total_objects(), 0);
    }
}
