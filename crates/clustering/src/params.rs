//! Clustering parameters.

/// Parameters of the density-based snapshot clustering.
///
/// These are the `ε` (neighbourhood radius, metres) and `m` (minimum number
/// of neighbours for a core point) parameters of DBSCAN from Definition 1 of
/// the paper.  The paper's Beijing-taxi preprocessing uses `ε = 200 m` and
/// `m = 5`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringParams {
    /// Neighbourhood radius `ε` in metres.
    pub eps: f64,
    /// Minimum neighbourhood size `m` for a point to be a core point
    /// (the point itself counts as its own neighbour).
    pub min_pts: usize,
}

impl ClusteringParams {
    /// Creates clustering parameters.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not strictly positive and finite, or if `min_pts`
    /// is zero.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite, got {eps}"
        );
        assert!(min_pts >= 1, "min_pts must be at least 1");
        ClusteringParams { eps, min_pts }
    }

    /// The setting used by the paper's preprocessing of the Beijing taxi
    /// dataset: `ε = 200 m`, `m = 5`.
    pub fn paper_default() -> Self {
        ClusteringParams::new(200.0, 5)
    }
}

impl Default for ClusteringParams {
    fn default() -> Self {
        ClusteringParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let p = ClusteringParams::paper_default();
        assert_eq!(p.eps, 200.0);
        assert_eq!(p.min_pts, 5);
        assert_eq!(ClusteringParams::default(), p);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_zero_eps() {
        let _ = ClusteringParams::new(0.0, 5);
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn rejects_zero_min_pts() {
        let _ = ClusteringParams::new(100.0, 0);
    }
}
