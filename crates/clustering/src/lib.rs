//! Density-based snapshot clustering.
//!
//! The first phase of the gathering-discovery pipeline (§III of the paper)
//! runs density-based clustering on the positions of all objects at every
//! time point of the database, producing the *snapshot cluster database*
//! `CDB = {C_{t1}, ..., C_{tn}}`.
//!
//! * [`dbscan()`] — a DBSCAN implementation with a grid-accelerated
//!   ε-neighbourhood search (Ester et al., KDD 1996 — reference \[14\] of the
//!   paper).
//! * [`snapshot`] — [`SnapshotCluster`], the per-timestamp cluster sets and
//!   the [`ClusterDatabase`] consumed by crowd discovery.
//! * [`prefilter`] — an optional CuTS-style pre-partitioning step that uses
//!   simplified trajectories to split the object population into independent
//!   groups before clustering each time window.
//! * [`stream`] — [`StreamingClusterer`], which clusters newly appended
//!   snapshots on demand for the streaming discovery engine.

pub mod dbscan;
pub mod params;
pub mod prefilter;
pub mod snapshot;
pub mod stream;

pub use dbscan::{
    dbscan, dbscan_columns, dbscan_columns_with, dbscan_with, DbscanResult, DbscanScratch,
};
pub use params::ClusteringParams;
pub use prefilter::segment_prefilter;
pub use snapshot::{
    ClusterDatabase, ClusterId, SnapshotCluster, SnapshotClusterSet, SnapshotClusterSetBuilder,
};
pub use stream::StreamingClusterer;
