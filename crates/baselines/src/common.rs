//! Shared result type of the baseline miners.

use gpdt_trajectory::{ObjectId, TimeInterval, Timestamp};

/// A generic group pattern: a set of objects together with the timestamps at
/// which they are grouped.
///
/// For convoys, flocks and moving clusters the timestamps are consecutive and
/// `interval()` describes them exactly; for swarms the timestamps may be
/// non-consecutive and are listed explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPattern {
    /// Member objects, sorted.
    pub objects: Vec<ObjectId>,
    /// Timestamps at which the group is together, sorted.
    pub times: Vec<Timestamp>,
}

impl GroupPattern {
    /// Creates a pattern, normalising (sorting and deduplicating) both lists.
    pub fn new(mut objects: Vec<ObjectId>, mut times: Vec<Timestamp>) -> Self {
        objects.sort_unstable();
        objects.dedup();
        times.sort_unstable();
        times.dedup();
        GroupPattern { objects, times }
    }

    /// Number of member objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of grouped timestamps.
    pub fn duration(&self) -> usize {
        self.times.len()
    }

    /// The convex hull of the grouped timestamps, if any.
    pub fn interval(&self) -> Option<TimeInterval> {
        match (self.times.first(), self.times.last()) {
            (Some(&a), Some(&b)) => Some(TimeInterval::new(a, b)),
            _ => None,
        }
    }

    /// Returns `true` if the grouped timestamps are consecutive.
    pub fn is_consecutive(&self) -> bool {
        self.times.windows(2).all(|w| w[1] == w[0] + 1)
    }

    /// Returns `true` if `other` covers this pattern (superset of objects and
    /// of timestamps) — used for closedness filtering.
    pub fn is_subsumed_by(&self, other: &GroupPattern) -> bool {
        if self.objects.len() > other.objects.len() || self.times.len() > other.times.len() {
            return false;
        }
        self.objects
            .iter()
            .all(|o| other.objects.binary_search(o).is_ok())
            && self
                .times
                .iter()
                .all(|t| other.times.binary_search(t).is_ok())
    }
}

/// Removes patterns that are subsumed by another pattern in the list.
pub fn retain_maximal(mut patterns: Vec<GroupPattern>) -> Vec<GroupPattern> {
    patterns.sort_by_key(|p| std::cmp::Reverse(p.object_count() * p.duration()));
    let mut kept: Vec<GroupPattern> = Vec::new();
    for p in patterns {
        if !kept.iter().any(|k| p.is_subsumed_by(k) && *k != p) && !kept.contains(&p) {
            kept.push(p);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(objects: &[u32], times: &[u32]) -> GroupPattern {
        GroupPattern::new(
            objects.iter().map(|&i| ObjectId::new(i)).collect(),
            times.to_vec(),
        )
    }

    #[test]
    fn normalisation_sorts_and_dedups() {
        let p = pattern(&[3, 1, 3, 2], &[5, 5, 4]);
        assert_eq!(
            p.objects,
            vec![ObjectId::new(1), ObjectId::new(2), ObjectId::new(3)]
        );
        assert_eq!(p.times, vec![4, 5]);
        assert_eq!(p.object_count(), 3);
        assert_eq!(p.duration(), 2);
        assert_eq!(p.interval(), Some(TimeInterval::new(4, 5)));
    }

    #[test]
    fn consecutive_detection() {
        assert!(pattern(&[1], &[3, 4, 5]).is_consecutive());
        assert!(!pattern(&[1], &[3, 5]).is_consecutive());
        assert!(pattern(&[1], &[7]).is_consecutive());
    }

    #[test]
    fn subsumption() {
        let small = pattern(&[1, 2], &[3, 4]);
        let big = pattern(&[1, 2, 3], &[2, 3, 4, 5]);
        let other = pattern(&[4, 5], &[3, 4]);
        assert!(small.is_subsumed_by(&big));
        assert!(!big.is_subsumed_by(&small));
        assert!(!small.is_subsumed_by(&other));
        assert!(small.is_subsumed_by(&small));
    }

    #[test]
    fn retain_maximal_drops_subsumed_patterns() {
        let patterns = vec![
            pattern(&[1, 2], &[3, 4]),
            pattern(&[1, 2, 3], &[2, 3, 4, 5]),
            pattern(&[7, 8], &[0, 1]),
            pattern(&[1, 2, 3], &[2, 3, 4, 5]), // duplicate
        ];
        let maximal = retain_maximal(patterns);
        assert_eq!(maximal.len(), 2);
        assert!(maximal.contains(&pattern(&[1, 2, 3], &[2, 3, 4, 5])));
        assert!(maximal.contains(&pattern(&[7, 8], &[0, 1])));
    }

    #[test]
    fn empty_pattern_interval_is_none() {
        let p = GroupPattern::new(vec![], vec![]);
        assert_eq!(p.interval(), None);
        assert_eq!(p.duration(), 0);
    }
}
