//! Closed-swarm discovery (Li et al., VLDB 2010).
//!
//! A swarm is a set of at least `mino` objects that appear in the same
//! snapshot cluster at no fewer than `mint` (possibly non-consecutive)
//! timestamps; it is *closed* when neither another object nor another
//! timestamp can be added without violating the definition.
//!
//! The miner follows the ObjectGrowth idea: a depth-first search over object
//! sets in id order, maintaining the timestamp set shared by the current
//! object set, with
//!
//! * **apriori pruning** — stop as soon as the shared timestamp set drops
//!   below `mint`,
//! * **backward pruning** — stop when some object with a smaller id than the
//!   last added one could be added without shrinking the timestamp set (that
//!   superset is explored elsewhere), and
//! * **forward closure** — report a set only when no object at all can be
//!   added for free (object-closedness); time-closedness holds by
//!   construction because the timestamp set is always maximal for the object
//!   set.

use std::collections::HashMap;

use gpdt_clustering::{ClusterDatabase, ClusteringParams};
use gpdt_trajectory::{ObjectId, Timestamp, TrajectoryDatabase};

use crate::common::GroupPattern;

/// Parameters of closed-swarm discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmParams {
    /// Minimum number of objects (`mino`).
    pub min_objects: usize,
    /// Minimum number of (possibly non-consecutive) timestamps (`mint`).
    pub min_duration: usize,
    /// DBSCAN parameters for the per-timestamp clustering.
    pub clustering: ClusteringParams,
}

impl SwarmParams {
    /// Creates swarm parameters.
    pub fn new(min_objects: usize, min_duration: usize, clustering: ClusteringParams) -> Self {
        assert!(min_objects >= 2, "min_objects must be at least 2");
        assert!(min_duration >= 1, "min_duration must be at least 1");
        SwarmParams {
            min_objects,
            min_duration,
            clustering,
        }
    }
}

/// Discovers all closed swarms in a trajectory database.
pub fn discover_closed_swarms(db: &TrajectoryDatabase, params: &SwarmParams) -> Vec<GroupPattern> {
    let cdb = ClusterDatabase::build(db, &params.clustering);
    discover_closed_swarms_from_clusters(&cdb, params)
}

/// Dense per-object cluster membership over the covered timeline.
///
/// `timelines[obj][tick]` holds `cluster_index + 1` at that tick, or `0` when
/// the object is in no cluster.  Dense arrays make the hot pruning predicates
/// of ObjectGrowth (same-cluster tests per timestamp) branch-predictable
/// array reads instead of nested hash lookups — the difference between the
/// full-day effectiveness run completing in seconds and not completing at
/// all.
struct SwarmIndex {
    objects: Vec<ObjectId>,
    timelines: Vec<Vec<u32>>,
    start_time: Timestamp,
}

impl SwarmIndex {
    fn build(cdb: &ClusterDatabase, min_duration: usize) -> Option<Self> {
        let domain = cdb.time_domain()?;
        let n_ticks = (domain.end - domain.start + 1) as usize;
        let mut by_object: HashMap<ObjectId, Vec<u32>> = HashMap::new();
        for set in cdb.iter() {
            let tick = (set.time - domain.start) as usize;
            for (idx, cluster) in set.clusters.iter().enumerate() {
                for &obj in cluster.members() {
                    by_object.entry(obj).or_insert_with(|| vec![0; n_ticks])[tick] = idx as u32 + 1;
                }
            }
        }
        // Candidate objects: those appearing in clusters at >= mint
        // timestamps (an object below that can never be part of a swarm).
        let mut objects: Vec<ObjectId> = by_object
            .iter()
            .filter(|(_, tl)| tl.iter().filter(|&&c| c != 0).count() >= min_duration)
            .map(|(&obj, _)| obj)
            .collect();
        objects.sort_unstable();
        let timelines = objects
            .iter()
            .map(|obj| by_object.remove(obj).expect("filtered from this map"))
            .collect();
        Some(SwarmIndex {
            objects,
            timelines,
            start_time: domain.start,
        })
    }

    /// `true` if objects `a` and `b` are in the same snapshot cluster at
    /// `tick`.
    #[inline]
    fn same_cluster(&self, a: usize, b: usize, tick: usize) -> bool {
        let ca = self.timelines[a][tick];
        ca != 0 && ca == self.timelines[b][tick]
    }

    /// Ticks at which object `idx` is in any cluster.
    fn occupied_ticks(&self, idx: usize) -> Vec<usize> {
        self.timelines[idx]
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(t, _)| t)
            .collect()
    }
}

/// Discovers all closed swarms from a pre-built snapshot-cluster database.
pub fn discover_closed_swarms_from_clusters(
    cdb: &ClusterDatabase,
    params: &SwarmParams,
) -> Vec<GroupPattern> {
    let Some(index) = SwarmIndex::build(cdb, params.min_duration) else {
        return Vec::new();
    };
    let mut results = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut in_stack = vec![false; index.objects.len()];
    grow(
        &index,
        params,
        0,
        &mut stack,
        &mut in_stack,
        None,
        &mut results,
    );
    results
}

#[allow(clippy::too_many_arguments)]
fn grow(
    index: &SwarmIndex,
    params: &SwarmParams,
    start: usize,
    current: &mut Vec<usize>,
    in_current: &mut Vec<bool>,
    shared: Option<Vec<usize>>,
    results: &mut Vec<GroupPattern>,
) {
    let n = index.objects.len();
    // Check object-closedness / emit when the current set qualifies.
    if current.len() >= params.min_objects {
        let times = shared
            .as_ref()
            .expect("non-empty set has a shared time set");
        if times.len() >= params.min_duration {
            // Object-closed: no object outside the set can be added without
            // shrinking the timestamp set.
            let anchor = current[0];
            let closed = !(0..n).any(|other| {
                !in_current[other] && times.iter().all(|&t| index.same_cluster(anchor, other, t))
            });
            if closed {
                results.push(GroupPattern::new(
                    current.iter().map(|&i| index.objects[i]).collect(),
                    times
                        .iter()
                        .map(|&t| index.start_time + t as Timestamp)
                        .collect(),
                ));
            }
        }
    }

    for candidate in start..n {
        let anchor = current.first().copied();
        // Apriori pruning: the shared timestamp set only shrinks as objects
        // are added.
        let new_shared: Vec<usize> = match (shared.as_ref(), anchor) {
            (Some(times), Some(anchor)) => times
                .iter()
                .copied()
                .filter(|&t| index.same_cluster(anchor, candidate, t))
                .collect(),
            _ => index.occupied_ticks(candidate),
        };
        if new_shared.len() < params.min_duration {
            continue;
        }
        // Backward pruning: if an object with a smaller id (not in the set,
        // not the candidate) could be added without shrinking the shared
        // set, this branch is covered by the branch that includes it.
        let new_anchor = anchor.unwrap_or(candidate);
        let covered = (0..candidate).any(|earlier| {
            !in_current[earlier]
                && new_shared
                    .iter()
                    .all(|&t| index.same_cluster(new_anchor, earlier, t))
        });
        if covered {
            continue;
        }
        current.push(candidate);
        in_current[candidate] = true;
        grow(
            index,
            params,
            candidate + 1,
            current,
            in_current,
            Some(new_shared),
            results,
        );
        in_current[candidate] = false;
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn params(mino: usize, mint: usize) -> SwarmParams {
        SwarmParams::new(mino, mint, ClusteringParams::new(50.0, 2))
    }

    /// Builds a database where the listed objects are co-located (cluster
    /// together) exactly at the listed timestamps, and far apart otherwise.
    fn scripted_db(groupings: &[(&[u32], &[u32])], ticks: u32) -> TrajectoryDatabase {
        // Every object roams alone at a distinct far-away location except at
        // the timestamps where a grouping places it at that grouping's spot.
        let mut positions: HashMap<(u32, u32), (f64, f64)> = HashMap::new();
        let mut all_objects: Vec<u32> = Vec::new();
        for (gi, (objs, times)) in groupings.iter().enumerate() {
            let spot = (1_000.0 * (gi + 1) as f64, 1_000.0 * (gi + 1) as f64);
            for &o in *objs {
                if !all_objects.contains(&o) {
                    all_objects.push(o);
                }
                for &t in *times {
                    positions.insert((o, t), spot);
                }
            }
        }
        let trajs: Vec<Trajectory> = all_objects
            .iter()
            .map(|&o| {
                let samples: Vec<(u32, (f64, f64))> = (0..ticks)
                    .map(|t| {
                        let home = (100_000.0 + o as f64 * 10_000.0, 0.0);
                        (t, *positions.get(&(o, t)).unwrap_or(&home))
                    })
                    .collect();
                Trajectory::from_points(ObjectId::new(o), samples)
            })
            .collect();
        TrajectoryDatabase::from_trajectories(trajs)
    }

    #[test]
    fn persistent_group_is_one_closed_swarm() {
        let db = scripted_db(&[(&[1, 2, 3], &[0, 2, 4, 6, 8])], 10);
        let swarms = discover_closed_swarms(&db, &params(3, 4));
        assert_eq!(swarms.len(), 1);
        assert_eq!(swarms[0].object_count(), 3);
        assert_eq!(swarms[0].times, vec![0, 2, 4, 6, 8]);
        assert!(!swarms[0].is_consecutive());
    }

    #[test]
    fn swarm_allows_non_consecutive_membership() {
        // The paper's Figure 1b intuition: o1..o5 gather at t1 and t3 only.
        let db = scripted_db(&[(&[1, 2, 3, 4, 5], &[1, 3])], 5);
        let swarms = discover_closed_swarms(&db, &params(5, 2));
        assert_eq!(swarms.len(), 1);
        assert_eq!(swarms[0].object_count(), 5);
        assert_eq!(swarms[0].times, vec![1, 3]);
        // A convoy-style consecutive requirement would find nothing here.
        assert!(discover_closed_swarms(&db, &params(5, 3)).is_empty());
    }

    #[test]
    fn closedness_prefers_larger_object_set() {
        // Objects 1-4 meet at {0,1,2,3}; objects 1-5 meet at {0,1}.  With
        // mino=4, mint=2 the closed swarms are {1..4}×{0,1,2,3} and
        // {1..5}×{0,1}; the subset {1..4}×{0,1} is not closed.
        let db = scripted_db(
            &[(&[1, 2, 3, 4], &[0, 1, 2, 3]), (&[1, 2, 3, 4, 5], &[0, 1])],
            5,
        );
        let mut swarms = discover_closed_swarms(&db, &params(4, 2));
        swarms.sort_by_key(|s| s.object_count());
        assert_eq!(swarms.len(), 2);
        assert_eq!(swarms[0].object_count(), 4);
        assert_eq!(swarms[0].times.len(), 4);
        assert_eq!(swarms[1].object_count(), 5);
        assert_eq!(swarms[1].times, vec![0, 1]);
    }

    #[test]
    fn too_few_objects_or_timestamps_yield_nothing() {
        let db = scripted_db(&[(&[1, 2], &[0, 1, 2])], 4);
        assert!(discover_closed_swarms(&db, &params(3, 2)).is_empty());
        let db = scripted_db(&[(&[1, 2, 3], &[0])], 4);
        assert!(discover_closed_swarms(&db, &params(3, 2)).is_empty());
    }

    #[test]
    fn two_disjoint_groups_give_two_swarms() {
        let db = scripted_db(
            &[(&[1, 2, 3], &[0, 1, 2, 3]), (&[10, 11, 12], &[2, 3, 4, 5])],
            6,
        );
        let swarms = discover_closed_swarms(&db, &params(3, 3));
        assert_eq!(swarms.len(), 2);
    }

    #[test]
    fn empty_database_has_no_swarms() {
        let db = TrajectoryDatabase::new();
        assert!(discover_closed_swarms(&db, &params(2, 2)).is_empty());
    }
}
