//! Closed-swarm discovery (Li et al., VLDB 2010).
//!
//! A swarm is a set of at least `mino` objects that appear in the same
//! snapshot cluster at no fewer than `mint` (possibly non-consecutive)
//! timestamps; it is *closed* when neither another object nor another
//! timestamp can be added without violating the definition.
//!
//! The miner follows the ObjectGrowth idea: a depth-first search over object
//! sets in id order, maintaining the timestamp set shared by the current
//! object set, with
//!
//! * **apriori pruning** — stop as soon as the shared timestamp set drops
//!   below `mint`,
//! * **backward pruning** — stop when some object with a smaller id than the
//!   last added one could be added without shrinking the timestamp set (that
//!   superset is explored elsewhere), and
//! * **forward closure** — report a set only when no object at all can be
//!   added for free (object-closedness); time-closedness holds by
//!   construction because the timestamp set is always maximal for the object
//!   set.
//!
//! All three predicates reduce to *timestamp-set* algebra against the first
//! (anchor) object of the current set, and the anchor is fixed for the whole
//! DFS subtree rooted at it.  The miner therefore materialises, once per
//! root, one [`BitVector`] row per object — bit `t` set iff the object shares
//! a snapshot cluster with the root at tick `t` — and runs the search
//! entirely on word-parallel bit operations: the shared timestamp set is an
//! AND ([`BitVector::and_into`]), apriori pruning a popcount, and backward
//! pruning / closedness subset tests ([`BitVector::is_subset_of`]) with
//! per-word early exit.  The rows and the per-depth shared sets live in a
//! scratch arena reused across the whole mine, so the DFS allocates only
//! when it emits a result.

use std::collections::HashMap;

use gpdt_clustering::{ClusterDatabase, ClusteringParams};
use gpdt_geo::BitVector;
use gpdt_trajectory::{ObjectId, Timestamp, TrajectoryDatabase};

use crate::common::GroupPattern;

/// Parameters of closed-swarm discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmParams {
    /// Minimum number of objects (`mino`).
    pub min_objects: usize,
    /// Minimum number of (possibly non-consecutive) timestamps (`mint`).
    pub min_duration: usize,
    /// DBSCAN parameters for the per-timestamp clustering.
    pub clustering: ClusteringParams,
}

impl SwarmParams {
    /// Creates swarm parameters.
    pub fn new(min_objects: usize, min_duration: usize, clustering: ClusteringParams) -> Self {
        assert!(min_objects >= 2, "min_objects must be at least 2");
        assert!(min_duration >= 1, "min_duration must be at least 1");
        SwarmParams {
            min_objects,
            min_duration,
            clustering,
        }
    }
}

/// Discovers all closed swarms in a trajectory database.
pub fn discover_closed_swarms(db: &TrajectoryDatabase, params: &SwarmParams) -> Vec<GroupPattern> {
    let cdb = ClusterDatabase::build(db, &params.clustering);
    discover_closed_swarms_from_clusters(&cdb, params)
}

/// Dense per-object cluster membership over the covered timeline.
///
/// `timelines[obj][tick]` holds `cluster_index + 1` at that tick, or `0` when
/// the object is in no cluster.  Dense arrays make the hot pruning predicates
/// of ObjectGrowth (same-cluster tests per timestamp) branch-predictable
/// array reads instead of nested hash lookups — the difference between the
/// full-day effectiveness run completing in seconds and not completing at
/// all.
struct SwarmIndex {
    objects: Vec<ObjectId>,
    timelines: Vec<Vec<u32>>,
    start_time: Timestamp,
    n_ticks: usize,
}

impl SwarmIndex {
    fn build(cdb: &ClusterDatabase, min_duration: usize) -> Option<Self> {
        let domain = cdb.time_domain()?;
        let n_ticks = (domain.end - domain.start + 1) as usize;
        let mut by_object: HashMap<ObjectId, Vec<u32>> = HashMap::new();
        for set in cdb.iter() {
            let tick = (set.time - domain.start) as usize;
            for (idx, cluster) in set.clusters.iter().enumerate() {
                for &obj in cluster.members() {
                    by_object.entry(obj).or_insert_with(|| vec![0; n_ticks])[tick] = idx as u32 + 1;
                }
            }
        }
        // Candidate objects: those appearing in clusters at >= mint
        // timestamps (an object below that can never be part of a swarm).
        let mut objects: Vec<ObjectId> = by_object
            .iter()
            .filter(|(_, tl)| tl.iter().filter(|&&c| c != 0).count() >= min_duration)
            .map(|(&obj, _)| obj)
            .collect();
        objects.sort_unstable();
        let timelines = objects
            .iter()
            .map(|obj| by_object.remove(obj).expect("filtered from this map"))
            .collect();
        Some(SwarmIndex {
            objects,
            timelines,
            start_time: domain.start,
            n_ticks,
        })
    }
}

/// Discovers all closed swarms from a pre-built snapshot-cluster database.
pub fn discover_closed_swarms_from_clusters(
    cdb: &ClusterDatabase,
    params: &SwarmParams,
) -> Vec<GroupPattern> {
    let Some(index) = SwarmIndex::build(cdb, params.min_duration) else {
        return Vec::new();
    };
    let n = index.objects.len();
    let mut miner = Miner {
        index: &index,
        params,
        rows: (0..n).map(|_| BitVector::zeros(index.n_ticks)).collect(),
        // Depth d of the DFS intersects into slot d; depth <= n.
        shared: (0..=n).map(|_| BitVector::zeros(index.n_ticks)).collect(),
        root_occupied: Vec::new(),
        active: Vec::new(),
        current: Vec::new(),
        in_current: vec![false; n],
        results: Vec::new(),
    };
    miner.mine();
    miner.results
}

/// DFS state of one closed-swarm mine: the per-root bitset rows, the
/// per-depth shared timestamp sets and the current object set, all reused
/// across the entire search.
struct Miner<'a> {
    index: &'a SwarmIndex,
    params: &'a SwarmParams,
    /// `rows[b]` bit `t`: object `b` shares a cluster with the current root
    /// at tick `t` (rebuilt once per root; `rows[root]` is the root's
    /// occupancy).
    rows: Vec<BitVector>,
    /// `shared[d]`: timestamp set shared by the current object set at DFS
    /// depth `d`.
    shared: Vec<BitVector>,
    /// `(tick, cluster)` pairs at which the current root is clustered.
    root_occupied: Vec<(usize, u32)>,
    /// Objects whose row has at least `mint` set bits, ascending.  Any other
    /// object can neither extend the current set past the apriori bound, nor
    /// cover a branch (backward pruning), nor block object-closedness — all
    /// three predicates require at least `mint` shared ticks with the root —
    /// so the whole DFS iterates over this list instead of every object.
    active: Vec<usize>,
    current: Vec<usize>,
    in_current: Vec<bool>,
    results: Vec<GroupPattern>,
}

impl Miner<'_> {
    fn mine(&mut self) {
        let n = self.index.objects.len();
        for root in 0..n {
            self.build_rows(root);
            // Apriori pruning (SwarmIndex::build already filtered objects
            // clustered at fewer than mint ticks, so this never fires; kept
            // to mirror the recursive case).
            if (self.rows[root].count_ones() as usize) < self.params.min_duration {
                continue;
            }
            self.active.clear();
            let mint = self.params.min_duration;
            self.active
                .extend((0..n).filter(|&b| self.rows[b].count_ones() as usize >= mint));
            let root_pos = self
                .active
                .iter()
                .position(|&b| b == root)
                .expect("root is active");
            // Backward pruning: a smaller-id object joinable at every
            // occupied tick of the root means this subtree is covered by the
            // one rooted at that object.
            if self.active[..root_pos]
                .iter()
                .any(|&earlier| self.rows[root].is_subset_of(&self.rows[earlier]))
            {
                continue;
            }
            self.shared[0].copy_from(&self.rows[root]);
            self.current.push(root);
            self.in_current[root] = true;
            self.grow(root_pos + 1, 0);
            self.in_current[root] = false;
            self.current.pop();
        }
    }

    /// Rebuilds the bitset rows for a new DFS root.
    ///
    /// Rows are *compressed* to the root's occupied ticks: bit `j` of
    /// `rows[b]` says object `b` shares the root's cluster at the `j`-th tick
    /// the root is clustered at.  Every shared timestamp set of the subtree
    /// is a subset of the root's occupancy, so nothing is lost — and every
    /// AND / subset test / popcount shrinks from `n_ticks` bits to however
    /// many ticks the root actually spends in clusters.
    fn build_rows(&mut self, root: usize) {
        self.root_occupied.clear();
        self.root_occupied.extend(
            self.index.timelines[root]
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(t, &c)| (t, c)),
        );
        let compressed_len = self.root_occupied.len();
        for (b, row) in self.rows.iter_mut().enumerate() {
            row.reset(compressed_len);
            let timeline = &self.index.timelines[b];
            for (j, &(t, c)) in self.root_occupied.iter().enumerate() {
                if timeline[t] == c {
                    row.set(j, true);
                }
            }
        }
    }

    /// One DFS node: the current set's shared timestamp set sits at
    /// `shared[depth]`; candidates at positions >= `start` of the active
    /// list are tried in id order.
    fn grow(&mut self, start: usize, depth: usize) {
        // Check object-closedness / emit when the current set qualifies.
        if self.current.len() >= self.params.min_objects {
            let times = &self.shared[depth];
            if times.count_ones() as usize >= self.params.min_duration {
                // Object-closed: no object outside the set can be added
                // without shrinking the timestamp set.
                let closed = !self
                    .active
                    .iter()
                    .any(|&other| !self.in_current[other] && times.is_subset_of(&self.rows[other]));
                if closed {
                    self.results.push(GroupPattern::new(
                        self.current
                            .iter()
                            .map(|&i| self.index.objects[i])
                            .collect(),
                        times
                            .iter_ones()
                            .map(|j| self.index.start_time + self.root_occupied[j].0 as Timestamp)
                            .collect(),
                    ));
                }
            }
        }

        for cpos in start..self.active.len() {
            let candidate = self.active[cpos];
            // Apriori pruning: the shared timestamp set only shrinks as
            // objects are added; skip the intersection entirely when its
            // popcount cannot reach mint.
            let lower = &self.shared[depth];
            if (lower.count_ones_masked(&self.rows[candidate]) as usize) < self.params.min_duration
            {
                continue;
            }
            let (lower, upper) = self.shared.split_at_mut(depth + 1);
            let new_shared = &mut upper[0];
            lower[depth].and_into(&self.rows[candidate], new_shared);
            // Backward pruning: if an object with a smaller id (not in the
            // set, not the candidate) could be added without shrinking the
            // shared set, this branch is covered by the branch including it.
            let covered = self.active[..cpos].iter().any(|&earlier| {
                !self.in_current[earlier] && new_shared.is_subset_of(&self.rows[earlier])
            });
            if covered {
                continue;
            }
            self.current.push(candidate);
            self.in_current[candidate] = true;
            self.grow(cpos + 1, depth + 1);
            self.in_current[candidate] = false;
            self.current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn params(mino: usize, mint: usize) -> SwarmParams {
        SwarmParams::new(mino, mint, ClusteringParams::new(50.0, 2))
    }

    /// Builds a database where the listed objects are co-located (cluster
    /// together) exactly at the listed timestamps, and far apart otherwise.
    fn scripted_db(groupings: &[(&[u32], &[u32])], ticks: u32) -> TrajectoryDatabase {
        // Every object roams alone at a distinct far-away location except at
        // the timestamps where a grouping places it at that grouping's spot.
        let mut positions: HashMap<(u32, u32), (f64, f64)> = HashMap::new();
        let mut all_objects: Vec<u32> = Vec::new();
        for (gi, (objs, times)) in groupings.iter().enumerate() {
            let spot = (1_000.0 * (gi + 1) as f64, 1_000.0 * (gi + 1) as f64);
            for &o in *objs {
                if !all_objects.contains(&o) {
                    all_objects.push(o);
                }
                for &t in *times {
                    positions.insert((o, t), spot);
                }
            }
        }
        let trajs: Vec<Trajectory> = all_objects
            .iter()
            .map(|&o| {
                let samples: Vec<(u32, (f64, f64))> = (0..ticks)
                    .map(|t| {
                        let home = (100_000.0 + o as f64 * 10_000.0, 0.0);
                        (t, *positions.get(&(o, t)).unwrap_or(&home))
                    })
                    .collect();
                Trajectory::from_points(ObjectId::new(o), samples)
            })
            .collect();
        TrajectoryDatabase::from_trajectories(trajs)
    }

    #[test]
    fn persistent_group_is_one_closed_swarm() {
        let db = scripted_db(&[(&[1, 2, 3], &[0, 2, 4, 6, 8])], 10);
        let swarms = discover_closed_swarms(&db, &params(3, 4));
        assert_eq!(swarms.len(), 1);
        assert_eq!(swarms[0].object_count(), 3);
        assert_eq!(swarms[0].times, vec![0, 2, 4, 6, 8]);
        assert!(!swarms[0].is_consecutive());
    }

    #[test]
    fn swarm_allows_non_consecutive_membership() {
        // The paper's Figure 1b intuition: o1..o5 gather at t1 and t3 only.
        let db = scripted_db(&[(&[1, 2, 3, 4, 5], &[1, 3])], 5);
        let swarms = discover_closed_swarms(&db, &params(5, 2));
        assert_eq!(swarms.len(), 1);
        assert_eq!(swarms[0].object_count(), 5);
        assert_eq!(swarms[0].times, vec![1, 3]);
        // A convoy-style consecutive requirement would find nothing here.
        assert!(discover_closed_swarms(&db, &params(5, 3)).is_empty());
    }

    #[test]
    fn closedness_prefers_larger_object_set() {
        // Objects 1-4 meet at {0,1,2,3}; objects 1-5 meet at {0,1}.  With
        // mino=4, mint=2 the closed swarms are {1..4}×{0,1,2,3} and
        // {1..5}×{0,1}; the subset {1..4}×{0,1} is not closed.
        let db = scripted_db(
            &[(&[1, 2, 3, 4], &[0, 1, 2, 3]), (&[1, 2, 3, 4, 5], &[0, 1])],
            5,
        );
        let mut swarms = discover_closed_swarms(&db, &params(4, 2));
        swarms.sort_by_key(|s| s.object_count());
        assert_eq!(swarms.len(), 2);
        assert_eq!(swarms[0].object_count(), 4);
        assert_eq!(swarms[0].times.len(), 4);
        assert_eq!(swarms[1].object_count(), 5);
        assert_eq!(swarms[1].times, vec![0, 1]);
    }

    #[test]
    fn too_few_objects_or_timestamps_yield_nothing() {
        let db = scripted_db(&[(&[1, 2], &[0, 1, 2])], 4);
        assert!(discover_closed_swarms(&db, &params(3, 2)).is_empty());
        let db = scripted_db(&[(&[1, 2, 3], &[0])], 4);
        assert!(discover_closed_swarms(&db, &params(3, 2)).is_empty());
    }

    #[test]
    fn two_disjoint_groups_give_two_swarms() {
        let db = scripted_db(
            &[(&[1, 2, 3], &[0, 1, 2, 3]), (&[10, 11, 12], &[2, 3, 4, 5])],
            6,
        );
        let swarms = discover_closed_swarms(&db, &params(3, 3));
        assert_eq!(swarms.len(), 2);
    }

    #[test]
    fn empty_database_has_no_swarms() {
        let db = TrajectoryDatabase::new();
        assert!(discover_closed_swarms(&db, &params(2, 2)).is_empty());
    }
}

#[cfg(test)]
// Deterministic seeded-random property checks (the container builds offline,
// so these use the vendored `rand` shim instead of `proptest`).
mod proptests {
    use super::*;
    use gpdt_clustering::{SnapshotCluster, SnapshotClusterSet};
    use gpdt_geo::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn params(mino: usize, mint: usize) -> SwarmParams {
        SwarmParams::new(mino, mint, ClusteringParams::new(50.0, 2))
    }

    /// Random cluster membership over a few objects and ticks: each tick
    /// assigns every object to one of `n_clusters` clusters or to noise.
    fn random_cdb(rng: &mut StdRng, n_objects: u32, n_ticks: u32) -> ClusterDatabase {
        let sets: Vec<SnapshotClusterSet> = (0..n_ticks)
            .map(|t| {
                let n_clusters = rng.gen_range(1usize..4);
                let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_clusters];
                for o in 0..n_objects {
                    let slot = rng.gen_range(0..n_clusters + 1);
                    if slot < n_clusters {
                        members[slot].push(o);
                    }
                }
                SnapshotClusterSet {
                    time: t,
                    clusters: members
                        .into_iter()
                        .filter(|m| !m.is_empty())
                        .map(|m| {
                            SnapshotCluster::new(
                                t,
                                m.iter().map(|&o| ObjectId::new(o)).collect(),
                                m.iter().map(|&o| Point::new(o as f64, 0.0)).collect(),
                            )
                        })
                        .collect(),
                }
            })
            .collect();
        ClusterDatabase::from_sets(sets)
    }

    /// Brute-force oracle: enumerate every object subset, compute its
    /// maximal shared timestamp set and keep the object-closed qualifying
    /// ones (time-closedness is automatic — the time set is maximal).
    fn oracle(cdb: &ClusterDatabase, params: &SwarmParams) -> BTreeSet<(Vec<u32>, Vec<u32>)> {
        let mut label: HashMap<(u32, u32), u32> = HashMap::new();
        let mut objects: BTreeSet<u32> = BTreeSet::new();
        for set in cdb.iter() {
            for (idx, cluster) in set.clusters.iter().enumerate() {
                for m in cluster.members() {
                    label.insert((m.raw(), set.time), idx as u32 + 1);
                    objects.insert(m.raw());
                }
            }
        }
        let objects: Vec<u32> = objects.into_iter().collect();
        let ticks: Vec<u32> = cdb.time_domain().map_or(Vec::new(), |d| d.iter().collect());
        let shared_times = |subset: &[u32]| -> Vec<u32> {
            ticks
                .iter()
                .copied()
                .filter(|&t| {
                    let first = label.get(&(subset[0], t));
                    first.is_some() && subset[1..].iter().all(|&o| label.get(&(o, t)) == first)
                })
                .collect()
        };
        let mut out = BTreeSet::new();
        for mask in 1u32..(1 << objects.len()) {
            let subset: Vec<u32> = objects
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &o)| o)
                .collect();
            if subset.len() < params.min_objects {
                continue;
            }
            let times = shared_times(&subset);
            if times.len() < params.min_duration {
                continue;
            }
            let object_closed = !objects.iter().any(|&other| {
                !subset.contains(&other) && {
                    let mut bigger = subset.clone();
                    bigger.push(other);
                    shared_times(&bigger) == times
                }
            });
            if object_closed {
                out.insert((subset, times));
            }
        }
        out
    }

    /// The bitset ObjectGrowth miner finds exactly the closed swarms of the
    /// brute-force definition.
    #[test]
    fn miner_matches_bruteforce_oracle() {
        let mut rng = StdRng::seed_from_u64(0x5a4);
        for round in 0..120 {
            let (n_objects, n_ticks) = (rng.gen_range(2u32..8), rng.gen_range(1u32..7));
            let cdb = random_cdb(&mut rng, n_objects, n_ticks);
            let (mino, mint) = (rng.gen_range(2usize..4), rng.gen_range(1usize..4));
            let p = params(mino, mint);
            let mined: BTreeSet<(Vec<u32>, Vec<u32>)> =
                discover_closed_swarms_from_clusters(&cdb, &p)
                    .into_iter()
                    .map(|g| (g.objects.iter().map(|o| o.raw()).collect(), g.times.clone()))
                    .collect();
            assert_eq!(mined, oracle(&cdb, &p), "round {round}");
        }
    }
}
