//! Convoy discovery (Jeung et al., VLDB 2008).
//!
//! A convoy is a group of at least `m` objects that are density-connected to
//! each other during at least `k` *consecutive* timestamps.  The discovery
//! follows the CMC (coherent moving cluster) sweep: snapshot clusters are
//! intersected with the convoy candidates of the previous timestamp; an
//! intersection that keeps at least `m` objects extends the candidate, and a
//! candidate that cannot be extended is reported if it lasted long enough.

use std::collections::BTreeSet;

use gpdt_clustering::{ClusterDatabase, ClusteringParams};
use gpdt_trajectory::{ObjectId, Timestamp, TrajectoryDatabase};

use crate::common::{retain_maximal, GroupPattern};

/// Parameters of convoy discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvoyParams {
    /// Minimum number of objects (`m`).
    pub min_objects: usize,
    /// Minimum number of consecutive timestamps (`k`).
    pub min_duration: u32,
    /// DBSCAN parameters used for the per-timestamp clustering.
    pub clustering: ClusteringParams,
}

impl ConvoyParams {
    /// Creates convoy parameters.
    pub fn new(min_objects: usize, min_duration: u32, clustering: ClusteringParams) -> Self {
        assert!(min_objects >= 1, "min_objects must be at least 1");
        assert!(min_duration >= 1, "min_duration must be at least 1");
        ConvoyParams {
            min_objects,
            min_duration,
            clustering,
        }
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    objects: BTreeSet<ObjectId>,
    start: Timestamp,
    end: Timestamp,
}

/// Discovers convoys in a trajectory database.
pub fn discover_convoys(db: &TrajectoryDatabase, params: &ConvoyParams) -> Vec<GroupPattern> {
    let cdb = ClusterDatabase::build(db, &params.clustering);
    discover_convoys_from_clusters(&cdb, params)
}

/// Discovers convoys from a pre-built snapshot-cluster database.
pub fn discover_convoys_from_clusters(
    cdb: &ClusterDatabase,
    params: &ConvoyParams,
) -> Vec<GroupPattern> {
    let mut results: Vec<GroupPattern> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();

    for set in cdb.iter() {
        let t = set.time;
        let clusters: Vec<BTreeSet<ObjectId>> = set
            .clusters
            .iter()
            .map(|c| c.members().iter().copied().collect())
            .collect();

        let mut next: Vec<Candidate> = Vec::new();
        let mut absorbed = vec![false; clusters.len()];

        for candidate in candidates.drain(..) {
            let mut extended = false;
            let mut shrunk = false;
            for (idx, cluster) in clusters.iter().enumerate() {
                let intersection: BTreeSet<ObjectId> =
                    candidate.objects.intersection(cluster).copied().collect();
                if intersection.len() >= params.min_objects {
                    absorbed[idx] = true;
                    extended = true;
                    shrunk |= intersection.len() < candidate.objects.len();
                    next.push(Candidate {
                        objects: intersection,
                        start: candidate.start,
                        end: t,
                    });
                }
            }
            // A candidate that only carries forward with fewer objects is
            // maximal in the object dimension: emit it too, or the wider
            // membership is silently lost (`retain_maximal` dedups later).
            if !extended || shrunk {
                emit(&candidate, params, &mut results);
            }
        }
        for (idx, cluster) in clusters.iter().enumerate() {
            if !absorbed[idx] && cluster.len() >= params.min_objects {
                next.push(Candidate {
                    objects: cluster.clone(),
                    start: t,
                    end: t,
                });
            }
        }
        // Deduplicate identical candidates produced by overlapping
        // intersections (keeps the sweep from ballooning).
        next.sort_by(|a, b| (a.start, &a.objects).cmp(&(b.start, &b.objects)));
        next.dedup_by(|a, b| a.start == b.start && a.objects == b.objects);
        candidates = next;
    }
    for candidate in &candidates {
        emit(candidate, params, &mut results);
    }
    retain_maximal(results)
}

fn emit(candidate: &Candidate, params: &ConvoyParams, results: &mut Vec<GroupPattern>) {
    let duration = candidate.end - candidate.start + 1;
    if duration >= params.min_duration && candidate.objects.len() >= params.min_objects {
        results.push(GroupPattern::new(
            candidate.objects.iter().copied().collect(),
            (candidate.start..=candidate.end).collect(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn straight_trajectory(id: u32, x0: f64, y0: f64, dx: f64, dy: f64, ticks: u32) -> Trajectory {
        Trajectory::from_points(
            ObjectId::new(id),
            (0..ticks)
                .map(|t| (t, (x0 + dx * t as f64, y0 + dy * t as f64)))
                .collect::<Vec<_>>(),
        )
    }

    fn params(m: usize, k: u32) -> ConvoyParams {
        ConvoyParams::new(m, k, ClusteringParams::new(50.0, m))
    }

    #[test]
    fn platoon_is_one_convoy() {
        // Four vehicles travel together, one lone vehicle far away.
        let mut trajs = Vec::new();
        for i in 0..4u32 {
            trajs.push(straight_trajectory(i, i as f64 * 10.0, 0.0, 100.0, 0.0, 10));
        }
        trajs.push(straight_trajectory(99, 50_000.0, 50_000.0, -100.0, 0.0, 10));
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let convoys = discover_convoys(&db, &params(3, 5));
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].object_count(), 4);
        assert_eq!(convoys[0].duration(), 10);
        assert!(convoys[0].is_consecutive());
        assert!(!convoys[0].objects.contains(&ObjectId::new(99)));
    }

    #[test]
    fn convoy_requires_consecutive_timestamps() {
        // The group splits apart for one tick in the middle, so neither half
        // reaches the duration threshold.
        let mut trajs = Vec::new();
        for i in 0..4u32 {
            let samples: Vec<(u32, (f64, f64))> = (0..9u32)
                .map(|t| {
                    if t == 4 {
                        // Scatter by object so they are not density-connected.
                        (t, (i as f64 * 10_000.0, 50_000.0))
                    } else {
                        (t, (i as f64 * 10.0, t as f64 * 50.0))
                    }
                })
                .collect();
            trajs.push(Trajectory::from_points(ObjectId::new(i), samples));
        }
        let db = TrajectoryDatabase::from_trajectories(trajs);
        assert!(discover_convoys(&db, &params(3, 5)).is_empty());
        // With a lower duration threshold the two halves appear.
        let halves = discover_convoys(&db, &params(3, 4));
        assert_eq!(halves.len(), 2);
    }

    #[test]
    fn member_leaving_shrinks_but_does_not_break_convoy() {
        // Five vehicles together; one peels off halfway.  The convoy of the
        // remaining four spans the full window.
        let mut trajs = Vec::new();
        for i in 0..4u32 {
            trajs.push(straight_trajectory(i, i as f64 * 10.0, 0.0, 80.0, 0.0, 12));
        }
        let deserter: Vec<(u32, (f64, f64))> = (0..12u32)
            .map(|t| {
                if t < 6 {
                    (t, (45.0, t as f64 * 0.0 + 5.0 + 80.0 * t as f64 * 0.0))
                } else {
                    (t, (45.0 + (t - 5) as f64 * 5_000.0, 20_000.0))
                }
            })
            .collect();
        // Keep the deserter near the platoon for the first half: overwrite
        // with positions matching the platoon's x-progression.
        let deserter: Vec<(u32, (f64, f64))> = deserter
            .into_iter()
            .map(|(t, (x, y))| {
                if t < 6 {
                    (t, (80.0 * t as f64 + 45.0, 0.0))
                } else {
                    (t, (x, y))
                }
            })
            .collect();
        trajs.push(Trajectory::from_points(ObjectId::new(9), deserter));
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let convoys = discover_convoys(&db, &params(4, 10));
        assert_eq!(convoys.len(), 1);
        assert_eq!(convoys[0].object_count(), 4);
        assert_eq!(convoys[0].duration(), 12);
    }

    #[test]
    fn empty_database_has_no_convoys() {
        let db = TrajectoryDatabase::new();
        assert!(discover_convoys(&db, &params(2, 2)).is_empty());
    }

    #[test]
    fn results_are_maximal() {
        let mut trajs = Vec::new();
        for i in 0..5u32 {
            trajs.push(straight_trajectory(i, i as f64 * 8.0, 0.0, 60.0, 0.0, 8));
        }
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let convoys = discover_convoys(&db, &params(3, 3));
        for a in &convoys {
            for b in &convoys {
                if a != b {
                    assert!(!a.is_subsumed_by(b));
                }
            }
        }
    }
}
