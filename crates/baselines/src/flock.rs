//! Flock discovery (Benkert et al. / Vieira et al.).
//!
//! A flock is a group of at least `m` objects that stay together inside a
//! disc of radius `r` for at least `k` consecutive timestamps.  Exact flock
//! discovery is expensive; this module implements the standard
//! candidate-disc approximation (the "Basic Flock Evaluation" idea): at every
//! timestamp, for every pair of points closer than `2r`, the two discs of
//! radius `r` whose boundaries pass through both points are candidate discs;
//! any group that fits in some disc is a subset of a candidate-disc group.
//! Candidate groups are then chained across consecutive timestamps.
//!
//! This miner is quadratic in the number of objects per timestamp, which is
//! fine for the scene sizes used by the unit tests and the comparison
//! example; it intentionally trades speed for faithfulness to the original
//! definition (fixed disc, *lossy-flock* behaviour included).

use std::collections::BTreeSet;

use gpdt_geo::Point;
use gpdt_trajectory::{ObjectId, Timestamp, TrajectoryDatabase};

use crate::common::{retain_maximal, GroupPattern};

/// Parameters of flock discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlockParams {
    /// Minimum number of objects in the disc (`m`).
    pub min_objects: usize,
    /// Minimum number of consecutive timestamps (`k`).
    pub min_duration: u32,
    /// Disc radius `r` in metres.
    pub radius: f64,
}

impl FlockParams {
    /// Creates flock parameters.
    pub fn new(min_objects: usize, min_duration: u32, radius: f64) -> Self {
        assert!(min_objects >= 2, "min_objects must be at least 2");
        assert!(min_duration >= 1, "min_duration must be at least 1");
        assert!(
            radius.is_finite() && radius > 0.0,
            "radius must be positive"
        );
        FlockParams {
            min_objects,
            min_duration,
            radius,
        }
    }
}

/// Candidate groups (object sets that fit in one disc) at one timestamp.
fn disc_groups(positions: &[(ObjectId, Point)], params: &FlockParams) -> Vec<BTreeSet<ObjectId>> {
    let r = params.radius;
    let r_sq = r * r;
    let mut groups: Vec<BTreeSet<ObjectId>> = Vec::new();

    let members_within = |center: Point| -> BTreeSet<ObjectId> {
        positions
            .iter()
            .filter(|(_, p)| p.distance_sq(&center) <= r_sq + 1e-9)
            .map(|(id, _)| *id)
            .collect()
    };

    // Discs centred on single points cover the degenerate case where one
    // point's disc already contains enough objects.
    for &(_, p) in positions {
        let group = members_within(p);
        if group.len() >= params.min_objects {
            groups.push(group);
        }
    }
    // Discs through pairs of points at distance <= 2r.
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            let (a, b) = (positions[i].1, positions[j].1);
            let d_sq = a.distance_sq(&b);
            if d_sq > 4.0 * r_sq || d_sq == 0.0 {
                continue;
            }
            let d = d_sq.sqrt();
            let mid = a.midpoint(&b);
            // Height of the disc centre above the midpoint.
            let h = (r_sq - d_sq / 4.0).max(0.0).sqrt();
            let ux = (b.x - a.x) / d;
            let uy = (b.y - a.y) / d;
            for sign in [-1.0, 1.0] {
                let center = Point::new(mid.x - sign * uy * h, mid.y + sign * ux * h);
                let group = members_within(center);
                if group.len() >= params.min_objects {
                    groups.push(group);
                }
            }
        }
    }
    groups.sort();
    groups.dedup();
    // Keep only maximal groups at this timestamp.
    let maximal: Vec<BTreeSet<ObjectId>> = groups
        .iter()
        .filter(|g| {
            !groups
                .iter()
                .any(|other| other.len() > g.len() && g.is_subset(other))
        })
        .cloned()
        .collect();
    maximal
}

/// Discovers flocks in a trajectory database.
pub fn discover_flocks(db: &TrajectoryDatabase, params: &FlockParams) -> Vec<GroupPattern> {
    let Some(domain) = db.time_domain() else {
        return Vec::new();
    };

    #[derive(Clone)]
    struct Candidate {
        objects: BTreeSet<ObjectId>,
        start: Timestamp,
        end: Timestamp,
    }

    let mut results: Vec<GroupPattern> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    let emit = |c: &Candidate, results: &mut Vec<GroupPattern>| {
        if c.end - c.start + 1 >= params.min_duration && c.objects.len() >= params.min_objects {
            results.push(GroupPattern::new(
                c.objects.iter().copied().collect(),
                (c.start..=c.end).collect(),
            ));
        }
    };

    for t in domain.iter() {
        let snapshot = db.snapshot(t);
        let groups = disc_groups(&snapshot.positions, params);
        let mut next: Vec<Candidate> = Vec::new();
        let mut absorbed = vec![false; groups.len()];
        for candidate in candidates.drain(..) {
            let mut extended = false;
            for (gi, group) in groups.iter().enumerate() {
                let intersection: BTreeSet<ObjectId> =
                    candidate.objects.intersection(group).copied().collect();
                if intersection.len() >= params.min_objects {
                    absorbed[gi] = true;
                    extended = true;
                    next.push(Candidate {
                        objects: intersection,
                        start: candidate.start,
                        end: t,
                    });
                }
            }
            if !extended {
                emit(&candidate, &mut results);
            }
        }
        for (gi, group) in groups.into_iter().enumerate() {
            if !absorbed[gi] {
                next.push(Candidate {
                    objects: group,
                    start: t,
                    end: t,
                });
            }
        }
        next.sort_by(|a, b| (a.start, &a.objects).cmp(&(b.start, &b.objects)));
        next.dedup_by(|a, b| a.start == b.start && a.objects == b.objects);
        candidates = next;
    }
    for candidate in &candidates {
        emit(candidate, &mut results);
    }
    retain_maximal(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn traj(id: u32, points: Vec<(u32, (f64, f64))>) -> Trajectory {
        Trajectory::from_points(ObjectId::new(id), points)
    }

    #[test]
    fn tight_group_is_a_flock() {
        let mut trajs = Vec::new();
        for i in 0..4u32 {
            trajs.push(traj(
                i,
                (0..6u32)
                    .map(|t| (t, (t as f64 * 30.0 + i as f64 * 3.0, i as f64 * 3.0)))
                    .collect(),
            ));
        }
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let flocks = discover_flocks(&db, &FlockParams::new(3, 4, 20.0));
        assert_eq!(flocks.len(), 1);
        assert_eq!(flocks[0].object_count(), 4);
        assert_eq!(flocks[0].duration(), 6);
    }

    #[test]
    fn lossy_flock_excludes_object_outside_the_disc() {
        // The paper's Figure 1b point: o5 travels with the group but outside
        // the fixed-size disc, so the flock misses it while a convoy with a
        // larger reach would include it.
        let mut trajs = Vec::new();
        for i in 0..3u32 {
            trajs.push(traj(
                i,
                (0..5u32)
                    .map(|t| (t, (t as f64 * 40.0, i as f64 * 5.0)))
                    .collect(),
            ));
        }
        // Companion 60 m off to the side: outside a 15 m disc.
        trajs.push(traj(
            9,
            (0..5u32).map(|t| (t, (t as f64 * 40.0, 60.0))).collect(),
        ));
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let flocks = discover_flocks(&db, &FlockParams::new(3, 3, 15.0));
        assert_eq!(flocks.len(), 1);
        assert!(!flocks[0].objects.contains(&ObjectId::new(9)));
        assert_eq!(flocks[0].object_count(), 3);
    }

    #[test]
    fn flock_requires_consecutive_presence() {
        let mut trajs = Vec::new();
        for i in 0..3u32 {
            trajs.push(traj(
                i,
                (0..6u32)
                    .map(|t| {
                        if t == 3 {
                            (t, (i as f64 * 10_000.0, 99_999.0))
                        } else {
                            (t, (0.0 + i as f64 * 4.0, 0.0))
                        }
                    })
                    .collect(),
            ));
        }
        let db = TrajectoryDatabase::from_trajectories(trajs);
        assert!(discover_flocks(&db, &FlockParams::new(3, 4, 20.0)).is_empty());
        assert_eq!(discover_flocks(&db, &FlockParams::new(3, 3, 20.0)).len(), 1);
    }

    #[test]
    fn empty_and_sparse_databases() {
        assert!(
            discover_flocks(&TrajectoryDatabase::new(), &FlockParams::new(2, 2, 10.0)).is_empty()
        );
        let db = TrajectoryDatabase::from_trajectories(vec![traj(
            1,
            vec![(0, (0.0, 0.0)), (1, (10.0, 0.0))],
        )]);
        assert!(discover_flocks(&db, &FlockParams::new(2, 2, 10.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_non_positive_radius() {
        let _ = FlockParams::new(2, 2, 0.0);
    }
}
