//! Moving-cluster discovery (Kalnis et al., SSTD 2005).
//!
//! A moving cluster is a chain of snapshot clusters at consecutive
//! timestamps such that every two adjacent clusters share a large enough
//! fraction of objects: `|c_t ∩ c_{t+1}| / |c_t ∪ c_{t+1}| ≥ θ`.  Unlike
//! convoys and flocks, the member set may change along the chain — but
//! unlike the gathering pattern, adjacent clusters must overlap heavily and
//! there is no constraint on where the clusters are, so a moving cluster can
//! drift arbitrarily far.

use std::collections::BTreeSet;

use gpdt_clustering::{ClusterDatabase, ClusteringParams};
use gpdt_trajectory::{ObjectId, Timestamp, TrajectoryDatabase};

use crate::common::GroupPattern;

/// Parameters of moving-cluster discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingClusterParams {
    /// Jaccard-overlap threshold `θ` between consecutive clusters (0, 1].
    pub theta: f64,
    /// Minimum chain length in timestamps.
    pub min_duration: u32,
    /// DBSCAN parameters for the per-timestamp clustering.
    pub clustering: ClusteringParams,
}

impl MovingClusterParams {
    /// Creates moving-cluster parameters.
    pub fn new(theta: f64, min_duration: u32, clustering: ClusteringParams) -> Self {
        assert!(
            theta > 0.0 && theta <= 1.0,
            "theta must be in (0, 1], got {theta}"
        );
        assert!(min_duration >= 1, "min_duration must be at least 1");
        MovingClusterParams {
            theta,
            min_duration,
            clustering,
        }
    }
}

/// One discovered moving cluster: the union of members over the chain plus
/// the chain's time span.
#[derive(Debug, Clone)]
struct Chain {
    /// Cluster (as an object set) at the chain's current end.
    head: BTreeSet<ObjectId>,
    /// Union of all members that ever participated.
    members: BTreeSet<ObjectId>,
    start: Timestamp,
    end: Timestamp,
}

/// Discovers moving clusters in a trajectory database.
pub fn discover_moving_clusters(
    db: &TrajectoryDatabase,
    params: &MovingClusterParams,
) -> Vec<GroupPattern> {
    let cdb = ClusterDatabase::build(db, &params.clustering);
    discover_moving_clusters_from_clusters(&cdb, params)
}

/// Discovers moving clusters from a pre-built snapshot-cluster database.
pub fn discover_moving_clusters_from_clusters(
    cdb: &ClusterDatabase,
    params: &MovingClusterParams,
) -> Vec<GroupPattern> {
    let mut results: Vec<GroupPattern> = Vec::new();
    let mut chains: Vec<Chain> = Vec::new();

    let jaccard = |a: &BTreeSet<ObjectId>, b: &BTreeSet<ObjectId>| -> f64 {
        let inter = a.intersection(b).count() as f64;
        let union = a.union(b).count() as f64;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    };

    for set in cdb.iter() {
        let t = set.time;
        let clusters: Vec<BTreeSet<ObjectId>> = set
            .clusters
            .iter()
            .map(|c| c.members().iter().copied().collect())
            .collect();
        let mut next: Vec<Chain> = Vec::new();
        let mut absorbed = vec![false; clusters.len()];
        for chain in chains.drain(..) {
            let mut extended = false;
            for (idx, cluster) in clusters.iter().enumerate() {
                if jaccard(&chain.head, cluster) >= params.theta {
                    absorbed[idx] = true;
                    extended = true;
                    let mut members = chain.members.clone();
                    members.extend(cluster.iter().copied());
                    next.push(Chain {
                        head: cluster.clone(),
                        members,
                        start: chain.start,
                        end: t,
                    });
                }
            }
            if !extended {
                emit(&chain, params, &mut results);
            }
        }
        for (idx, cluster) in clusters.into_iter().enumerate() {
            if !absorbed[idx] && !cluster.is_empty() {
                next.push(Chain {
                    members: cluster.clone(),
                    head: cluster,
                    start: t,
                    end: t,
                });
            }
        }
        chains = next;
    }
    for chain in &chains {
        emit(chain, params, &mut results);
    }
    results
}

fn emit(chain: &Chain, params: &MovingClusterParams, results: &mut Vec<GroupPattern>) {
    if chain.end - chain.start + 1 >= params.min_duration {
        results.push(GroupPattern::new(
            chain.members.iter().copied().collect(),
            (chain.start..=chain.end).collect(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_trajectory::Trajectory;

    fn params(theta: f64, k: u32) -> MovingClusterParams {
        MovingClusterParams::new(theta, k, ClusteringParams::new(50.0, 3))
    }

    #[test]
    fn stable_group_forms_one_moving_cluster() {
        let mut trajs = Vec::new();
        for i in 0..4u32 {
            trajs.push(Trajectory::from_points(
                ObjectId::new(i),
                (0..8u32)
                    .map(|t| (t, (t as f64 * 40.0 + i as f64 * 5.0, 0.0)))
                    .collect::<Vec<_>>(),
            ));
        }
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let mcs = discover_moving_clusters(&db, &params(0.5, 5));
        assert_eq!(mcs.len(), 1);
        assert_eq!(mcs[0].object_count(), 4);
        assert_eq!(mcs[0].duration(), 8);
    }

    #[test]
    fn gradual_membership_change_is_tolerated() {
        // Five objects; object 0 is replaced by object 5 halfway through, but
        // the overlap between consecutive clusters stays >= 3/5.
        let mut trajs = Vec::new();
        for i in 1..5u32 {
            trajs.push(Trajectory::from_points(
                ObjectId::new(i),
                (0..10u32)
                    .map(|t| (t, (t as f64 * 30.0 + i as f64 * 5.0, 0.0)))
                    .collect::<Vec<_>>(),
            ));
        }
        // Object 0 present for the first half only, object 5 for the second.
        trajs.push(Trajectory::from_points(
            ObjectId::new(0),
            (0..5u32)
                .map(|t| (t, (t as f64 * 30.0, 2.0)))
                .collect::<Vec<_>>(),
        ));
        trajs.push(Trajectory::from_points(
            ObjectId::new(5),
            (5..10u32)
                .map(|t| (t, (t as f64 * 30.0, 2.0)))
                .collect::<Vec<_>>(),
        ));
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let mcs = discover_moving_clusters(&db, &params(0.6, 8));
        assert_eq!(mcs.len(), 1);
        // The union of members contains all six objects.
        assert_eq!(mcs[0].object_count(), 6);
        assert_eq!(mcs[0].duration(), 10);
    }

    #[test]
    fn low_overlap_breaks_the_chain() {
        // Complete membership swap halfway: Jaccard across the swap is 0.
        let mut trajs = Vec::new();
        for i in 0..3u32 {
            trajs.push(Trajectory::from_points(
                ObjectId::new(i),
                (0..4u32)
                    .map(|t| (t, (t as f64 * 30.0 + i as f64 * 4.0, 0.0)))
                    .collect::<Vec<_>>(),
            ));
        }
        for i in 10..13u32 {
            trajs.push(Trajectory::from_points(
                ObjectId::new(i),
                (4..8u32)
                    .map(|t| (t, (t as f64 * 30.0 + i as f64 * 4.0, 0.0)))
                    .collect::<Vec<_>>(),
            ));
        }
        let db = TrajectoryDatabase::from_trajectories(trajs);
        let mcs = discover_moving_clusters(&db, &params(0.5, 4));
        assert_eq!(mcs.len(), 2);
        for mc in &mcs {
            assert_eq!(mc.duration(), 4);
            assert_eq!(mc.object_count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn rejects_invalid_theta() {
        let _ = MovingClusterParams::new(1.5, 2, ClusteringParams::new(10.0, 2));
    }

    #[test]
    fn empty_database_has_no_moving_clusters() {
        assert!(discover_moving_clusters(&TrajectoryDatabase::new(), &params(0.5, 2)).is_empty());
    }
}
