//! Baseline group-pattern miners.
//!
//! The paper motivates the gathering pattern by contrasting it with earlier
//! group patterns — flock, convoy, swarm and moving cluster — and its
//! effectiveness study (Figure 5) counts closed swarms and convoys alongside
//! crowds and gatherings.  This crate implements those baselines on top of
//! the same trajectory and clustering substrates:
//!
//! * [`convoy`] — density-connected groups over `k` *consecutive* timestamps
//!   (Jeung et al., VLDB 2008), discovered with the moving-cluster style
//!   intersection sweep (CMC).
//! * [`swarm`] — closed swarms: groups co-clustered in at least `k` possibly
//!   *non-consecutive* timestamps (Li et al., VLDB 2010), discovered with an
//!   ObjectGrowth-style depth-first search with apriori and backward pruning.
//! * [`flock`] — groups staying inside a fixed-radius disc for `k`
//!   consecutive timestamps (Benkert et al.), using the standard
//!   pair-generated candidate-disc approximation.
//! * [`moving_cluster`] — chains of snapshot clusters with sufficient overlap
//!   between consecutive timestamps (Kalnis et al., SSTD 2005).
//!
//! All miners consume a [`gpdt_trajectory::TrajectoryDatabase`] (or a
//! pre-built [`gpdt_clustering::ClusterDatabase`]) and report
//! [`GroupPattern`]s.

pub mod common;
pub mod convoy;
pub mod flock;
pub mod moving_cluster;
pub mod swarm;

pub use common::GroupPattern;
pub use convoy::{discover_convoys, discover_convoys_from_clusters, ConvoyParams};
pub use flock::{discover_flocks, FlockParams};
pub use moving_cluster::{
    discover_moving_clusters, discover_moving_clusters_from_clusters, MovingClusterParams,
};
pub use swarm::{discover_closed_swarms, discover_closed_swarms_from_clusters, SwarmParams};
