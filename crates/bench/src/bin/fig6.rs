//! Figure 6 — crowd-discovery efficiency.
//!
//! Compares the three pruning schemes of §III-A (SR = R-tree with `dmin`,
//! IR = R-tree with `dside`, GRID = grid index) while sweeping
//!
//! * Figure 6a: the crowd support threshold `mc`,
//! * Figure 6b: the variation threshold `δ`,
//! * Figure 6c: the database size `|ODB|`.
//!
//! Run with `cargo run -p gpdt-bench --release --bin fig6`.  Sizes are scaled
//! down from the paper's 30 000-taxi day (set `GPDT_SCALE` to adjust); the
//! claim being reproduced is the *ordering and sensitivity* of the three
//! schemes, not absolute seconds.

use std::time::Duration;

use gpdt_bench::report::{measure_with, secs, BenchReport, MeasureOpts, Table};
use gpdt_bench::scenarios::{clustered_scenario, scaled};
use gpdt_core::{CrowdDiscovery, CrowdParams, RangeSearchStrategy};

const STRATEGIES: [RangeSearchStrategy; 3] = [
    RangeSearchStrategy::RTreeDmin,
    RangeSearchStrategy::RTreeDside,
    RangeSearchStrategy::Grid,
];

fn run_discovery(
    clusters: &gpdt_clustering::ClusterDatabase,
    params: CrowdParams,
    strategy: RangeSearchStrategy,
) -> (usize, Duration) {
    let discovery = CrowdDiscovery::new(params, strategy);
    let (result, elapsed) = measure_with(MeasureOpts::from_env(), || discovery.run(clusters));
    (result.closed_crowds.len(), elapsed)
}

fn main() {
    let mut report = BenchReport::new("fig6");
    let base_taxis = scaled(1_000);
    let duration = 240u32; // a 4-hour slice of the day
    let base = clustered_scenario(42, base_taxis, duration);
    println!(
        "dataset: {} taxis, {} minutes, {} snapshot clusters\n",
        base_taxis,
        duration,
        base.clusters.total_clusters()
    );

    // ---- Figure 6a: runtime vs mc -----------------------------------------
    let mut fig6a = Table::new(
        "Figure 6a — crowd discovery runtime (s) vs support threshold mc",
        &["mc", "SR", "IR", "GRID", "#crowds"],
    );
    for mc in [5usize, 10, 15, 20, 25] {
        let params = CrowdParams::new(mc, 20, 300.0);
        let mut cells = vec![mc.to_string()];
        let mut crowd_count = 0;
        for strategy in STRATEGIES {
            let (count, elapsed) = run_discovery(&base.clusters, params, strategy);
            crowd_count = count;
            cells.push(secs(elapsed));
        }
        cells.push(crowd_count.to_string());
        fig6a.add_row(cells);
    }
    report.print_and_add(fig6a);

    // ---- Figure 6b: runtime vs delta ---------------------------------------
    let mut fig6b = Table::new(
        "Figure 6b — crowd discovery runtime (s) vs variation threshold delta (m)",
        &["delta", "SR", "IR", "GRID", "#crowds"],
    );
    for delta in [100.0f64, 200.0, 300.0, 400.0, 500.0] {
        let params = CrowdParams::new(15, 20, delta);
        let mut cells = vec![format!("{delta:.0}")];
        let mut crowd_count = 0;
        for strategy in STRATEGIES {
            let (count, elapsed) = run_discovery(&base.clusters, params, strategy);
            crowd_count = count;
            cells.push(secs(elapsed));
        }
        cells.push(crowd_count.to_string());
        fig6b.add_row(cells);
    }
    report.print_and_add(fig6b);

    // ---- Figure 6c: runtime vs |ODB| ---------------------------------------
    let mut fig6c = Table::new(
        "Figure 6c — crowd discovery runtime (s) vs database size |ODB|",
        &["|ODB|", "SR", "IR", "GRID", "#crowds"],
    );
    for frac in [1usize, 2, 3, 4, 5] {
        let taxis = scaled(200) * frac;
        let cs = clustered_scenario(42, taxis, duration);
        let params = CrowdParams::new(15, 20, 300.0);
        let mut cells = vec![taxis.to_string()];
        let mut crowd_count = 0;
        for strategy in STRATEGIES {
            let (count, elapsed) = run_discovery(&cs.clusters, params, strategy);
            crowd_count = count;
            cells.push(secs(elapsed));
        }
        cells.push(crowd_count.to_string());
        fig6c.add_row(cells);
    }
    report.print_and_add(fig6c);
    report.write_logged();

    println!(
        "Expected shape (paper): GRID < IR < SR at every point; runtimes fall as mc grows, rise \
         with delta and |ODB|; GRID is the least sensitive to |ODB|."
    );
}
