//! Figure 7 — gathering-detection efficiency.
//!
//! Compares the brute-force enumerator, TAD and TAD\* (§III-B) over a set of
//! synthetic closed crowds while sweeping
//!
//! * Figure 7a: the gathering support threshold `mp`,
//! * Figure 7b: the participator lifetime threshold `kp`,
//! * Figure 7c: the crowd length `Cr.τ`.
//!
//! The paper runs each configuration over 1 000 closed crowds randomly
//! selected from the taxi dataset; here the crowds are generated directly
//! with jam-like membership structure (see `gpdt_bench::synth`), 200 crowds
//! per configuration by default (`GPDT_SCALE` to adjust).
//!
//! Run with `cargo run -p gpdt-bench --release --bin fig7`.

use std::time::Duration;

use gpdt_bench::report::{measure_with, BenchReport, MeasureOpts, Table};
use gpdt_bench::scenarios::scaled;
use gpdt_bench::synth::{synthetic_crowd, SyntheticCrowdSpec};
use gpdt_core::{detect_closed_gatherings, GatheringParams, TadVariant};

fn average_runtime(
    crowds: &[(gpdt_clustering::ClusterDatabase, gpdt_core::Crowd)],
    params: &GatheringParams,
    kc: u32,
    variant: TadVariant,
) -> Duration {
    let (_, total) = measure_with(MeasureOpts::from_env(), || {
        let mut found = 0usize;
        for (cdb, crowd) in crowds {
            found += detect_closed_gatherings(crowd, cdb, params, kc, variant).len();
        }
        found
    });
    total / crowds.len().max(1) as u32
}

fn millis(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1_000.0)
}

fn crowd_set(
    count: usize,
    length: usize,
) -> Vec<(gpdt_clustering::ClusterDatabase, gpdt_core::Crowd)> {
    (0..count)
        .map(|i| synthetic_crowd(&SyntheticCrowdSpec::jam_like(i as u64, length)))
        .collect()
}

fn main() {
    let mut report = BenchReport::new("fig7");
    let kc = 15u32;
    let crowds_per_config = scaled(200);

    // ---- Figure 7a: runtime vs mp ------------------------------------------
    let base_crowds = crowd_set(crowds_per_config, 35);
    let mut fig7a = Table::new(
        "Figure 7a — gathering detection avg runtime (ms/crowd) vs mp",
        &["mp", "brute-force", "TAD", "TAD*"],
    );
    for mp in [7usize, 9, 11, 13, 15] {
        let params = GatheringParams::new(mp, 14);
        let mut cells = vec![mp.to_string()];
        for variant in TadVariant::ALL {
            cells.push(millis(average_runtime(&base_crowds, &params, kc, variant)));
        }
        fig7a.add_row(cells);
    }
    report.print_and_add(fig7a);

    // ---- Figure 7b: runtime vs kp ------------------------------------------
    let mut fig7b = Table::new(
        "Figure 7b — gathering detection avg runtime (ms/crowd) vs kp (min)",
        &["kp", "brute-force", "TAD", "TAD*"],
    );
    for kp in [10u32, 12, 14, 16, 18] {
        let params = GatheringParams::new(11, kp);
        let mut cells = vec![kp.to_string()];
        for variant in TadVariant::ALL {
            cells.push(millis(average_runtime(&base_crowds, &params, kc, variant)));
        }
        fig7b.add_row(cells);
    }
    report.print_and_add(fig7b);

    // ---- Figure 7c: runtime vs crowd length --------------------------------
    let mut fig7c = Table::new(
        "Figure 7c — gathering detection avg runtime (ms/crowd) vs crowd length Cr.tau (min)",
        &["Cr.tau", "brute-force", "TAD", "TAD*"],
    );
    let params = GatheringParams::new(11, 14);
    for length in [15usize, 25, 35, 45, 55] {
        let crowds = crowd_set(crowds_per_config, length);
        let mut cells = vec![length.to_string()];
        for variant in TadVariant::ALL {
            cells.push(millis(average_runtime(&crowds, &params, kc, variant)));
        }
        fig7c.add_row(cells);
    }
    report.print_and_add(fig7c);
    report.write_logged();

    println!(
        "Expected shape (paper): TAD beats brute force by 1-2 orders of magnitude; TAD* improves \
         on TAD (about 30% in the paper); brute force degrades sharply with crowd length while \
         TAD/TAD* grow smoothly."
    );
}
