//! Deterministic fault sweep — the CI durability gate.
//!
//! Runs the crash lattice of [`gpdt_bench::fault_sweep`] twice over a
//! deterministic workload:
//!
//! 1. **kills only** — ≥200 seeded kill points, every mutating VFS
//!    operation a candidate crash site, each recovery compared
//!    byte-for-byte against the uninterrupted run;
//! 2. **kills + transient faults** — the same lattice with injected short
//!    writes and failed fsyncs layered on top, exercising the
//!    restart-from-cursor path a supervisor would drive.
//!
//! The seed comes from `GPDT_FAULT_SEED` (default below) so a red run is
//! reproducible by exporting the printed seed.  Results land in
//! `BENCH_fault.json`; any violated invariant is printed to stderr and the
//! process exits nonzero, failing the CI job.
//!
//! Run with `cargo run -p gpdt-bench --release --bin fault`.

use gpdt_bench::env;
use gpdt_bench::fault_sweep::{crash_lattice, sweep_workload, LatticeConfig, LatticeOutcome};
use gpdt_bench::report::{BenchReport, Table};

fn add_row(table: &mut Table, name: &str, outcome: &LatticeOutcome) {
    table.add_row(vec![
        name.into(),
        outcome.points.to_string(),
        outcome.kills_fired.to_string(),
        outcome.incarnations.to_string(),
        outcome.transient_restarts.to_string(),
        outcome.violations.len().to_string(),
    ]);
}

fn main() {
    gpdt_obs::install_panic_hook();
    let seed = env::fault_seed().unwrap_or(0x1CDE_2013);
    let (config, sets) = sweep_workload(8, 135);
    let mut report = BenchReport::new("fault");
    let mut table = Table::new(
        format!("Crash lattice — seed {seed:#x}"),
        &[
            "sweep",
            "kill points",
            "kills fired",
            "incarnations",
            "transient restarts",
            "violations",
        ],
    );

    let start = std::time::Instant::now();
    let kills = crash_lattice(
        &LatticeConfig {
            seed,
            points: 200,
            ..LatticeConfig::default()
        },
        &config,
        &sets,
    );
    add_row(&mut table, "kills only", &kills);
    eprintln!(
        "[fault] kills-only lattice: {} points, {} kills fired, {} violations in {:.1?}",
        kills.points,
        kills.kills_fired,
        kills.violations.len(),
        start.elapsed()
    );

    let start = std::time::Instant::now();
    let noisy = crash_lattice(
        &LatticeConfig {
            seed: seed.rotate_left(17),
            points: 64,
            transient_write_one_in: Some(7),
            transient_sync_one_in: Some(11),
            ..LatticeConfig::default()
        },
        &config,
        &sets,
    );
    add_row(&mut table, "kills + transient faults", &noisy);
    eprintln!(
        "[fault] noisy lattice: {} points, {} kills fired, {} transient restarts, \
         {} violations in {:.1?}",
        noisy.points,
        noisy.kills_fired,
        noisy.transient_restarts,
        noisy.violations.len(),
        start.elapsed()
    );

    report.print_and_add(table);
    report.write_logged();
    gpdt_bench::report::write_obs_sidecar("fault");
    // The fault gate's post-mortem artifact: the flight recorder holds the
    // tail of the injected-fault / crash-recovery event stream, and CI
    // asserts the dump exists after a lattice run.
    if gpdt_obs::enabled() {
        gpdt_obs::flight().dump();
        eprintln!(
            "[fault] flight recorder: {} events recorded, dump at {}",
            gpdt_obs::flight().recorded(),
            gpdt_obs::dump_path().display()
        );
    }

    let violations: Vec<&String> = kills
        .violations
        .iter()
        .chain(noisy.violations.iter())
        .collect();
    if !violations.is_empty() {
        eprintln!("[fault] FAILED under seed {seed:#x}:");
        for v in &violations {
            eprintln!("[fault]   {v}");
        }
        std::process::exit(1);
    }
    println!(
        "All {} kill points recovered byte-identically.",
        kills.points + noisy.points
    );
}
