//! Sharded-ingest throughput sweep (`BENCH_shard.json`).
//!
//! Streams one synthetic city scenario through a single `GatheringEngine`
//! (the baseline) and through `ShardedEngine`s at shard counts from 1 up to
//! the machine's core count, reporting end-to-end ingest throughput in
//! objects·ticks/s plus the merge overhead — the sequential replay cost a
//! sharded deployment pays on top of the per-shard sweeps — **reported, not
//! hidden**: on a single-core host the sharded rows cannot beat the
//! baseline, and the overhead column is exactly why.
//!
//! A final row runs the `hash-by-object` fallback partitioner, whose merge
//! degenerates towards a full sweep (every cluster is boundary-adjacent);
//! it is included to keep the cost of giving up spatial locality honest.
//!
//! Sizes honour `GPDT_SCALE`; scratch and report locations honour
//! `GPDT_SCRATCH_DIR` / `GPDT_BENCH_DIR` (see `gpdt_bench::env`).  Run with
//! `cargo run -p gpdt-bench --release --bin shard`.

use std::time::Duration;

use gpdt_bench::report::{measure_with, BenchReport, MeasureOpts, Table};
use gpdt_bench::scenarios::{clustered_scenario, scaled};
use gpdt_clustering::ClusterDatabase;
use gpdt_core::{CrowdParams, GatheringConfig, GatheringEngine, GatheringParams};
use gpdt_shard::{GridPartitioner, Partitioner, ShardedEngine};
use gpdt_trajectory::TimeInterval;

/// Ticks per ingest batch: large enough to amortise the per-batch fan-out,
/// small enough that the stream is genuinely incremental.
const BATCH_TICKS: u32 = 10;

fn main() {
    let opts = MeasureOpts::from_env();
    let taxis = scaled(1500);
    let minutes = 120u32;
    let clustered = clustered_scenario(17, taxis, minutes);
    let config = GatheringConfig::builder()
        .clustering(clustered.clustering)
        .crowd(CrowdParams::new(15, 20, 300.0))
        .gathering(GatheringParams::new(10, 15))
        .build()
        .expect("valid parameters");

    // Pre-slice the cluster stream once; every engine ingests identical
    // batches.
    let batches = slice_batches(&clustered.clusters, BATCH_TICKS);
    let work = (taxis as u64) * u64::from(minutes);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut shard_counts: Vec<usize> = Vec::new();
    let mut n = 1;
    while n < cores {
        shard_counts.push(n);
        n *= 2;
    }
    shard_counts.push(cores);
    if cores == 1 {
        // Still exercise the merge machinery so the overhead is visible.
        shard_counts.push(2);
    }

    let mut report = BenchReport::new("shard");
    let mut table = Table::new(
        format!(
            "Sharded ingest — {taxis} taxis × {minutes} min, batches of {BATCH_TICKS} ticks, \
             {cores} core(s)"
        ),
        &[
            "configuration",
            "runtime (s)",
            "objects·ticks/s",
            "merge overhead",
            "cross edges",
            "gatherings",
        ],
    );

    // Baseline: the single engine.
    let (single, single_time) = measure_with(opts, || {
        let mut engine = GatheringEngine::new(config);
        for batch in &batches {
            engine.ingest_clusters(batch.clone());
        }
        engine
    });
    let reference = single.gatherings();
    table.add_row(vec![
        "single engine".into(),
        secs(single_time),
        throughput(work, single_time),
        "-".into(),
        "-".into(),
        reference.len().to_string(),
    ]);
    println!(
        "single engine: {} gatherings in {}s",
        reference.len(),
        secs(single_time)
    );

    let grid = Partitioner::Grid(GridPartitioner::new(1_500.0));
    for &shards in &shard_counts {
        run_sharded(
            &mut table, opts, &batches, config, shards, grid, work, &reference,
        );
    }
    // The locality-oblivious fallback, at the largest shard count.
    run_sharded(
        &mut table,
        opts,
        &batches,
        config,
        *shard_counts.last().expect("non-empty"),
        Partitioner::HashByObject,
        work,
        &reference,
    );

    report.print_and_add(table);
    report.write_logged();
    println!(
        "Expected shape: on a multi-core host the grid rows overtake the single engine as \
         shards approach the core count while merge overhead stays in single-digit percent; \
         the hash row shows the fallback's merge approaching a full sweep.  On one core the \
         sharded rows pay the merge overhead with nothing to parallelise against."
    );
}

#[allow(clippy::too_many_arguments)]
fn run_sharded(
    table: &mut Table,
    opts: MeasureOpts,
    batches: &[ClusterDatabase],
    config: GatheringConfig,
    shards: usize,
    partitioner: Partitioner,
    work: u64,
    reference: &[gpdt_core::Gathering],
) {
    let (engine, time) = measure_with(opts, || {
        let mut engine = ShardedEngine::new(config, shards, partitioner);
        for batch in batches {
            engine.ingest_clusters(batch.clone());
        }
        engine
    });
    let gatherings = engine.gatherings();
    assert_eq!(
        gatherings, reference,
        "sharded output diverged from the single engine ({shards} shards, {partitioner})"
    );
    let stats = engine.stats();
    // Counters come from the engine of the final timed run, `time` is the
    // best-of-N wall clock: the ratio slightly overstates the overhead on
    // noisy hosts, which is the honest direction to err in.
    let total_nanos = time.as_nanos().max(1) as f64;
    let overhead = (stats.partition_nanos + stats.merge_nanos) as f64 / total_nanos * 100.0;
    table.add_row(vec![
        format!("{shards} shards, {}", partitioner.label()),
        secs(time),
        throughput(work, time),
        format!("{overhead:.1}%"),
        stats.cross_edges.to_string(),
        gatherings.len().to_string(),
    ]);
    println!(
        "{shards} shards ({}): {}s, merge overhead {overhead:.1}%, {} cross edges",
        partitioner.label(),
        secs(time),
        stats.cross_edges
    );
}

/// Slices a prebuilt cluster database into contiguous ingest batches.
fn slice_batches(clusters: &ClusterDatabase, ticks_per_batch: u32) -> Vec<ClusterDatabase> {
    let Some(domain) = clusters.time_domain() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut at = domain.start;
    while at <= domain.end {
        let end = (at + ticks_per_batch - 1).min(domain.end);
        let sets = TimeInterval::new(at, end)
            .iter()
            .map(|t| clusters.set_at(t).expect("contiguous domain").clone())
            .collect();
        out.push(ClusterDatabase::from_sets(sets));
        at = end + 1;
    }
    out
}

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

fn throughput(work: u64, d: Duration) -> String {
    format!("{:.0}", work as f64 / d.as_secs_f64())
}
