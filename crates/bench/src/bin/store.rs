//! Store/query micro-benchmarks for the `gpdt-store` layer.
//!
//! Three tables, written to `BENCH_store.json`:
//!
//! * **log throughput** — appending synthetic pattern records to the segment
//!   log, fsyncing, and replaying the segments on reopen;
//! * **query latency** — region × time-window queries, window-only stabs,
//!   per-object histories and top-k rankings against the indexed store,
//!   with the equivalent full scan as the baseline;
//! * **checkpoint/restore** — serialising and restoring a real
//!   `GatheringEngine` mid-stream, with the checkpoint size.
//!
//! Sizes honour `GPDT_SCALE` like every other figure binary.  Run with
//! `cargo run -p gpdt-bench --release --bin store`.

use gpdt_bench::report::{measure, measure_with, secs, BenchReport, MeasureOpts, Table};
use gpdt_bench::scenarios::{clustered_scenario, scaled};
use gpdt_clustering::ClusterId;
use gpdt_core::{Crowd, GatheringConfig, GatheringEngine};
use gpdt_geo::Mbr;
use gpdt_store::{
    checkpoint_to_vec, restore_from_slice, PatternRecord, PatternStore, StoreOptions,
    StoredGathering,
};
use gpdt_trajectory::{ObjectId, TimeInterval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn main() {
    let mut report = BenchReport::new("store");
    let records = synthetic_records(scaled(20_000));
    log_throughput(&mut report, &records);
    query_latency(&mut report, &records);
    checkpoint_restore(&mut report);
    report.write_logged();
    println!(
        "Expected shape: appends are sequential writes (hundreds of thousands of records/s), \
         indexed queries stay microseconds while the scan baseline grows with the store, and \
         restore cost is dominated by re-reading the cluster database."
    );
}

/// A fresh unique scratch directory (`GPDT_SCRATCH_DIR`-overridable, like
/// every bench binary and example touching disk — see `gpdt_bench::env`).
fn bench_dir(tag: &str) -> PathBuf {
    gpdt_bench::env::scratch_dir(&format!("store-bench-{tag}"))
}

/// Synthesises `n` pattern records with clustered geometry: gatherings pop
/// up around a few hundred venues over a long time axis, which gives the
/// R-tree and interval index realistic selectivity.
fn synthetic_records(n: usize) -> Vec<PatternRecord> {
    let mut rng = StdRng::seed_from_u64(0xBE9C);
    let venues: Vec<(f64, f64)> = (0..256)
        .map(|_| {
            (
                rng.gen_range(-50_000.0..50_000.0),
                rng.gen_range(-50_000.0..50_000.0),
            )
        })
        .collect();
    (0..n)
        .map(|_| {
            let (vx, vy) = venues[rng.gen_range(0..venues.len())];
            let x = vx + rng.gen_range(-400.0..400.0);
            let y = vy + rng.gen_range(-400.0..400.0);
            let w = rng.gen_range(50.0..600.0);
            let h = rng.gen_range(50.0..600.0);
            let start = rng.gen_range(0u32..100_000);
            let len = rng.gen_range(15u32..120);
            let crowd = Crowd::new(
                (start..start + len)
                    .map(|t| ClusterId::new(t, rng.gen_range(0usize..4)))
                    .collect(),
            );
            let mut participators: Vec<ObjectId> = (0..rng.gen_range(10usize..40))
                .map(|_| ObjectId::new(rng.gen_range(0u32..30_000)))
                .collect();
            participators.sort_unstable();
            participators.dedup();
            let interval = crowd.interval();
            PatternRecord {
                crowd,
                mbr: Mbr::new(x, y, x + w, y + h),
                gatherings: vec![StoredGathering {
                    interval,
                    mbr: Mbr::new(x, y, x + w * 0.8, y + h * 0.8),
                    participators,
                }],
            }
        })
        .collect()
}

fn log_throughput(report: &mut BenchReport, records: &[PatternRecord]) {
    let opts = MeasureOpts::from_env();
    let mut table = Table::new(
        format!("Segment log — {} records", records.len()),
        &["operation", "runtime (s)", "records/s"],
    );
    let dir = bench_dir("log");

    let (mut store, append_time) = measure(|| {
        let mut store = PatternStore::open_with(
            &dir,
            StoreOptions {
                max_segment_bytes: 4 * 1024 * 1024,
                ..StoreOptions::default()
            },
        )
        .expect("open bench store");
        for record in records {
            store.append(record.clone()).expect("append");
        }
        store
    });
    let per_sec = records.len() as f64 / append_time.as_secs_f64();
    table.add_row(vec![
        "append".into(),
        secs(append_time),
        format!("{per_sec:.0}"),
    ]);

    let ((), sync_time) = measure(|| store.sync().expect("sync"));
    table.add_row(vec!["fsync".into(), secs(sync_time), "-".into()]);
    let segments = store.segment_count();
    drop(store);

    let (reopened, replay_time) = measure_with(opts, || {
        PatternStore::open(&dir).expect("reopen bench store")
    });
    assert_eq!(reopened.len(), records.len());
    let per_sec = records.len() as f64 / replay_time.as_secs_f64();
    table.add_row(vec![
        format!("reopen/replay ({segments} segments)"),
        secs(replay_time),
        format!("{per_sec:.0}"),
    ]);
    report.print_and_add(table);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

fn query_latency(report: &mut BenchReport, records: &[PatternRecord]) {
    let opts = MeasureOpts::from_env();
    let dir = bench_dir("query");
    let mut store = PatternStore::open(&dir).expect("open bench store");
    for record in records {
        store.append(record.clone()).expect("append");
    }
    let queries = scaled(400).max(16);
    let mut rng = StdRng::seed_from_u64(0x9E4C);
    let boxes: Vec<(Mbr, TimeInterval)> = (0..queries)
        .map(|_| {
            let x = rng.gen_range(-50_000.0..50_000.0);
            let y = rng.gen_range(-50_000.0..50_000.0);
            let t = rng.gen_range(0u32..100_000);
            (
                Mbr::new(
                    x,
                    y,
                    x + rng.gen_range(200.0..5_000.0),
                    y + rng.gen_range(200.0..5_000.0),
                ),
                TimeInterval::new(t, t + rng.gen_range(10u32..2_000)),
            )
        })
        .collect();

    let mut table = Table::new(
        format!(
            "Query latency — {} records, {queries} queries (avg µs/query)",
            records.len()
        ),
        &["query", "indexed", "full scan"],
    );
    let micros = |total: std::time::Duration| -> String {
        format!("{:.1}", total.as_secs_f64() * 1e6 / queries as f64)
    };

    let (indexed_hits, indexed) = measure_with(opts, || {
        boxes
            .iter()
            .map(|(region, window)| store.query_gatherings(region, *window).len())
            .sum::<usize>()
    });
    let (scan_hits, scanned) = measure_with(opts, || {
        boxes
            .iter()
            .map(|(region, window)| {
                store
                    .records()
                    .iter()
                    .flat_map(|r| r.gatherings.iter())
                    .filter(|g| {
                        g.mbr.intersects(region)
                            && g.interval.start <= window.end
                            && g.interval.end >= window.start
                    })
                    .count()
            })
            .sum::<usize>()
    });
    assert_eq!(indexed_hits, scan_hits, "index must agree with the scan");
    table.add_row(vec![
        format!("region × window ({indexed_hits} hits)"),
        micros(indexed),
        micros(scanned),
    ]);

    let (_, window_time) = measure_with(opts, || {
        boxes
            .iter()
            .map(|(_, window)| store.crowds_in_window(*window).len())
            .sum::<usize>()
    });
    table.add_row(vec!["window only".into(), micros(window_time), "-".into()]);

    let objects: Vec<ObjectId> = (0..queries as u32).map(|i| ObjectId::new(i * 37)).collect();
    let (_, history_time) = measure_with(opts, || {
        objects
            .iter()
            .map(|&o| store.object_history(o).len())
            .sum::<usize>()
    });
    table.add_row(vec![
        "object history".into(),
        micros(history_time),
        "-".into(),
    ]);

    let (_, topk_time) = measure_with(opts, || store.top_k_gatherings(10).len());
    table.add_row(vec![
        "top-10 by participators".into(),
        format!("{:.1}", topk_time.as_secs_f64() * 1e6),
        "-".into(),
    ]);
    report.print_and_add(table);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn checkpoint_restore(report: &mut BenchReport) {
    let opts = MeasureOpts::from_env();
    let taxis = scaled(600);
    let minutes = 180u32;
    let clustered = clustered_scenario(11, taxis, minutes);
    let config = GatheringConfig::builder()
        .clustering(clustered.clustering)
        .crowd(gpdt_core::CrowdParams::new(15, 20, 300.0))
        .gathering(gpdt_core::GatheringParams::new(10, 15))
        .build()
        .expect("valid parameters");
    let mut engine = GatheringEngine::new(config);
    engine.ingest_clusters(clustered.clusters.clone());

    let (bytes, checkpoint_time) = measure_with(opts, || checkpoint_to_vec(&engine));
    let (restored, restore_time) = measure_with(opts, || {
        restore_from_slice(&bytes).expect("restore benchmark engine")
    });
    assert_eq!(restored.closed_crowds(), engine.closed_crowds());

    let mut table = Table::new(
        format!("Engine checkpoint — {taxis} taxis × {minutes} minutes"),
        &["operation", "runtime (s)", "size (MiB)"],
    );
    let mib = bytes.len() as f64 / (1024.0 * 1024.0);
    table.add_row(vec![
        "checkpoint".into(),
        secs(checkpoint_time),
        format!("{mib:.2}"),
    ]);
    table.add_row(vec!["restore".into(), secs(restore_time), "-".into()]);
    report.print_and_add(table);
}
