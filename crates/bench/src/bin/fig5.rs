//! Figure 5 — effectiveness study.
//!
//! Reproduces the two charts of the paper's §IV-A on the synthetic workload:
//!
//! * Figure 5a: number of closed crowds / closed gatherings / closed swarms /
//!   convoys per day, grouped by time-of-day regime (peak / work / casual).
//! * Figure 5b: the same counts grouped by weather (clear / rainy / snowy).
//!
//! Run with `cargo run -p gpdt-bench --release --bin fig5`.  The fleet size
//! and day length are scaled down from the paper's 30 000-taxi dataset; set
//! `GPDT_SCALE` to adjust.

use gpdt_baselines::{
    discover_closed_swarms_from_clusters, discover_convoys_from_clusters, ConvoyParams, SwarmParams,
};
use gpdt_bench::env;
use gpdt_bench::fault_sweep::mine_under_faults;
use gpdt_bench::out_of_core::ingest_bounded;
use gpdt_bench::report::{BenchReport, Table};
use gpdt_bench::scenarios::{clustered_day, scaled};
use gpdt_clustering::ClusteringParams;
use gpdt_core::{CrowdParams, GatheringConfig, GatheringEngine, GatheringParams, RetentionPolicy};
use gpdt_store::PatternStore;
use gpdt_trajectory::TimeInterval;
use gpdt_workload::{Regime, Weather};

/// Discovery thresholds, scaled from the paper's settings (`mc=15, δ=300,
/// kc=20, kp=15, mp=10`) so that the scaled-down fleet still produces a
/// meaningful number of patterns.
struct Thresholds {
    crowd: CrowdParams,
    gathering: GatheringParams,
    convoy_m: usize,
    convoy_k: u32,
    swarm_m: usize,
    swarm_k: usize,
}

fn thresholds() -> Thresholds {
    Thresholds {
        crowd: CrowdParams::new(15, 20, 300.0),
        gathering: GatheringParams::new(10, 15),
        convoy_m: 15,
        convoy_k: 10,
        swarm_m: 15,
        swarm_k: 10,
    }
}

struct Counts {
    crowds: usize,
    gatherings: usize,
    swarms: usize,
    convoys: usize,
}

/// Counts the four pattern kinds per time-of-day regime for one day.
fn count_by_regime(seed: u64, weather: Weather, start_of_day: u32) -> [Counts; 3] {
    let th = thresholds();
    let num_taxis = scaled(900);
    let duration = 1_440u32;
    let day_start = std::time::Instant::now();
    let cs = clustered_day(seed, weather, num_taxis, duration);

    // Baselines.
    let baseline_clustering = ClusteringParams::new(200.0, 5);
    let convoys = discover_convoys_from_clusters(
        &cs.clusters,
        &ConvoyParams::new(th.convoy_m, th.convoy_k, baseline_clustering),
    );
    let swarms = discover_closed_swarms_from_clusters(
        &cs.clusters,
        &SwarmParams::new(th.swarm_m, th.swarm_k, baseline_clustering),
    );

    // Crowds and gatherings via the streaming engine, driven out of core:
    // the day's cluster history goes in as budget-sized batches under
    // bounded retention, finalized patterns spill to a scratch pattern
    // store, and the counts are read back from the store.  Keeps the
    // engine-resident arenas bounded so a full-scale day fits in RAM.
    //
    // With `GPDT_FAULT_SEED` set the same mining runs on the fault-injection
    // VFS instead: the backend is killed mid-run (plus injected short writes
    // and fsync failures), recovered and resumed until completion.  Recovery
    // is byte-identical, so the records — and therefore the BENCH JSON —
    // must equal the fault-free run's; CI diffs the two outputs.
    let budget = env::mem_budget();
    let config = GatheringConfig {
        clustering: cs.clustering,
        crowd: th.crowd,
        gathering: th.gathering,
    };
    let records = if let Some(fault_seed) = env::fault_seed() {
        let (records, incarnations, transient_restarts) =
            mine_under_faults(fault_seed ^ seed, &config, &cs.clusters.into_sets(), budget);
        eprintln!(
            "[fig5] mined one {weather:?} day ({num_taxis} taxis) in {:.1?} under injected \
             faults ({incarnations} incarnations, {transient_restarts} transient restarts, \
             {} records recovered)",
            day_start.elapsed(),
            records.len(),
        );
        records
    } else {
        let mut engine = GatheringEngine::new(config).with_retention(RetentionPolicy::Bounded);
        let store_dir = env::scratch_dir(&format!("fig5-{seed}"));
        let mut store = PatternStore::open(&store_dir).expect("open scratch pattern store");
        let ooc = ingest_bounded(&mut engine, cs.clusters.into_sets(), budget, &mut store)
            .expect("spill finalized patterns");
        store
            .archive_closed_frontier(&engine)
            .expect("archive frontier");
        let records = store.records().to_vec();
        drop(store);
        let _ = std::fs::remove_dir_all(&store_dir);
        // One progress line per simulated day: the full run mines four days
        // and swarm mining dominates, so silence would look like a hang.
        eprintln!(
            "[fig5] mined one {weather:?} day ({num_taxis} taxis) in {:.1?} \
             ({} ingest batches under a {:.0} MiB budget, peak arenas {:.1} MiB, {} records spilled)",
            day_start.elapsed(),
            ooc.batches,
            budget as f64 / (1 << 20) as f64,
            ooc.peak_arena_bytes as f64 / (1 << 20) as f64,
            ooc.spilled_records,
        );
        records
    };
    let crowds: Vec<TimeInterval> = records.iter().map(|r| r.interval()).collect();
    let gatherings: Vec<(TimeInterval, usize)> = records
        .iter()
        .flat_map(|r| {
            r.gatherings
                .iter()
                .map(|g| (g.interval, g.participators.len()))
        })
        .collect();

    let regime_of_interval = |interval: &TimeInterval| -> Regime {
        let mid = start_of_day + (interval.start + interval.end) / 2;
        Regime::for_minute_of_day(mid)
    };
    let mut out = [
        Counts {
            crowds: 0,
            gatherings: 0,
            swarms: 0,
            convoys: 0,
        },
        Counts {
            crowds: 0,
            gatherings: 0,
            swarms: 0,
            convoys: 0,
        },
        Counts {
            crowds: 0,
            gatherings: 0,
            swarms: 0,
            convoys: 0,
        },
    ];
    let idx = |r: Regime| match r {
        Regime::Peak => 0,
        Regime::Work => 1,
        Regime::Casual => 2,
    };
    for interval in &crowds {
        out[idx(regime_of_interval(interval))].crowds += 1;
    }
    for (interval, _) in &gatherings {
        out[idx(regime_of_interval(interval))].gatherings += 1;
    }
    for s in &swarms {
        if let Some(interval) = s.interval() {
            out[idx(regime_of_interval(&interval))].swarms += 1;
        }
    }
    for c in &convoys {
        if let Some(interval) = c.interval() {
            out[idx(regime_of_interval(&interval))].convoys += 1;
        }
    }
    out
}

fn main() {
    // A crash mid-run should leave the supervision-event trail on disk.
    gpdt_obs::install_panic_hook();
    // Serve /metrics + /health when GPDT_METRICS_ADDR is set (no-op without
    // it); the CI byte-compare step holds this to "scraping never changes
    // the report".
    gpdt_obs::telemetry_from_env();
    let seed = 2013;
    let mut report = BenchReport::new("fig5");

    // ---- Figure 5a: patterns per time of day (clear weather) -------------
    let by_regime = count_by_regime(seed, Weather::Clear, 0);
    let mut fig5a = Table::new(
        "Figure 5a — average number of patterns per day vs time of day",
        &[
            "time of day",
            "closed crowds",
            "closed gatherings",
            "closed swarms",
            "convoys",
        ],
    );
    for (i, regime) in Regime::ALL.iter().enumerate() {
        fig5a.add_row(vec![
            regime.to_string(),
            by_regime[i].crowds.to_string(),
            by_regime[i].gatherings.to_string(),
            by_regime[i].swarms.to_string(),
            by_regime[i].convoys.to_string(),
        ]);
    }
    report.print_and_add(fig5a);

    // ---- Figure 5b: patterns per day vs weather ---------------------------
    let mut fig5b = Table::new(
        "Figure 5b — average number of patterns per day vs weather",
        &[
            "weather",
            "closed crowds",
            "closed gatherings",
            "closed swarms",
            "convoys",
        ],
    );
    for (w_i, weather) in Weather::ALL.iter().enumerate() {
        let per_regime = count_by_regime(seed + 1 + w_i as u64, *weather, 0);
        let total = |f: fn(&Counts) -> usize| per_regime.iter().map(f).sum::<usize>();
        fig5b.add_row(vec![
            weather.to_string(),
            total(|c| c.crowds).to_string(),
            total(|c| c.gatherings).to_string(),
            total(|c| c.swarms).to_string(),
            total(|c| c.convoys).to_string(),
        ]);
    }
    report.print_and_add(fig5b);
    report.write_logged();
    // Per-stage latency breakdown (dbscan/sweep/gathering/store/vfs) as a
    // sidecar: BENCH_fig5.json itself is byte-compared across CI runs.
    gpdt_bench::report::write_obs_sidecar("fig5");

    println!(
        "Expected shape (paper): most gatherings in peak time; many crowds but few gatherings in \
         casual time; snowy > rainy > clear for crowds/gatherings; swarms roughly weather-insensitive."
    );
}
