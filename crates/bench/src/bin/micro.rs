//! Microbenchmarks of the hot-path kernels, with before/after ablations.
//!
//! Covers the three paths this repository optimises below the engine level:
//!
//! * **DBSCAN** — the arena-backed CSR-grid implementation
//!   ([`gpdt_clustering::dbscan_with`] with a reused scratch) against the
//!   per-snapshot `HashMap`-grid ablation baseline and the brute-force
//!   oracle.
//! * **`hausdorff_within`** — the grid-bucketed threshold test against the
//!   brute-force pair scan, on cluster pairs near the decision boundary.
//! * **`TickSearcher` construction** — per-tick index build under every
//!   range-search strategy, with the reusable [`SearcherScratch`].
//!
//! Each kernel additionally runs in both point layouts — structure-of-arrays
//! columns ([`gpdt_geo::PointColumns`]) and the interleaved `&[Point]` slice
//! — through the same generic code path, isolating the layout effect.
//!
//! Run with `cargo run -q --release -p gpdt-bench --bin micro`; set
//! `CRITERION_SHIM_ITERS` to raise the per-benchmark iteration count.
//! Results are printed and serialised to `BENCH_micro.json` (honouring
//! `GPDT_BENCH_DIR`), with one speedup row per before/after pair.

use criterion::{black_box, Criterion};
use gpdt_bench::report::{BenchReport, Table};
use gpdt_clustering::dbscan::dbscan_hashgrid;
use gpdt_clustering::{
    dbscan_columns_with, dbscan_with, ClusteringParams, DbscanScratch, SnapshotCluster,
    SnapshotClusterSet,
};
use gpdt_core::{RangeSearchStrategy, SearcherScratch, TickSearcher};
use gpdt_geo::hausdorff::{hausdorff_within_bruteforce_access, hausdorff_within_bucketed_access};
use gpdt_geo::simd::{best_level, KernelDispatch, SimdLevel};
use gpdt_geo::{
    bucketed_pair_cutoff, hausdorff_within_bruteforce, hausdorff_within_bucketed,
    hausdorff_within_views, Point, PointColumns,
};
use gpdt_trajectory::ObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A field of dense blobs, the shape DBSCAN sees in one snapshot.
fn blob_field(rng: &mut StdRng, blobs: usize, per_blob: usize, spread: f64) -> Vec<Point> {
    let mut points = Vec::with_capacity(blobs * per_blob);
    for _ in 0..blobs {
        let cx = rng.gen_range(-10_000.0..10_000.0);
        let cy = rng.gen_range(-10_000.0..10_000.0);
        for _ in 0..per_blob {
            points.push(Point::new(
                cx + rng.gen_range(-spread..spread),
                cy + rng.gen_range(-spread..spread),
            ));
        }
    }
    points
}

/// One blob of `n` points around a centre, for the Hausdorff benches.
fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                cx + rng.gen_range(-spread..spread),
                cy + rng.gen_range(-spread..spread),
            )
        })
        .collect()
}

fn bench_dbscan(c: &mut Criterion, rng: &mut StdRng) {
    let params = ClusteringParams::new(200.0, 5);
    let mut scratch = DbscanScratch::new();
    let mut group = c.benchmark_group("dbscan");
    for &(blobs, per_blob) in &[(12usize, 40usize), (60, 60)] {
        let points = blob_field(rng, blobs, per_blob, 300.0);
        let columns = PointColumns::from_points(&points);
        let n = points.len();
        group.bench_function(format!("csr_arena/{n}"), |b| {
            b.iter(|| dbscan_with(black_box(&points), &params, &mut scratch))
        });
        group.bench_function(format!("csr_arena_soa/{n}"), |b| {
            b.iter(|| dbscan_columns_with(black_box(columns.view()), &params, &mut scratch))
        });
        group.bench_function(format!("hashgrid/{n}"), |b| {
            b.iter(|| dbscan_hashgrid(black_box(&points), &params))
        });
    }
    group.finish();
}

fn bench_hausdorff(c: &mut Criterion, rng: &mut StdRng) {
    let delta = 300.0;
    // The targeted path: large *elongated* clusters (traffic along a road),
    // where each point's δ-neighbours are a tiny fraction of the other set
    // and the pair scan goes quadratic.  The snake length grows with n at
    // fixed point spacing (δ/2, so dH ≤ δ holds and neither side exits
    // early); points are shuffled so the scan cannot ride insertion-order
    // locality.
    let mut snake = |n: usize, y0: f64| -> Vec<Point> {
        let spacing = delta / 2.0;
        let mut pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as f64 * spacing + rng.gen_range(-40.0..40.0),
                    y0 + rng.gen_range(-40.0..40.0),
                )
            })
            .collect();
        // Fisher–Yates shuffle.
        for i in (1..pts.len()).rev() {
            pts.swap(i, rng.gen_range(0..i + 1));
        }
        pts
    };
    let mut group = c.benchmark_group("hausdorff_within");
    for &n in &[512usize, 2048] {
        let p = snake(n, 0.0);
        let q = snake(n, 100.0);
        let (pc, qc) = (PointColumns::from_points(&p), PointColumns::from_points(&q));
        group.bench_function(format!("bucketed/{n}"), |b| {
            b.iter(|| hausdorff_within_bucketed(black_box(&p), black_box(&q), delta))
        });
        group.bench_function(format!("bucketed_soa/{n}"), |b| {
            b.iter(|| {
                hausdorff_within_bucketed_access(black_box(pc.view()), black_box(qc.view()), delta)
            })
        });
        group.bench_function(format!("bruteforce/{n}"), |b| {
            b.iter(|| hausdorff_within_bruteforce(black_box(&p), black_box(&q), delta))
        });
        group.bench_function(format!("bruteforce_soa/{n}"), |b| {
            b.iter(|| {
                hausdorff_within_bruteforce_access(
                    black_box(pc.view()),
                    black_box(qc.view()),
                    delta,
                )
            })
        });
        // The production entry point: picks bucketed vs brute by the
        // calibrated pair-count cutoff.
        group.bench_function(format!("dispatched_soa/{n}"), |b| {
            b.iter(|| hausdorff_within_views(black_box(pc.view()), black_box(qc.view()), delta))
        });
    }
    group.finish();
}

/// The three SIMD kernel families, scalar vs the best detected level, fed
/// the same columns through explicit [`KernelDispatch`] tables (so the
/// global `GPDT_SIMD` resolution cannot skew the comparison).
fn bench_simd_kernels(c: &mut Criterion, rng: &mut StdRng) {
    let scalar = KernelDispatch::for_level(SimdLevel::Scalar).expect("scalar always available");
    let best = KernelDispatch::for_level(best_level()).expect("best level is detected");
    let mut group = c.benchmark_group("simd");
    for &n in &[512usize, 4096] {
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1_000.0..1_000.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.gen_range(-1_000.0..1_000.0)).collect();
        let ids: Vec<u32> = (0..n as u32).collect();
        // ~¼ of the points inside the radius: matches kept common but not
        // dominant, like a DBSCAN ε-scan over a 3×3 cell block.
        let r_sq = 500.0 * 500.0;
        for (label, d) in [("scalar", scalar), (best_level().label(), best)] {
            let mut out: Vec<u32> = Vec::with_capacity(n);
            group.bench_function(format!("neighbor_scan/{label}/{n}"), |b| {
                b.iter(|| {
                    out.clear();
                    d.filter_within(
                        black_box(&xs),
                        black_box(&ys),
                        &ids,
                        13.0,
                        -27.0,
                        r_sq,
                        &mut out,
                    );
                    out.len()
                })
            });
            group.bench_function(format!("hausdorff_min/{label}/{n}"), |b| {
                b.iter(|| {
                    d.min_dist_sq_bounded(
                        black_box(&xs),
                        black_box(&ys),
                        13.0,
                        -27.0,
                        f64::NEG_INFINITY,
                    )
                })
            });
            group.bench_function(format!("mbr_centroid/{label}/{n}"), |b| {
                b.iter(|| {
                    let mm_x = d.column_min_max(black_box(&xs));
                    let mm_y = d.column_min_max(black_box(&ys));
                    let sx = d.column_sum(black_box(&xs));
                    let sy = d.column_sum(black_box(&ys));
                    (mm_x, mm_y, sx, sy)
                })
            });
        }
    }
    group.finish();
}

fn bench_tick_searcher(c: &mut Criterion, rng: &mut StdRng) {
    let delta = 300.0;
    let clusters: Vec<SnapshotCluster> = (0..48)
        .map(|i| {
            let (cx, cy) = (
                rng.gen_range(-8_000.0..8_000.0),
                rng.gen_range(-8_000.0..8_000.0),
            );
            let pts = blob(rng, cx, cy, 30, 200.0);
            let members = (0..pts.len() as u32)
                .map(|k| ObjectId::new(i * 1_000 + k))
                .collect();
            SnapshotCluster::new(0, members, pts)
        })
        .collect();
    let set = SnapshotClusterSet { time: 0, clusters };
    let mut scratch = SearcherScratch::new();
    let mut group = c.benchmark_group("tick_searcher_build");
    for strategy in RangeSearchStrategy::ALL {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| TickSearcher::build_with(strategy, black_box(&set), delta, &mut scratch))
        });
    }
    group.finish();

    // The grid index build in both layouts: the tick's shared column arena
    // (what `TickSearcher` feeds it) against materialised `Vec<Point>`
    // rows, through the same generic build.
    let views: Vec<gpdt_geo::PointsView<'_>> = set.clusters.iter().map(|c| c.points()).collect();
    let rows: Vec<Vec<Point>> = views.iter().map(|v| v.to_points()).collect();
    let geometry = gpdt_geo::GridGeometry::for_delta(delta);
    let mut grid_scratch = gpdt_index::GridBuildScratch::default();
    let mut group = c.benchmark_group("grid_index_build");
    group.bench_function("soa", |b| {
        b.iter(|| {
            gpdt_index::GridClusterIndex::build_access(
                geometry,
                black_box(&views),
                &mut grid_scratch,
            )
        })
    });
    group.bench_function("aos", |b| {
        b.iter(|| {
            gpdt_index::GridClusterIndex::build_with(geometry, black_box(&rows), &mut grid_scratch)
        })
    });
    group.finish();
}

/// Mean time of the report entry whose name starts with `prefix`, in ns.
fn mean_ns(c: &Criterion, prefix: &str) -> Option<f64> {
    c.reports()
        .iter()
        .find(|(name, _)| name.starts_with(prefix))
        .map(|(_, d)| d.as_nanos() as f64)
}

/// Interleaved min-of-rounds timing of both single `hausdorff_within`
/// strategies and the dispatched entry point, on the benchmark's snake
/// shape.  Each round times one call of each path back to back, and every
/// path keeps its best round: a load spike hits all three paths of a round
/// equally, so the comparison stays honest where sequential means do not.
fn time_dispatch_tracking(rng: &mut StdRng, n: usize) -> (f64, f64, f64) {
    use std::time::Instant;
    let delta = 300.0;
    let spacing = delta / 2.0;
    let mut snake = |y0: f64| -> Vec<Point> {
        let mut pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as f64 * spacing + rng.gen_range(-40.0..40.0),
                    y0 + rng.gen_range(-40.0..40.0),
                )
            })
            .collect();
        for i in (1..pts.len()).rev() {
            pts.swap(i, rng.gen_range(0..i + 1));
        }
        pts
    };
    let p = snake(0.0);
    let q = snake(100.0);
    let (pc, qc) = (PointColumns::from_points(&p), PointColumns::from_points(&q));
    let mut best = [u128::MAX; 3];
    // One untimed round to warm caches, the allocator, and the calibration
    // `OnceLock`; then the timed rounds.
    for round in 0..10 {
        let t = Instant::now();
        black_box(hausdorff_within_bucketed_access(
            black_box(pc.view()),
            black_box(qc.view()),
            delta,
        ));
        let bucketed = t.elapsed().as_nanos();
        let t = Instant::now();
        black_box(hausdorff_within_bruteforce_access(
            black_box(pc.view()),
            black_box(qc.view()),
            delta,
        ));
        let brute = t.elapsed().as_nanos();
        let t = Instant::now();
        black_box(hausdorff_within_views(
            black_box(pc.view()),
            black_box(qc.view()),
            delta,
        ));
        let dispatched = t.elapsed().as_nanos();
        if round > 0 {
            best[0] = best[0].min(bucketed);
            best[1] = best[1].min(brute);
            best[2] = best[2].min(dispatched);
        }
    }
    (best[0] as f64, best[1] as f64, best[2] as f64)
}

/// Interleaved min-of-rounds timing of one span-instrumented stage with the
/// observability gate forced on vs off.  The stage is a real kernel (DBSCAN
/// over a blob field) behind a [`gpdt_obs::span!`], so the measured delta is
/// exactly what instrumentation adds to a hot path: one gate load when off,
/// one `Instant` pair plus a histogram record when on.  Returns
/// `(on_ns, off_ns)` best-of-rounds; the caller restores the gate.
fn time_obs_ablation(rng: &mut StdRng) -> (f64, f64) {
    use std::time::Instant;
    let params = ClusteringParams::new(200.0, 5);
    let mut scratch = DbscanScratch::new();
    let points = blob_field(rng, 60, 60, 300.0);
    let columns = PointColumns::from_points(&points);
    let mut stage = || {
        let _span = gpdt_obs::span!("micro.obs_probe");
        black_box(dbscan_columns_with(
            black_box(columns.view()),
            &params,
            &mut scratch,
        ))
    };
    let mut best = [u128::MAX; 2];
    for round in 0..12 {
        gpdt_obs::set_enabled(true);
        let t = Instant::now();
        for _ in 0..4 {
            stage();
        }
        let on = t.elapsed().as_nanos();
        gpdt_obs::set_enabled(false);
        let t = Instant::now();
        for _ in 0..4 {
            stage();
        }
        let off = t.elapsed().as_nanos();
        if round > 0 {
            best[0] = best[0].min(on);
            best[1] = best[1].min(off);
        }
    }
    (best[0] as f64 / 4.0, best[1] as f64 / 4.0)
}

/// The worst-case variant of [`time_obs_ablation`]: the same interleaved
/// timing, but with the whole telemetry plane live — the windowed sampler at
/// a 10ms cadence (25x the default), the HTTP responder bound on loopback,
/// and a scraper thread hammering `/metrics` with ~200µs pauses.  The
/// sampler and scraper run through BOTH phases so their load is symmetric;
/// the on/off ratio therefore still isolates what the gate adds to the
/// instrumented hot path, now while the registry is being snapshotted and
/// served concurrently.
fn time_obs_ablation_scraped(rng: &mut StdRng) -> (f64, f64) {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let sampler = gpdt_obs::Sampler::start(
        Duration::from_millis(10),
        gpdt_obs::registry(),
        None,
        gpdt_obs::flight(),
    );
    let server = gpdt_obs::TelemetryServer::bind("127.0.0.1:0", gpdt_obs::ServeContext::global())
        .expect("binding a loopback port for the scrape ablation");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scraper_stop = Arc::clone(&stop);
    let scraper = std::thread::spawn(move || {
        let mut body = String::new();
        while !scraper_stop.load(Ordering::Relaxed) {
            if let Ok(mut s) = TcpStream::connect(addr) {
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                let _ = s.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n");
                body.clear();
                let _ = s.read_to_string(&mut body);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    let result = time_obs_ablation(rng);
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("the scraper thread never panics");
    drop(server);
    drop(sampler);
    result
}

fn main() {
    let mut criterion = Criterion::default();
    let mut rng = StdRng::seed_from_u64(2013);
    bench_dbscan(&mut criterion, &mut rng);
    bench_hausdorff(&mut criterion, &mut rng);
    bench_tick_searcher(&mut criterion, &mut rng);
    bench_simd_kernels(&mut criterion, &mut rng);

    let mut report = BenchReport::new("micro");
    let mut results = Table::new("Microbenchmarks — mean ns per iteration", &["bench", "ns"]);
    for (name, mean) in criterion.reports() {
        results.add_row(vec![name.clone(), format!("{}", mean.as_nanos())]);
    }
    report.print_and_add(results);

    let mut speedups = Table::new(
        "Targeted-path speedups (baseline / optimised)",
        &["path", "speedup"],
    );
    for (path, fast, slow) in [
        (
            "dbscan (small)",
            "dbscan/csr_arena/480",
            "dbscan/hashgrid/480",
        ),
        (
            "dbscan (large)",
            "dbscan/csr_arena/3600",
            "dbscan/hashgrid/3600",
        ),
        // The production entry point (calibrated dispatch over the SIMD
        // kernels) against the scalar AoS pair scan it replaces.  The old
        // `bucketed vs bruteforce` pair regressed to 0.84x at n=512 once the
        // brute scan was vectorised; the dispatched path cannot, because the
        // calibration picks whichever kernel is faster here.
        (
            "hausdorff_within (512)",
            "hausdorff_within/dispatched_soa/512",
            "hausdorff_within/bruteforce/512",
        ),
        (
            "hausdorff_within (2048)",
            "hausdorff_within/dispatched_soa/2048",
            "hausdorff_within/bruteforce/2048",
        ),
    ] {
        if let (Some(f), Some(s)) = (mean_ns(&criterion, fast), mean_ns(&criterion, slow)) {
            speedups.add_row(vec![path.to_string(), format!("{:.2}x", s / f)]);
        }
    }
    report.print_and_add(speedups);

    // Layout ablation: the same generic kernel fed columns vs interleaved
    // points.  >1.00x means the columnar layout is faster.
    let mut layout = Table::new(
        "SoA vs AoS layout delta (aos ns / soa ns)",
        &["kernel", "delta"],
    );
    for (kernel, soa, aos) in [
        (
            "dbscan (small)",
            "dbscan/csr_arena_soa/480",
            "dbscan/csr_arena/480",
        ),
        (
            "dbscan (large)",
            "dbscan/csr_arena_soa/3600",
            "dbscan/csr_arena/3600",
        ),
        (
            "hausdorff_within (512)",
            "hausdorff_within/bucketed_soa/512",
            "hausdorff_within/bucketed/512",
        ),
        (
            "hausdorff_within (2048)",
            "hausdorff_within/bucketed_soa/2048",
            "hausdorff_within/bucketed/2048",
        ),
        (
            "grid index build",
            "grid_index_build/soa",
            "grid_index_build/aos",
        ),
    ] {
        if let (Some(s), Some(a)) = (mean_ns(&criterion, soa), mean_ns(&criterion, aos)) {
            layout.add_row(vec![kernel.to_string(), format!("{:.2}x", a / s)]);
        }
    }
    report.print_and_add(layout);

    // Kernel-level SIMD ablation: the same columns through the scalar table
    // and the best detected level's table.  >1.00x means SIMD is faster.
    let best = best_level().label();
    let mut simd = Table::new(
        "SIMD vs scalar (scalar ns / simd ns)",
        &["kernel", "speedup"],
    );
    simd.add_row(vec!["level".to_string(), best.to_string()]);
    for &n in &[512usize, 4096] {
        for kernel in ["neighbor_scan", "hausdorff_min", "mbr_centroid"] {
            if let (Some(s), Some(v)) = (
                mean_ns(&criterion, &format!("simd/{kernel}/scalar/{n}")),
                mean_ns(&criterion, &format!("simd/{kernel}/{best}/{n}")),
            ) {
                simd.add_row(vec![format!("{kernel} ({n})"), format!("{:.2}x", s / v)]);
            }
        }
    }
    report.print_and_add(simd);

    // The calibrated bucketed-vs-brute crossover, plus the guard the
    // calibration exists to enforce: the dispatched `hausdorff_within` path
    // must track the best single strategy (≤ 5% overhead) at every
    // benchmarked size — the n=512 regression of the hardcoded cutoff.
    //
    // The guard times the three paths itself, interleaved, instead of
    // comparing the shim means above: the shim runs each benchmark in its
    // own contiguous window, and on a loaded single-core host two windows
    // minutes apart drift by more than the 5% bound even for *the same*
    // kernel.  One call of each path per round with min-of-rounds cancels
    // that drift.
    let mut calib = Table::new("Hausdorff dispatch calibration", &["quantity", "value"]);
    calib.add_row(vec![
        "bucketed_pair_cutoff (pairs)".to_string(),
        bucketed_pair_cutoff().to_string(),
    ]);
    for &n in &[512usize, 2048] {
        let (bucketed, brute, dispatched) = time_dispatch_tracking(&mut rng, n);
        let best_single = bucketed.min(brute);
        calib.add_row(vec![
            format!("bucketed / brute / dispatched ({n}), ns"),
            format!("{bucketed:.0} / {brute:.0} / {dispatched:.0}"),
        ]);
        calib.add_row(vec![
            format!("dispatched vs best single ({n})"),
            format!("{:.2}x", dispatched / best_single),
        ]);
        assert!(
            dispatched <= best_single * 1.05,
            "dispatched hausdorff_within at n={n} is {:.1}% slower than the best \
             single strategy ({dispatched:.0} ns vs {best_single:.0} ns; \
             cutoff {} pairs) — calibration picked the wrong kernel",
            (dispatched / best_single - 1.0) * 100.0,
            bucketed_pair_cutoff(),
        );
    }
    report.print_and_add(calib);

    // The calibration probe curve recorded by `gpdt_geo::hausdorff` when the
    // cutoff is resolved by timing (one gauge per probed size, brute and
    // bucketed): makes the decision data inspectable from BENCH_micro.json
    // instead of requiring a rerun under a debugger.  Empty when the cutoff
    // was pinned via `GPDT_HAUSDORFF_CUTOFF` or observability is off.
    let mut probes = Table::new(
        "Hausdorff calibration probes (registry gauges)",
        &["gauge", "value"],
    );
    for (name, value) in &gpdt_obs::registry().snapshot().gauges {
        if name.starts_with("hausdorff.") {
            probes.add_row(vec![name.clone(), value.to_string()]);
        }
    }
    report.print_and_add(probes);

    // Observability-overhead gate: a span-instrumented kernel with GPDT_OBS
    // forced on must stay within 5% of the same kernel with it off.  Same
    // interleaved min-of-rounds idiom as the dispatch guard above.  The
    // second round is the worst case: the full telemetry plane live —
    // sampler at 10ms, HTTP endpoint bound, a concurrent /metrics scraper —
    // held to the same ceiling.
    let obs_was_enabled = gpdt_obs::enabled();
    let (obs_on, obs_off) = time_obs_ablation(&mut rng);
    let (scr_on, scr_off) = time_obs_ablation_scraped(&mut rng);
    gpdt_obs::set_enabled(obs_was_enabled);
    let mut obs = Table::new(
        "Observability overhead (GPDT_OBS ablation)",
        &["quantity", "value"],
    );
    obs.add_row(vec![
        "instrumented dbscan, obs on / off (ns)".to_string(),
        format!("{obs_on:.0} / {obs_off:.0}"),
    ]);
    obs.add_row(vec![
        "on vs off".to_string(),
        format!("{:.3}x", obs_on / obs_off),
    ]);
    obs.add_row(vec![
        "under 10ms sampler + live scraper, on / off (ns)".to_string(),
        format!("{scr_on:.0} / {scr_off:.0}"),
    ]);
    obs.add_row(vec![
        "on vs off (scraped)".to_string(),
        format!("{:.3}x", scr_on / scr_off),
    ]);
    report.print_and_add(obs);
    assert!(
        obs_on <= obs_off * 1.05,
        "observability-on run is {:.1}% slower than observability-off \
         ({obs_on:.0} ns vs {obs_off:.0} ns) — the span/registry hot path \
         regressed past the 5% budget",
        (obs_on / obs_off - 1.0) * 100.0,
    );
    assert!(
        scr_on <= scr_off * 1.05,
        "observability-on run under an active sampler and scraper is {:.1}% \
         slower than observability-off under the same load ({scr_on:.0} ns \
         vs {scr_off:.0} ns) — snapshotting or serving the registry now \
         perturbs the instrumented hot path past the 5% budget",
        (scr_on / scr_off - 1.0) * 100.0,
    );

    report.write_logged();
    gpdt_bench::report::write_obs_sidecar("micro");
}
