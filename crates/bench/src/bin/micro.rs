//! Microbenchmarks of the hot-path kernels, with before/after ablations.
//!
//! Covers the three paths this repository optimises below the engine level:
//!
//! * **DBSCAN** — the arena-backed CSR-grid implementation
//!   ([`gpdt_clustering::dbscan_with`] with a reused scratch) against the
//!   per-snapshot `HashMap`-grid ablation baseline and the brute-force
//!   oracle.
//! * **`hausdorff_within`** — the grid-bucketed threshold test against the
//!   brute-force pair scan, on cluster pairs near the decision boundary.
//! * **`TickSearcher` construction** — per-tick index build under every
//!   range-search strategy, with the reusable [`SearcherScratch`].
//!
//! Each kernel additionally runs in both point layouts — structure-of-arrays
//! columns ([`gpdt_geo::PointColumns`]) and the interleaved `&[Point]` slice
//! — through the same generic code path, isolating the layout effect.
//!
//! Run with `cargo run -q --release -p gpdt-bench --bin micro`; set
//! `CRITERION_SHIM_ITERS` to raise the per-benchmark iteration count.
//! Results are printed and serialised to `BENCH_micro.json` (honouring
//! `GPDT_BENCH_DIR`), with one speedup row per before/after pair.

use criterion::{black_box, Criterion};
use gpdt_bench::report::{BenchReport, Table};
use gpdt_clustering::dbscan::dbscan_hashgrid;
use gpdt_clustering::{
    dbscan_columns_with, dbscan_with, ClusteringParams, DbscanScratch, SnapshotCluster,
    SnapshotClusterSet,
};
use gpdt_core::{RangeSearchStrategy, SearcherScratch, TickSearcher};
use gpdt_geo::{
    hausdorff_within_bruteforce, hausdorff_within_bucketed, hausdorff_within_views, Point,
    PointColumns,
};
use gpdt_trajectory::ObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A field of dense blobs, the shape DBSCAN sees in one snapshot.
fn blob_field(rng: &mut StdRng, blobs: usize, per_blob: usize, spread: f64) -> Vec<Point> {
    let mut points = Vec::with_capacity(blobs * per_blob);
    for _ in 0..blobs {
        let cx = rng.gen_range(-10_000.0..10_000.0);
        let cy = rng.gen_range(-10_000.0..10_000.0);
        for _ in 0..per_blob {
            points.push(Point::new(
                cx + rng.gen_range(-spread..spread),
                cy + rng.gen_range(-spread..spread),
            ));
        }
    }
    points
}

/// One blob of `n` points around a centre, for the Hausdorff benches.
fn blob(rng: &mut StdRng, cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                cx + rng.gen_range(-spread..spread),
                cy + rng.gen_range(-spread..spread),
            )
        })
        .collect()
}

fn bench_dbscan(c: &mut Criterion, rng: &mut StdRng) {
    let params = ClusteringParams::new(200.0, 5);
    let mut scratch = DbscanScratch::new();
    let mut group = c.benchmark_group("dbscan");
    for &(blobs, per_blob) in &[(12usize, 40usize), (60, 60)] {
        let points = blob_field(rng, blobs, per_blob, 300.0);
        let columns = PointColumns::from_points(&points);
        let n = points.len();
        group.bench_function(format!("csr_arena/{n}"), |b| {
            b.iter(|| dbscan_with(black_box(&points), &params, &mut scratch))
        });
        group.bench_function(format!("csr_arena_soa/{n}"), |b| {
            b.iter(|| dbscan_columns_with(black_box(columns.view()), &params, &mut scratch))
        });
        group.bench_function(format!("hashgrid/{n}"), |b| {
            b.iter(|| dbscan_hashgrid(black_box(&points), &params))
        });
    }
    group.finish();
}

fn bench_hausdorff(c: &mut Criterion, rng: &mut StdRng) {
    let delta = 300.0;
    // The targeted path: large *elongated* clusters (traffic along a road),
    // where each point's δ-neighbours are a tiny fraction of the other set
    // and the pair scan goes quadratic.  The snake length grows with n at
    // fixed point spacing (δ/2, so dH ≤ δ holds and neither side exits
    // early); points are shuffled so the scan cannot ride insertion-order
    // locality.
    let mut snake = |n: usize, y0: f64| -> Vec<Point> {
        let spacing = delta / 2.0;
        let mut pts: Vec<Point> = (0..n)
            .map(|i| {
                Point::new(
                    i as f64 * spacing + rng.gen_range(-40.0..40.0),
                    y0 + rng.gen_range(-40.0..40.0),
                )
            })
            .collect();
        // Fisher–Yates shuffle.
        for i in (1..pts.len()).rev() {
            pts.swap(i, rng.gen_range(0..i + 1));
        }
        pts
    };
    let mut group = c.benchmark_group("hausdorff_within");
    for &n in &[512usize, 2048] {
        let p = snake(n, 0.0);
        let q = snake(n, 100.0);
        let (pc, qc) = (PointColumns::from_points(&p), PointColumns::from_points(&q));
        group.bench_function(format!("bucketed/{n}"), |b| {
            b.iter(|| hausdorff_within_bucketed(black_box(&p), black_box(&q), delta))
        });
        group.bench_function(format!("bucketed_soa/{n}"), |b| {
            b.iter(|| hausdorff_within_views(black_box(pc.view()), black_box(qc.view()), delta))
        });
        group.bench_function(format!("bruteforce/{n}"), |b| {
            b.iter(|| hausdorff_within_bruteforce(black_box(&p), black_box(&q), delta))
        });
    }
    group.finish();
}

fn bench_tick_searcher(c: &mut Criterion, rng: &mut StdRng) {
    let delta = 300.0;
    let clusters: Vec<SnapshotCluster> = (0..48)
        .map(|i| {
            let (cx, cy) = (
                rng.gen_range(-8_000.0..8_000.0),
                rng.gen_range(-8_000.0..8_000.0),
            );
            let pts = blob(rng, cx, cy, 30, 200.0);
            let members = (0..pts.len() as u32)
                .map(|k| ObjectId::new(i * 1_000 + k))
                .collect();
            SnapshotCluster::new(0, members, pts)
        })
        .collect();
    let set = SnapshotClusterSet { time: 0, clusters };
    let mut scratch = SearcherScratch::new();
    let mut group = c.benchmark_group("tick_searcher_build");
    for strategy in RangeSearchStrategy::ALL {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| TickSearcher::build_with(strategy, black_box(&set), delta, &mut scratch))
        });
    }
    group.finish();

    // The grid index build in both layouts: the tick's shared column arena
    // (what `TickSearcher` feeds it) against materialised `Vec<Point>`
    // rows, through the same generic build.
    let views: Vec<gpdt_geo::PointsView<'_>> = set.clusters.iter().map(|c| c.points()).collect();
    let rows: Vec<Vec<Point>> = views.iter().map(|v| v.to_points()).collect();
    let geometry = gpdt_geo::GridGeometry::for_delta(delta);
    let mut grid_scratch = gpdt_index::GridBuildScratch::default();
    let mut group = c.benchmark_group("grid_index_build");
    group.bench_function("soa", |b| {
        b.iter(|| {
            gpdt_index::GridClusterIndex::build_access(
                geometry,
                black_box(&views),
                &mut grid_scratch,
            )
        })
    });
    group.bench_function("aos", |b| {
        b.iter(|| {
            gpdt_index::GridClusterIndex::build_with(geometry, black_box(&rows), &mut grid_scratch)
        })
    });
    group.finish();
}

/// Mean time of the report entry whose name starts with `prefix`, in ns.
fn mean_ns(c: &Criterion, prefix: &str) -> Option<f64> {
    c.reports()
        .iter()
        .find(|(name, _)| name.starts_with(prefix))
        .map(|(_, d)| d.as_nanos() as f64)
}

fn main() {
    let mut criterion = Criterion::default();
    let mut rng = StdRng::seed_from_u64(2013);
    bench_dbscan(&mut criterion, &mut rng);
    bench_hausdorff(&mut criterion, &mut rng);
    bench_tick_searcher(&mut criterion, &mut rng);

    let mut report = BenchReport::new("micro");
    let mut results = Table::new("Microbenchmarks — mean ns per iteration", &["bench", "ns"]);
    for (name, mean) in criterion.reports() {
        results.add_row(vec![name.clone(), format!("{}", mean.as_nanos())]);
    }
    report.print_and_add(results);

    let mut speedups = Table::new(
        "Targeted-path speedups (baseline / optimised)",
        &["path", "speedup"],
    );
    for (path, fast, slow) in [
        (
            "dbscan (small)",
            "dbscan/csr_arena/480",
            "dbscan/hashgrid/480",
        ),
        (
            "dbscan (large)",
            "dbscan/csr_arena/3600",
            "dbscan/hashgrid/3600",
        ),
        (
            "hausdorff_within (512)",
            "hausdorff_within/bucketed/512",
            "hausdorff_within/bruteforce/512",
        ),
        (
            "hausdorff_within (2048)",
            "hausdorff_within/bucketed/2048",
            "hausdorff_within/bruteforce/2048",
        ),
    ] {
        if let (Some(f), Some(s)) = (mean_ns(&criterion, fast), mean_ns(&criterion, slow)) {
            speedups.add_row(vec![path.to_string(), format!("{:.2}x", s / f)]);
        }
    }
    report.print_and_add(speedups);

    // Layout ablation: the same generic kernel fed columns vs interleaved
    // points.  >1.00x means the columnar layout is faster.
    let mut layout = Table::new(
        "SoA vs AoS layout delta (aos ns / soa ns)",
        &["kernel", "delta"],
    );
    for (kernel, soa, aos) in [
        (
            "dbscan (small)",
            "dbscan/csr_arena_soa/480",
            "dbscan/csr_arena/480",
        ),
        (
            "dbscan (large)",
            "dbscan/csr_arena_soa/3600",
            "dbscan/csr_arena/3600",
        ),
        (
            "hausdorff_within (512)",
            "hausdorff_within/bucketed_soa/512",
            "hausdorff_within/bucketed/512",
        ),
        (
            "hausdorff_within (2048)",
            "hausdorff_within/bucketed_soa/2048",
            "hausdorff_within/bucketed/2048",
        ),
        (
            "grid index build",
            "grid_index_build/soa",
            "grid_index_build/aos",
        ),
    ] {
        if let (Some(s), Some(a)) = (mean_ns(&criterion, soa), mean_ns(&criterion, aos)) {
            layout.add_row(vec![kernel.to_string(), format!("{:.2}x", a / s)]);
        }
    }
    report.print_and_add(layout);
    report.write_logged();
}
