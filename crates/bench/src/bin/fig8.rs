//! Figure 8 — incremental maintenance vs re-computation.
//!
//! * Figure 8a: closed-crowd discovery cost as the database grows day by day
//!   — re-computation from scratch vs the crowd-extension algorithm that
//!   resumes from the saved frontier (Lemma 4).
//! * Figure 8b: closed-gathering detection on an extended crowd — TAD\* from
//!   scratch vs the gathering-update algorithm (Theorem 2) as a function of
//!   the ratio `r` between the old and the extended crowd length.
//!
//! Run with `cargo run -p gpdt-bench --release --bin fig8`.  The "day" is
//! scaled down (default 120 minutes per appended batch, `GPDT_SCALE` to
//! adjust); the claim reproduced is the *shape*: re-computation grows with
//! the time domain while the incremental algorithms stay flat / improve with
//! larger reusable prefixes.

use gpdt_bench::report::{measure, measure_with, secs, BenchReport, MeasureOpts, Table};
use gpdt_bench::scenarios::{clustered_scenario, scaled};
use gpdt_bench::synth::{synthetic_crowd, SyntheticCrowdSpec};
use gpdt_clustering::ClusterDatabase;
use gpdt_core::incremental::update_gatherings;
use gpdt_core::{
    detect_closed_gatherings, CrowdDiscovery, CrowdParams, GatheringConfig, GatheringEngine,
    GatheringParams, RangeSearchStrategy, TadVariant,
};
use gpdt_trajectory::TimeInterval;

fn main() {
    let mut report = BenchReport::new("fig8");
    fig8a(&mut report);
    fig8b(&mut report);
    report.write_logged();
    println!(
        "Expected shape (paper): re-computation cost grows with the accumulated time domain while \
         crowd extension stays roughly constant; the gathering-update algorithm gets faster as the \
         old crowd occupies a larger fraction r of the extended crowd, while re-computation is flat."
    );
}

/// Figure 8a: crowd discovery while appending batches ("days") one at a time.
fn fig8a(report: &mut BenchReport) {
    let taxis = scaled(600);
    let day_minutes = 120u32;
    let days = 5u32;
    let crowd_params = CrowdParams::new(15, 20, 300.0);
    let gathering_params = GatheringParams::new(10, 15);

    // One long scenario, split into per-day cluster batches.
    let total = clustered_scenario(7, taxis, day_minutes * days);
    let batches: Vec<ClusterDatabase> = (0..days)
        .map(|d| {
            let interval = TimeInterval::new(d * day_minutes, (d + 1) * day_minutes - 1);
            ClusterDatabase::build_interval(&total.scenario.database, &total.clustering, interval)
        })
        .collect();

    let mut table = Table::new(
        "Figure 8a — crowd discovery runtime (s) per update vs accumulated days",
        &["|TDB| (days)", "re-computation", "crowd extension"],
    );

    let mut engine = GatheringEngine::new(GatheringConfig {
        clustering: total.clustering,
        crowd: crowd_params,
        gathering: gathering_params,
    });
    let mut accumulated = ClusterDatabase::new();
    for (day, batch) in batches.into_iter().enumerate() {
        // Re-computation: run Algorithm 1 over the whole accumulated domain.
        if accumulated.is_empty() {
            accumulated = batch.clone();
        } else {
            accumulated.append(batch.clone());
        }
        let discovery = CrowdDiscovery::new(crowd_params, RangeSearchStrategy::Grid);
        let (recomputed, recompute_time) = measure(|| discovery.run(&accumulated));
        // Crowd extension: the engine resumes from its saved frontier.
        let (update, extension_time) = measure(|| engine.ingest_clusters(batch));
        let _ = (recomputed.closed_crowds.len(), update.new_closed_crowds);
        table.add_row(vec![
            (day + 1).to_string(),
            secs(recompute_time),
            secs(extension_time),
        ]);
    }
    report.print_and_add(table);
}

/// Figure 8b: gathering update vs re-computation on extended crowds.
fn fig8b(report: &mut BenchReport) {
    let kc = 8u32;
    let params = GatheringParams::new(8, 10);
    let new_length = 200usize;
    let crowds_per_point = scaled(60);

    let mut table = Table::new(
        "Figure 8b — gathering detection runtime (s) on extended crowds vs ratio r",
        &["r", "re-computation", "gathering update"],
    );
    for r in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let old_len = ((new_length as f64) * r).round().max(1.0) as usize;
        let mut recompute_total = std::time::Duration::ZERO;
        let mut update_total = std::time::Duration::ZERO;
        for i in 0..crowds_per_point {
            // Long crowds with frequent disruptions: Test-and-Divide has to
            // recurse many times, which is exactly the work Theorem 2 lets
            // the update skip for the reusable prefix.
            let spec = SyntheticCrowdSpec {
                seed: 1_000 + i as u64,
                length: new_length,
                dedicated: 30,
                dedication: 0.8,
                churn_per_cluster: 15,
                disruption: 0.1,
            };
            let (cdb, crowd) = synthetic_crowd(&spec);
            let old_crowd = crowd.sub_crowd(0, old_len);
            let old_gatherings =
                detect_closed_gatherings(&old_crowd, &cdb, &params, kc, TadVariant::TadStar);

            let opts = MeasureOpts::from_env();
            let (_, recompute) = measure_with(opts, || {
                detect_closed_gatherings(&crowd, &cdb, &params, kc, TadVariant::TadStar)
            });
            let (_, update) = measure_with(opts, || {
                update_gatherings(
                    &crowd,
                    &cdb,
                    old_len,
                    &old_gatherings,
                    &params,
                    kc,
                    TadVariant::TadStar,
                )
            });
            recompute_total += recompute;
            update_total += update;
        }
        table.add_row(vec![
            format!("{r:.1}"),
            secs(recompute_total),
            secs(update_total),
        ]);
    }
    report.print_and_add(table);
}
