//! Deterministic crash-lattice sweeps over the fault-injection VFS.
//!
//! The durability claim of the resilient ingest pipeline is absolute: *kill
//! the storage backend at any mutating operation, reboot, resume — the
//! recovered store is byte-identical to an uninterrupted run*.  This module
//! turns that claim into a sweep that can be run both as a test
//! (`tests/fault_recovery.rs`) and as a CI job (`cargo run -p gpdt-bench
//! --bin fault`):
//!
//! 1. [`reference_run`] executes the workload on a fault-free
//!    [`FaultVfs`] and snapshots every segment file plus the total count of
//!    mutating VFS operations — the size of the kill lattice.
//! 2. [`crash_lattice`] replays the same workload once per kill point.
//!    Each point arms `kill_at = k`, drives incarnations of
//!    [`ingest_resilient`] in a loop —
//!    crash, [`FaultVfs::crash_recover`], restore the persisted
//!    [`ResilientCursor`], resume — until one incarnation completes, then
//!    compares the surviving segment bytes against the reference.
//!
//! Transient faults (short writes, failed fsyncs) can be layered on top;
//! the incarnation loop treats a transient error like a supervised process
//! restart (reload the cursor, try again) and counts it separately.
//!
//! Everything is seeded: a failing sweep is reproduced by re-running with
//! the seed it prints.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpdt_clustering::{ClusterDatabase, SnapshotClusterSet};
use gpdt_core::{
    ClusteringParams, CrowdParams, GatheringConfig, GatheringEngine, GatheringParams,
    RetentionPolicy,
};
use gpdt_store::{
    read_file_opt, restore_from_slice, write_file_atomic, FaultPlan, FaultVfs, PatternStore,
    StoreError, StoreOptions, Vfs,
};
use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};

use crate::out_of_core::{ingest_resilient, ResilientCursor};

/// Virtual store directory inside the fault VFS.
const STORE_DIR: &str = "/lattice/store";
/// Virtual path of the persisted resume cursor.
const CURSOR_PATH: &str = "/lattice/cursor.ckpt";

/// Shape of one crash-lattice sweep.
#[derive(Debug, Clone, Copy)]
pub struct LatticeConfig {
    /// Seed for both the kill-point sampling and every per-point VFS.
    pub seed: u64,
    /// Number of randomized kill points (the lattice size).
    pub points: usize,
    /// Byte budget handed to the resilient ingest driver.
    pub budget_bytes: usize,
    /// Segment rotation threshold — small values put rotation boundaries
    /// inside the lattice so kills land on them too.
    pub max_segment_bytes: u64,
    /// Optional transient short-write rate (one in N), layered on top of
    /// the kills after the first crash recovery.
    pub transient_write_one_in: Option<u64>,
    /// Optional transient fsync-failure rate (one in N).
    pub transient_sync_one_in: Option<u64>,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig {
            seed: 0x1CDE_2013,
            points: 200,
            // Small batches and segments pack the op schedule with batch
            // boundaries and rotations, so random kill points land on the
            // interesting transitions too.
            budget_bytes: 1 << 10,
            max_segment_bytes: 512,
            transient_write_one_in: None,
            transient_sync_one_in: None,
        }
    }
}

/// What one [`crash_lattice`] sweep observed.
#[derive(Debug, Clone, Default)]
pub struct LatticeOutcome {
    /// Kill points exercised.
    pub points: usize,
    /// Points where the kill actually fired mid-run (the rest landed past
    /// the workload's final operation and completed untouched).
    pub kills_fired: usize,
    /// Total incarnations across all points (≥ one per point).
    pub incarnations: usize,
    /// Incarnations restarted because of an injected *transient* fault
    /// rather than a kill.
    pub transient_restarts: usize,
    /// Human-readable descriptions of every broken invariant; empty means
    /// the sweep held.
    pub violations: Vec<String>,
}

impl LatticeOutcome {
    /// Whether every kill point recovered byte-identically.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A small deterministic gather/scatter workload for sweeps: `objects`
/// objects gather for six ticks and scatter for three, repeatedly, so
/// crowds keep finalizing mid-stream and the store sees a steady append
/// schedule.
#[must_use]
pub fn sweep_workload(objects: u32, duration: u32) -> (GatheringConfig, Vec<SnapshotClusterSet>) {
    let config = GatheringConfig::builder()
        .clustering(ClusteringParams::new(60.0, 3))
        .crowd(CrowdParams::new(3, 4, 100.0))
        .gathering(GatheringParams::new(3, 3))
        .build()
        .expect("sweep workload config is valid");
    let db = TrajectoryDatabase::from_trajectories((0..objects).map(|i| {
        Trajectory::from_points(
            ObjectId::new(i),
            (0..duration)
                .map(|t| {
                    let x = if t % 9 < 6 {
                        f64::from(i) * 10.0 + f64::from(t / 9) * 700.0
                    } else {
                        f64::from(i) * 50_000.0 + f64::from(t)
                    };
                    (t, (x, 0.0))
                })
                .collect::<Vec<_>>(),
        )
    }));
    let sets = ClusterDatabase::build(&db, &config.clustering).into_sets();
    (config, sets)
}

/// What a completed incarnation chain ends with.
struct CompletedRun {
    /// The final incarnation's engine (holds the un-archived frontier).
    engine: GatheringEngine,
    /// The final incarnation's open store.
    store: PatternStore,
    /// Incarnations it took (≥ 1).
    incarnations: usize,
    /// Incarnations restarted by an injected transient fault (not a kill).
    transient_restarts: usize,
}

/// Runs one complete incarnation chain (resume-until-done) on `vfs`.
fn run_to_completion(
    vfs: &FaultVfs,
    config: &GatheringConfig,
    sets: &[SnapshotClusterSet],
    budget_bytes: usize,
    max_segment_bytes: u64,
) -> Result<CompletedRun, String> {
    // Far above anything a healthy schedule needs: a single kill costs one
    // extra incarnation, and transient rates are well below 1-in-2.
    const MAX_INCARNATIONS: usize = 64;
    let mut incarnations = 0usize;
    let mut transient_restarts = 0usize;
    loop {
        incarnations += 1;
        if incarnations > MAX_INCARNATIONS {
            return Err(format!(
                "no incarnation out of {MAX_INCARNATIONS} completed; the schedule livelocked"
            ));
        }
        match run_incarnation(vfs, config, sets, budget_bytes, max_segment_bytes) {
            Ok((engine, store)) => {
                return Ok(CompletedRun {
                    engine,
                    store,
                    incarnations,
                    transient_restarts,
                })
            }
            Err(err) => {
                if vfs.killed() {
                    // The planned crash: reboot and resume from the cursor.
                    vfs.crash_recover();
                } else if err.is_transient() {
                    // An injected short write / failed fsync surfaced to the
                    // driver; a supervisor would restart it from the cursor.
                    transient_restarts += 1;
                } else {
                    return Err(format!("fatal error while recovering: {err}"));
                }
            }
        }
    }
}

/// One incarnation: load the cursor, open the store, resume the resilient
/// ingest, persist a fresh cursor after every batch.
fn run_incarnation(
    vfs: &FaultVfs,
    config: &GatheringConfig,
    sets: &[SnapshotClusterSet],
    budget_bytes: usize,
    max_segment_bytes: u64,
) -> Result<(GatheringEngine, PatternStore), StoreError> {
    let cursor = read_file_opt(vfs, Path::new(CURSOR_PATH))?.and_then(|b| {
        // The cursor is written atomically, so a decodable-but-short file
        // cannot occur; `None` only ever means "no cursor yet".
        ResilientCursor::from_slice(&b)
    });
    let (mut engine, start_batch, produced) = match &cursor {
        Some(c) => {
            let engine = restore_from_slice(&c.engine)
                .map_err(|_| StoreError::InvalidRecord("corrupt resilient cursor"))?
                .with_retention(RetentionPolicy::Bounded);
            (engine, c.next_batch as usize, c.produced as usize)
        }
        None => (
            GatheringEngine::new(*config).with_retention(RetentionPolicy::Bounded),
            0,
            0,
        ),
    };
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let mut store = PatternStore::open_at(
        arc,
        PathBuf::from(STORE_DIR),
        StoreOptions {
            max_segment_bytes,
            // Only when the resume point predates the first acknowledged
            // record is "the log decoded to nothing" a legitimate crash
            // outcome rather than corruption.
            allow_empty_salvage: produced == 0,
        },
    )?;
    ingest_resilient(
        &mut engine,
        sets,
        budget_bytes,
        &mut store,
        start_batch,
        produced,
        |c| {
            write_file_atomic(vfs, Path::new(CURSOR_PATH), &c.to_vec())?;
            Ok(())
        },
    )?;
    Ok((engine, store))
}

/// Sorted `(file name, bytes)` snapshot of every store segment in the VFS.
fn segment_bytes(vfs: &FaultVfs) -> Vec<(String, Vec<u8>)> {
    let dir = PathBuf::from(STORE_DIR);
    let mut names = vfs.list_dir(&dir).unwrap_or_default();
    names.retain(|n| n.starts_with("seg-"));
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let bytes = vfs.read_file(&dir.join(&n)).unwrap_or_default();
            (n, bytes)
        })
        .collect()
}

/// Runs the workload once on a fault-free VFS; returns the segment-file
/// snapshot (the byte-identical target) and the total number of mutating
/// VFS operations (the kill-lattice extent).
#[must_use]
pub fn reference_run(
    config: &GatheringConfig,
    sets: &[SnapshotClusterSet],
    budget_bytes: usize,
    max_segment_bytes: u64,
) -> (Vec<(String, Vec<u8>)>, u64) {
    let vfs = FaultVfs::new(0);
    let _ = run_incarnation(&vfs, config, sets, budget_bytes, max_segment_bytes)
        .expect("reference run on a fault-free vfs cannot fail");
    (segment_bytes(&vfs), vfs.ops())
}

/// Mines `sets` to completion under a rolling fault schedule: an early
/// guaranteed kill, a repeating kill every `kill_every` operations after
/// each recovery, and a sprinkle of transient short writes and fsync
/// failures — then archives the surviving engine's closed frontier exactly
/// like a healthy shutdown would.
///
/// Returns the final records plus `(incarnations, transient_restarts)` so
/// callers can log how rough the ride was.  Because every recovery is
/// byte-identical, the records equal a fault-free run's; `fig5` uses this
/// to produce the *same* BENCH JSON with `GPDT_FAULT_SEED` set.
///
/// # Panics
///
/// Panics if the schedule cannot complete (a durability bug — exactly what
/// the CI smoke wants to catch loudly).
#[must_use]
pub fn mine_under_faults(
    seed: u64,
    config: &GatheringConfig,
    sets: &[SnapshotClusterSet],
    budget_bytes: usize,
) -> (Vec<gpdt_store::PatternRecord>, usize, usize) {
    let vfs = FaultVfs::with_plan(
        seed,
        FaultPlan {
            // Early enough to land mid-run on any non-trivial workload;
            // the re-armed kill is generous so even a huge batch (whose
            // appends + sync + cursor write all count) can finish between
            // crashes instead of livelocking.
            kill_at: Some(50),
            kill_every: Some(20_000),
            transient_write_one_in: Some(101),
            transient_sync_one_in: Some(97),
            capacity: None,
        },
    );
    let done = run_to_completion(&vfs, config, sets, budget_bytes, 4 * 1024 * 1024)
        .expect("fault-injected mining must recover to completion");
    let CompletedRun {
        engine,
        mut store,
        incarnations,
        transient_restarts,
    } = done;
    // The stream is over; archive the frontier the way a clean shutdown
    // does.  The weather clears first: the archive loop appends without a
    // verify-and-skip overlap check, so restarting it mid-way would
    // duplicate records — faults stop at the resilient-ingest boundary.
    vfs.clear_faults();
    store
        .archive_closed_frontier(&engine)
        .expect("archiving on a fault-free vfs cannot fail");
    (store.records().to_vec(), incarnations, transient_restarts)
}

/// Runs the full crash lattice: for each of `cfg.points` seeded kill
/// points, crash + recover until completion and compare the surviving
/// store against the fault-free reference byte for byte.
#[must_use]
pub fn crash_lattice(
    cfg: &LatticeConfig,
    config: &GatheringConfig,
    sets: &[SnapshotClusterSet],
) -> LatticeOutcome {
    let (want, total_ops) = reference_run(config, sets, cfg.budget_bytes, cfg.max_segment_bytes);
    assert!(total_ops > 0, "the workload must touch storage");

    let mut outcome = LatticeOutcome {
        points: cfg.points,
        ..LatticeOutcome::default()
    };
    let mut rng = cfg.seed | 1;
    for point in 0..cfg.points {
        // xorshift64; the first two points pin the lattice's edges.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let kill_at = match point {
            0 => 1,
            1 => total_ops,
            _ => 1 + rng % total_ops,
        };
        let vfs = FaultVfs::with_plan(
            cfg.seed ^ kill_at.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            FaultPlan {
                kill_at: Some(kill_at),
                transient_write_one_in: cfg.transient_write_one_in,
                transient_sync_one_in: cfg.transient_sync_one_in,
                ..FaultPlan::default()
            },
        );
        match run_to_completion(&vfs, config, sets, cfg.budget_bytes, cfg.max_segment_bytes) {
            Ok(done) => {
                drop((done.engine, done.store));
                outcome.incarnations += done.incarnations;
                outcome.transient_restarts += done.transient_restarts;
                if done.incarnations > 1 || vfs.killed() {
                    outcome.kills_fired += 1;
                }
                let got = segment_bytes(&vfs);
                if got != want {
                    outcome.violations.push(format!(
                        "kill point {kill_at}/{total_ops}: recovered store differs from the \
                         uninterrupted run ({} vs {} segments)",
                        got.len(),
                        want.len()
                    ));
                }
            }
            Err(why) => outcome
                .violations
                .push(format!("kill point {kill_at}/{total_ops}: {why}")),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_run_is_deterministic() {
        let (config, sets) = sweep_workload(6, 90);
        let (a, ops_a) = reference_run(&config, &sets, 2 << 10, 512);
        let (b, ops_b) = reference_run(&config, &sets, 2 << 10, 512);
        assert_eq!(ops_a, ops_b);
        assert_eq!(a, b);
        assert!(
            a.len() > 1,
            "a 512-byte rotation threshold must produce several segments"
        );
    }

    #[test]
    fn small_lattice_recovers_byte_identically() {
        // The full ≥200-point lattice lives in `tests/fault_recovery.rs`;
        // this keeps a fast tripwire next to the harness itself.
        let (config, sets) = sweep_workload(6, 90);
        let cfg = LatticeConfig {
            points: 16,
            budget_bytes: 2 << 10,
            ..LatticeConfig::default()
        };
        let outcome = crash_lattice(&cfg, &config, &sets);
        assert!(outcome.passed(), "violations: {:#?}", outcome.violations);
        assert!(outcome.kills_fired > 0, "some kills must actually fire");
    }

    #[test]
    fn fault_injected_mining_matches_clean_output() {
        let (config, sets) = sweep_workload(6, 90);
        let clean = FaultVfs::new(0);
        let (engine, mut store) =
            run_incarnation(&clean, &config, &sets, 2 << 10, 4 * 1024 * 1024).unwrap();
        store.archive_closed_frontier(&engine).unwrap();
        let want = store.records().to_vec();
        assert!(!want.is_empty());

        let (got, incarnations, _) = mine_under_faults(0xFA_017, &config, &sets, 2 << 10);
        assert!(incarnations > 1, "the early kill must fire");
        assert_eq!(got, want);
    }
}
