//! Measurement and plain-text table helpers for the figure binaries.

use std::time::{Duration, Instant};

/// Runs `f` once and returns its result together with the elapsed wall time.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// A small fixed-width text table, printed in the same row/series layout as
/// the paper's figures so the output can be compared against them directly.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to standard output.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_value_and_positive_time() {
        let (value, elapsed) = measure(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new("demo", &["x", "runtime (s)"]);
        t.add_row(vec!["5".into(), "0.123".into()]);
        t.add_row(vec!["100".into(), "1.5".into()]);
        assert_eq!(t.row_count(), 2);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("runtime (s)"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn secs_formats_milliseconds() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }
}
