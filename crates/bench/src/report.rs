//! Measurement, plain-text table and JSON-report helpers for the figure
//! binaries.
//!
//! Each `figN` binary prints its tables as text (for eyeballing against the
//! paper) and also serialises them to `BENCH_figN.json` via [`BenchReport`],
//! so the performance trajectory can be tracked across commits by machines
//! (CI uploads the JSON files as artifacts).

use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Runs `f` once and returns its result together with the elapsed wall time.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Measurement policy: an optional warmup run plus best-of-N timing.
///
/// A single cold run is noisy at the scaled-down sizes CI uses; a warmup run
/// populates caches/branch predictors and the minimum over `runs` repetitions
/// is the conventional low-noise estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureOpts {
    /// Number of timed runs; the fastest is reported.  Must be at least 1.
    pub runs: usize,
    /// Whether to run once, untimed, before the timed runs.
    pub warmup: bool,
}

impl Default for MeasureOpts {
    fn default() -> Self {
        MeasureOpts {
            runs: 1,
            warmup: false,
        }
    }
}

impl MeasureOpts {
    /// Reads the policy from the environment: `GPDT_BENCH_RUNS` (default 1)
    /// and `GPDT_BENCH_WARMUP` (`1`/`true`; defaults to on when more than one
    /// run is requested).  See [`crate::env`] for the full knob surface.
    pub fn from_env() -> Self {
        let runs = crate::env::runs();
        MeasureOpts {
            runs,
            warmup: crate::env::warmup(runs),
        }
    }
}

/// Runs `f` under the given policy and returns the last run's result together
/// with the *fastest* observed wall time.
pub fn measure_with<T>(opts: MeasureOpts, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(opts.runs >= 1, "at least one timed run is required");
    if opts.warmup {
        let _ = f();
    }
    let (mut value, mut best) = measure(&mut f);
    for _ in 1..opts.runs {
        let (v, d) = measure(&mut f);
        value = v;
        best = best.min(d);
    }
    (value, best)
}

/// A small fixed-width text table, printed in the same row/series layout as
/// the paper's figures so the output can be compared against them directly.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to standard output.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Serialises the table as a JSON object
    /// (`{"title": ..., "header": [...], "rows": [[...]]}`).
    pub fn to_json(&self) -> String {
        let header = self
            .header
            .iter()
            .map(|h| json_string(h))
            .collect::<Vec<_>>()
            .join(",");
        let rows = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    "[{}]",
                    row.iter()
                        .map(|c| json_string(c))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"title\":{},\"header\":[{}],\"rows\":[{}]}}",
            json_string(&self.title),
            header,
            rows
        )
    }
}

/// Machine-readable counterpart of one figure binary's text output.
///
/// Collects the binary's tables and writes them as `BENCH_<name>.json`,
/// annotated with the active `GPDT_SCALE`, so successive runs can be diffed
/// across commits.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    tables: Vec<Table>,
}

impl BenchReport {
    /// Creates an empty report for the figure `name` (e.g. `"fig5"`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// Prints a table to standard output and adds it to the report.
    pub fn print_and_add(&mut self, table: Table) {
        table.print();
        self.tables.push(table);
    }

    /// Adds a table to the report without printing it.
    pub fn add(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Serialises the whole report as one JSON object.
    pub fn to_json(&self) -> String {
        let tables = self
            .tables
            .iter()
            .map(Table::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"name\":{},\"gpdt_scale\":{},\"tables\":[{}]}}",
            json_string(&self.name),
            crate::scenarios::scale(),
            tables
        )
    }

    /// The destination path: `BENCH_<name>.json` inside `GPDT_BENCH_DIR`
    /// (default: the current directory).
    pub fn path(&self) -> PathBuf {
        crate::env::report_dir().join(format!("BENCH_{}.json", self.name))
    }

    /// Writes the report to [`Self::path`] and returns the path written.
    ///
    /// Creates `GPDT_BENCH_DIR` if it does not exist yet, so pointing a run
    /// at a fresh directory (as the CI `cmp` steps do) just works.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = self.path();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the report next to the text tables, logging the outcome instead
    /// of failing the run if the filesystem refuses (benchmark numbers were
    /// already printed).
    pub fn write_logged(&self) {
        match self.write() {
            Ok(path) => eprintln!("[{}] wrote {}", self.name, path.display()),
            Err(err) => eprintln!("[{}] could not write JSON report: {err}", self.name),
        }
    }
}

/// Writes the process-wide metrics-registry snapshot as the sidecar
/// `BENCH_<name>_obs.json` next to the regular report, so every figure run
/// leaves a per-stage latency/counter breakdown alongside its numbers.
///
/// A *separate* file, deliberately: CI byte-compares the primary
/// `BENCH_<name>.json` reports across runs (out-of-core vs in-memory,
/// SIMD on vs off, crash-kill vs clean), and per-stage timings would differ
/// on every run.  No-op (with a note) when `GPDT_OBS=off`.
pub fn write_obs_sidecar(name: &str) {
    // Flush the Chrome-trace span capture first (a no-op unless `GPDT_TRACE`
    // is set): the sidecar call marks the end of a fig run, which is exactly
    // when the timeline is complete.
    gpdt_obs::trace::dump_if_enabled();
    if !gpdt_obs::enabled() {
        eprintln!("[{name}] GPDT_OBS=off; skipping metrics sidecar");
        return;
    }
    let path = crate::env::report_dir().join(format!("BENCH_{name}_obs.json"));
    let json = gpdt_obs::registry().snapshot().to_json();
    match path
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .map_or(Ok(()), std::fs::create_dir_all)
        .and_then(|()| std::fs::write(&path, &json))
    {
        Ok(()) => eprintln!("[{name}] wrote {}", path.display()),
        Err(err) => eprintln!("[{name}] could not write metrics sidecar: {err}"),
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_value_and_positive_time() {
        let (value, elapsed) = measure(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn measure_with_runs_warmup_and_reports_best() {
        let mut calls = 0usize;
        let opts = MeasureOpts {
            runs: 3,
            warmup: true,
        };
        let (value, best) = measure_with(opts, || {
            calls += 1;
            calls
        });
        // One warmup + three timed runs; the value is from the last run.
        assert_eq!(calls, 4);
        assert_eq!(value, 4);
        assert!(best.as_nanos() > 0);
    }

    #[test]
    fn measure_opts_default_is_single_cold_run() {
        let opts = MeasureOpts::default();
        assert_eq!(opts.runs, 1);
        assert!(!opts.warmup);
        let mut calls = 0usize;
        let _ = measure_with(opts, || calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    #[should_panic(expected = "at least one timed run")]
    fn measure_with_rejects_zero_runs() {
        let _ = measure_with(
            MeasureOpts {
                runs: 0,
                warmup: false,
            },
            || (),
        );
    }

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new("demo", &["x", "runtime (s)"]);
        t.add_row(vec!["5".into(), "0.123".into()]);
        t.add_row(vec!["100".into(), "1.5".into()]);
        assert_eq!(t.row_count(), 2);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("runtime (s)"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn table_serialises_to_json() {
        let mut t = Table::new("demo \"quoted\"", &["x", "y"]);
        t.add_row(vec!["1".into(), "a\nb".into()]);
        assert_eq!(
            t.to_json(),
            "{\"title\":\"demo \\\"quoted\\\"\",\"header\":[\"x\",\"y\"],\
             \"rows\":[[\"1\",\"a\\nb\"]]}"
        );
    }

    #[test]
    fn report_collects_tables_and_writes_json() {
        let dir = std::env::temp_dir().join("gpdt_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Temp-scoped env var would race other tests; build the path by hand
        // instead and only test the serialisation + explicit write.
        let mut report = BenchReport::new("figtest");
        let mut t = Table::new("t1", &["a"]);
        t.add_row(vec!["1".into()]);
        report.add(t);
        let json = report.to_json();
        assert!(json.starts_with("{\"name\":\"figtest\",\"gpdt_scale\":"));
        assert!(json.contains("\"tables\":[{\"title\":\"t1\""));
        let path = dir.join("BENCH_figtest.json");
        std::fs::write(&path, &json).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
    }

    #[test]
    fn report_default_path_is_bench_name_json() {
        let report = BenchReport::new("fig9");
        assert!(report.path().to_string_lossy().ends_with("BENCH_fig9.json"));
    }

    #[test]
    fn secs_formats_milliseconds() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }
}
