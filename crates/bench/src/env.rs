//! The single home of every `GPDT_*` environment variable the benchmark
//! harness honours.
//!
//! Before this module existed each binary read its own ad-hoc variables and
//! scratch-directory conventions; everything now routes through here so the
//! full knob surface is discoverable in one place:
//!
//! | Variable | Read by | Meaning |
//! |---|---|---|
//! | `GPDT_SCALE` | [`scale`] | global size multiplier for scenario presets (positive float, default 1.0) |
//! | `GPDT_BENCH_RUNS` | [`runs`] | timed repetitions per measurement, best-of-N (default 1) |
//! | `GPDT_BENCH_WARMUP` | [`warmup`] | `1`/`true` forces a warmup run (default: on when `runs > 1`) |
//! | `GPDT_BENCH_DIR` | [`report_dir`] | directory receiving the `BENCH_*.json` reports (default: cwd) |
//! | `GPDT_SCRATCH_DIR` | [`scratch_dir`] | parent for throwaway on-disk state (stores, checkpoints); default: the system temp dir |

use std::path::PathBuf;

/// The global scale factor read from `GPDT_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("GPDT_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Timed repetitions per measurement from `GPDT_BENCH_RUNS` (default 1).
pub fn runs() -> usize {
    std::env::var("GPDT_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1)
}

/// Warmup policy from `GPDT_BENCH_WARMUP` (default: warm up iff more than
/// one timed run is requested).
pub fn warmup(runs: usize) -> bool {
    std::env::var("GPDT_BENCH_WARMUP")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(runs > 1)
}

/// The directory `BENCH_*.json` reports are written to: `GPDT_BENCH_DIR`,
/// defaulting to the current directory.
pub fn report_dir() -> PathBuf {
    std::env::var_os("GPDT_BENCH_DIR").map_or_else(PathBuf::new, PathBuf::from)
}

/// A fresh scratch directory for throwaway on-disk state (pattern stores,
/// checkpoints): `<GPDT_SCRATCH_DIR or system temp>/gpdt-<tag>-<pid>`.
///
/// The directory is *not* created — stores create their own — but any
/// previous leftover under the same name is removed, so crashed runs cannot
/// poison the next one.  Callers should remove it when done.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let base = std::env::var_os("GPDT_SCRATCH_DIR").map_or_else(std::env::temp_dir, PathBuf::from);
    let dir = base.join(format!("gpdt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_without_env() {
        // The test environment sets none of the variables.
        assert!(scale() > 0.0);
        assert!(runs() >= 1);
        assert!(warmup(2));
        assert!(!warmup(1));
        assert!(report_dir().as_os_str().is_empty() || report_dir().is_dir());
    }

    #[test]
    fn scratch_dir_is_unique_per_tag_and_clean() {
        let a = scratch_dir("env-test-a");
        let b = scratch_dir("env-test-b");
        assert_ne!(a, b);
        assert!(!a.exists(), "scratch dir must start clean");
        std::fs::create_dir_all(&a).unwrap();
        std::fs::write(a.join("junk"), b"x").unwrap();
        // Re-requesting the same tag wipes the leftover.
        let a2 = scratch_dir("env-test-a");
        assert_eq!(a, a2);
        assert!(!a2.exists());
    }
}
