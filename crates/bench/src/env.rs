//! The single home of every `GPDT_*` environment variable the benchmark
//! harness honours.
//!
//! Before this module existed each binary read its own ad-hoc variables and
//! scratch-directory conventions; everything now routes through here so the
//! full knob surface is discoverable in one place:
//!
//! | Variable | Read by | Meaning |
//! |---|---|---|
//! | `GPDT_SCALE` | [`scale`] | global size multiplier for scenario presets (positive float, default 1.0) |
//! | `GPDT_BENCH_RUNS` | [`runs`] | timed repetitions per measurement, best-of-N (default 1) |
//! | `GPDT_BENCH_WARMUP` | [`warmup`] | `1`/`true` forces a warmup run (default: on when `runs > 1`) |
//! | `GPDT_BENCH_DIR` | [`report_dir`] | directory receiving the `BENCH_*.json` reports (default: cwd) |
//! | `GPDT_SCRATCH_DIR` | [`scratch_dir`] | parent for throwaway on-disk state (stores, checkpoints); default: the system temp dir |
//! | `GPDT_MEM_BUDGET` | [`mem_budget`] | cluster-arena byte budget for out-of-core ingest, with optional `k`/`m`/`g` suffix (default: a conservative share of the machine's memory) |
//! | `GPDT_SIMD` | `gpdt_geo::simd::dispatch` | pins the geometry kernel level: `off`/`scalar`, `sse2`, `avx2`, or `auto` (default: best level the CPU supports; every level is bit-identical, so this only affects speed) |
//! | `GPDT_HAUSDORFF_CUTOFF` | `gpdt_geo::bucketed_pair_cutoff` | pins the brute→bucketed `hausdorff_within` crossover as a pair count (`0` = always bucketed; default: a one-shot timing probe on first use) |
//! | `GPDT_FAULT_SEED` | [`fault_seed`] | arms the fault-injection VFS in binaries that support it (`fig5`, `fault`) with this deterministic seed; unset = real filesystem, no faults |
//! | `GPDT_BACKOFF_BASE_MS` | `gpdt_store::SupervisorPolicy::from_env` | base retry backoff for transient store faults, in milliseconds (default 1) |
//! | `GPDT_BACKOFF_MAX_MS` | `gpdt_store::SupervisorPolicy::from_env` | backoff ceiling for transient store faults, in milliseconds (default 50) |
//! | `GPDT_BACKOFF_RETRIES` | `gpdt_store::SupervisorPolicy::from_env` | transient-fault retries before the monitor service degrades (default 4) |
//! | `GPDT_OBS` | `gpdt_obs::enabled` | observability gate: `off`/`0`/`false` disables the metrics registry, stage spans and flight recorder (default: on; telemetry never changes results — the fig5 byte-compare CI step holds the stack to that) |
//! | `GPDT_OBS_DUMP` | `gpdt_obs::dump_path` | destination of flight-recorder JSON dumps, written on panic, on degraded-mode entry and at the end of fault-injection runs (default: `gpdt-flightrec.json` under the system temp dir) |
//! | `GPDT_OBS_EVENTS` | `gpdt_obs::flight` | capacity of the global flight-recorder ring (default 1024); evictions are reported as `dropped` in every dump and on `/flightrec` |
//! | `GPDT_METRICS_ADDR` | `gpdt_obs::telemetry_from_env` | binds the live telemetry endpoint (`/metrics` Prometheus exposition, `/health` JSON, `/flightrec`) on `host:port` (port `0` = OS-assigned) and implies the sampler; unset = no listener (the default) |
//! | `GPDT_OBS_SAMPLE_MS` | `gpdt_obs::sample_interval_from_env` | cadence of the windowed time-series sampler in milliseconds (default 250); setting it starts the sampler + SLO watchdog even without an endpoint |
//! | `GPDT_TRACE` | `gpdt_obs::trace` | writes every `span!` as a Chrome trace-event (`chrome://tracing` / Perfetto) to this path at the end of fig-bin runs; unset = no capture |
//! | `GPDT_SLO_STALL_MS` | `gpdt_obs::Watchdog::from_env` | ingest-stall watchdog threshold: fires when `service.batches` stops moving for this long (default 30000; `0` disables) |
//! | `GPDT_SLO_FSYNC_P99_MS` | `gpdt_obs::Watchdog::from_env` | fsync-latency watchdog threshold: fires when `vfs.fsync.nanos` p99 over the last 10s exceeds this (default 2000; `0` disables) |
//! | `GPDT_SLO_DEGRADED_MS` | `gpdt_obs::Watchdog::from_env` | degraded-dwell watchdog threshold: fires when the service sits degraded longer than this (default 10000; `0` disables) |

use std::path::PathBuf;

/// The global scale factor read from `GPDT_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("GPDT_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Timed repetitions per measurement from `GPDT_BENCH_RUNS` (default 1).
pub fn runs() -> usize {
    std::env::var("GPDT_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(1)
}

/// Warmup policy from `GPDT_BENCH_WARMUP` (default: warm up iff more than
/// one timed run is requested).
pub fn warmup(runs: usize) -> bool {
    std::env::var("GPDT_BENCH_WARMUP")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(runs > 1)
}

/// The directory `BENCH_*.json` reports are written to: `GPDT_BENCH_DIR`,
/// defaulting to the current directory.
pub fn report_dir() -> PathBuf {
    std::env::var_os("GPDT_BENCH_DIR").map_or_else(PathBuf::new, PathBuf::from)
}

/// A fresh scratch directory for throwaway on-disk state (pattern stores,
/// checkpoints): `<GPDT_SCRATCH_DIR or system temp>/gpdt-<tag>-<pid>`.
///
/// The directory is *not* created — stores create their own — but any
/// previous leftover under the same name is removed, so crashed runs cannot
/// poison the next one.  Callers should remove it when done.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let base = std::env::var_os("GPDT_SCRATCH_DIR").map_or_else(std::env::temp_dir, PathBuf::from);
    let dir = base.join(format!("gpdt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The cluster-arena memory budget from `GPDT_MEM_BUDGET` (bytes, optional
/// case-insensitive `k`/`m`/`g` binary suffix; e.g. `256m`).
///
/// Unset or unparsable values fall back to [`default_mem_budget`], matching
/// the other variables' parse-failure behaviour.
pub fn mem_budget() -> usize {
    std::env::var("GPDT_MEM_BUDGET")
        .ok()
        .and_then(|v| parse_bytes(&v))
        .filter(|&b| b > 0)
        .unwrap_or_else(default_mem_budget)
}

/// The fault-injection seed from `GPDT_FAULT_SEED`, or `None` when unset
/// or unparsable (the default: run on the real filesystem, no faults).
///
/// Binaries that support fault injection (`fig5`, `fault`) use this seed to
/// build a deterministic [`gpdt_store::FaultVfs`] plan, so a failing sweep
/// is reproducible by exporting the same seed.
pub fn fault_seed() -> Option<u64> {
    std::env::var("GPDT_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

/// Parses a byte count with an optional binary suffix (`k`, `m`, `g`).
fn parse_bytes(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, unit) = match t.as_bytes().last()? {
        b'k' | b'K' => (&t[..t.len() - 1], 1usize << 10),
        b'm' | b'M' => (&t[..t.len() - 1], 1 << 20),
        b'g' | b'G' => (&t[..t.len() - 1], 1 << 30),
        _ => (t, 1),
    };
    digits.trim().parse::<usize>().ok()?.checked_mul(unit)
}

/// The conservative default budget when `GPDT_MEM_BUDGET` is unset: a
/// quarter of the machine's available memory (total memory when
/// availability is not reported), clamped to [64 MiB, 4 GiB]; 512 MiB when
/// `/proc/meminfo` is unreadable (non-Linux hosts, locked-down containers).
///
/// The budget covers the dominant allocation — the per-tick cluster arenas —
/// not the whole process, hence the conservative quarter.
pub fn default_mem_budget() -> usize {
    const MIN: usize = 64 << 20;
    const MAX: usize = 4 << 30;
    const FALLBACK: usize = 512 << 20;
    meminfo_kib()
        .map_or(FALLBACK, |kib| (kib.saturating_mul(1024)) / 4)
        .clamp(MIN, MAX)
}

/// Reads `MemAvailable` (preferring it) or `MemTotal` from `/proc/meminfo`,
/// in KiB.
fn meminfo_kib() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    let field = |key: &str| {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    field("MemAvailable:").or_else(|| field("MemTotal:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_without_env() {
        // The test environment sets none of the variables.
        assert!(scale() > 0.0);
        assert!(runs() >= 1);
        assert!(warmup(2));
        assert!(!warmup(1));
        assert!(report_dir().as_os_str().is_empty() || report_dir().is_dir());
        assert!(mem_budget() >= 64 << 20);
        assert_eq!(fault_seed(), None);
    }

    #[test]
    fn byte_sizes_parse_with_and_without_suffix() {
        assert_eq!(parse_bytes("1048576"), Some(1 << 20));
        assert_eq!(parse_bytes("16k"), Some(16 << 10));
        assert_eq!(parse_bytes("256M"), Some(256 << 20));
        assert_eq!(parse_bytes(" 2 g "), Some(2 << 30));
        assert_eq!(parse_bytes("garbage"), None);
        assert_eq!(parse_bytes("-1m"), None);
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("99999999999999999999g"), None);
    }

    #[test]
    fn scratch_dir_is_unique_per_tag_and_clean() {
        let a = scratch_dir("env-test-a");
        let b = scratch_dir("env-test-b");
        assert_ne!(a, b);
        assert!(!a.exists(), "scratch dir must start clean");
        std::fs::create_dir_all(&a).unwrap();
        std::fs::write(a.join("junk"), b"x").unwrap();
        // Re-requesting the same tag wipes the leftover.
        let a2 = scratch_dir("env-test-a");
        assert_eq!(a, a2);
        assert!(!a2.exists());
    }
}
