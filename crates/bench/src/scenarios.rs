//! Scaled-down scenario presets shared by the figure binaries and the
//! Criterion benches.
//!
//! The paper's efficiency experiments use 10 000–30 000 taxis over a full day
//! (1 440 minutes).  Re-running at that scale is unnecessary to reproduce the
//! *shape* of the figures, so the presets here default to a few hundred taxis
//! over a few hours and honour the `GPDT_SCALE` environment variable (a
//! positive float) for users who want to push the sizes up or down.

use gpdt_clustering::{ClusterDatabase, ClusteringParams};
use gpdt_workload::{generate_scenario, ScenarioConfig, Weather};

/// A generated scenario together with its snapshot-cluster database.
#[derive(Debug, Clone)]
pub struct ClusteredScenario {
    /// The scenario (trajectories plus planted-event ground truth).
    pub scenario: gpdt_workload::GeneratedScenario,
    /// The snapshot clusters of the scenario under `clustering`.
    pub clusters: ClusterDatabase,
    /// The clustering parameters used.
    pub clustering: ClusteringParams,
}

/// The global scale factor read from `GPDT_SCALE` (default 1.0); see
/// [`crate::env`].
pub fn scale() -> f64 {
    crate::env::scale()
}

/// Applies the global scale factor to a count.
pub fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).round().max(1.0) as usize
}

/// Generates an efficiency-experiment scenario (Figure 6/8 style) and
/// clusters it with the paper's DBSCAN setting.
pub fn clustered_scenario(seed: u64, num_taxis: usize, duration: u32) -> ClusteredScenario {
    let config = ScenarioConfig::efficiency_slice(seed, num_taxis, duration);
    let scenario = generate_scenario(&config);
    let clustering = ClusteringParams::new(200.0, 5);
    let clusters = ClusterDatabase::build(&scenario.database, &clustering);
    ClusteredScenario {
        scenario,
        clusters,
        clustering,
    }
}

/// Generates a (scaled) single synthetic day for the effectiveness study
/// (Figure 5) and clusters it.
pub fn clustered_day(
    seed: u64,
    weather: Weather,
    num_taxis: usize,
    duration: u32,
) -> ClusteredScenario {
    let config = ScenarioConfig {
        num_taxis,
        duration,
        ..ScenarioConfig::single_day(seed, weather)
    };
    let scenario = generate_scenario(&config);
    let clustering = ClusteringParams::new(200.0, 5);
    let clusters = ClusterDatabase::build(&scenario.database, &clustering);
    ClusteredScenario {
        scenario,
        clusters,
        clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // The test environment does not set GPDT_SCALE.
        assert_eq!(scaled(100), (100.0 * scale()).round() as usize);
        assert!(scale() > 0.0);
    }

    #[test]
    fn clustered_scenario_produces_clusters() {
        let cs = clustered_scenario(5, 150, 40);
        assert_eq!(cs.clusters.len(), 40);
        assert_eq!(cs.scenario.database.len(), 150);
        // The clustering parameters are the paper's preprocessing setting.
        assert_eq!(cs.clustering, ClusteringParams::new(200.0, 5));
    }
}
