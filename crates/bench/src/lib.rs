//! Benchmark and figure-regeneration harness.
//!
//! Every experiment figure of the paper's evaluation (§IV) has a binary in
//! `src/bin/` that regenerates the corresponding table of numbers:
//!
//! | Paper figure | Binary | What it prints |
//! |---|---|---|
//! | Fig 5a/5b | `fig5` | pattern counts per time-of-day regime and weather |
//! | Fig 6a/6b/6c | `fig6` | crowd-discovery runtime for SR/IR/GRID vs `mc`, `δ`, `|ODB|` |
//! | Fig 7a/7b/7c | `fig7` | gathering-detection runtime for brute-force/TAD/TAD\* vs `mp`, `kp`, `Cr.τ` |
//! | Fig 8a/8b | `fig8` | incremental vs re-computation runtimes |
//!
//! Criterion micro-benchmarks for the underlying kernels live in `benches/`.
//!
//! The library part of this crate holds the pieces the binaries and benches
//! share: deterministic synthetic-crowd construction ([`synth`]), scaled-down
//! scenario presets ([`scenarios`]) and measurement/table helpers
//! ([`report`]).

pub mod env;
pub mod fault_sweep;
pub mod out_of_core;
pub mod report;
pub mod scenarios;
pub mod synth;

pub use fault_sweep::{crash_lattice, LatticeConfig, LatticeOutcome};
pub use out_of_core::{ingest_bounded, ingest_resilient, OutOfCoreReport, ResilientCursor};
pub use report::{measure, measure_with, BenchReport, MeasureOpts, Table};
pub use scenarios::{clustered_scenario, ClusteredScenario};
pub use synth::{synthetic_crowd, SyntheticCrowdSpec};
