//! Deterministic synthetic crowds with controlled structure.
//!
//! The paper's Figure 7 measures gathering detection on "1000 closed crowds
//! randomly selected" from the taxi dataset, varying the crowd length and the
//! detection thresholds.  To sweep those axes reproducibly we build crowds
//! directly: a configurable number of *dedicated* objects that appear in most
//! clusters (future participators), a pool of *churn* objects that appear in
//! just a few, and occasional low-support clusters that become invalid and
//! force Test-and-Divide to recurse.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gpdt_clustering::{ClusterDatabase, ClusterId, SnapshotCluster, SnapshotClusterSet};
use gpdt_core::Crowd;
use gpdt_geo::Point;
use gpdt_trajectory::ObjectId;

/// Shape parameters of a synthetic crowd.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticCrowdSpec {
    /// Random seed.
    pub seed: u64,
    /// Number of snapshot clusters (the crowd lifetime `Cr.τ`).
    pub length: usize,
    /// Number of dedicated objects (candidate participators).
    pub dedicated: usize,
    /// Probability that a dedicated object appears in any given cluster.
    pub dedication: f64,
    /// Number of churn objects sampled per cluster (each churn object is
    /// unique to a handful of clusters).
    pub churn_per_cluster: usize,
    /// Probability that a cluster is "disrupted": most dedicated objects are
    /// absent, which typically makes the cluster invalid and forces TAD to
    /// divide there.
    pub disruption: f64,
}

impl SyntheticCrowdSpec {
    /// A reasonable default shape resembling a traffic-jam crowd.
    pub fn jam_like(seed: u64, length: usize) -> Self {
        SyntheticCrowdSpec {
            seed,
            length,
            dedicated: 18,
            dedication: 0.9,
            churn_per_cluster: 8,
            disruption: 0.08,
        }
    }
}

/// Builds the cluster database and the crowd described by `spec`.
///
/// The produced database has exactly one cluster per tick (`0..length`), all
/// centred on the same location so any reasonable `δ` accepts the sequence as
/// a crowd; the interesting structure is in the membership.
pub fn synthetic_crowd(spec: &SyntheticCrowdSpec) -> (ClusterDatabase, Crowd) {
    assert!(spec.length >= 1, "a crowd needs at least one cluster");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut next_churn_id = 10_000u32;
    let mut sets = Vec::with_capacity(spec.length);
    for t in 0..spec.length as u32 {
        let disrupted = rng.gen::<f64>() < spec.disruption;
        let mut members: Vec<ObjectId> = Vec::new();
        for d in 0..spec.dedicated as u32 {
            let present = if disrupted {
                rng.gen::<f64>() < 0.1
            } else {
                rng.gen::<f64>() < spec.dedication
            };
            if present {
                members.push(ObjectId::new(d));
            }
        }
        for _ in 0..spec.churn_per_cluster {
            members.push(ObjectId::new(next_churn_id));
            next_churn_id += 1;
        }
        if members.is_empty() {
            members.push(ObjectId::new(next_churn_id));
            next_churn_id += 1;
        }
        let points: Vec<Point> = members
            .iter()
            .enumerate()
            .map(|(k, _)| Point::new(k as f64 * 2.0, (k % 5) as f64 * 2.0))
            .collect();
        sets.push(SnapshotClusterSet {
            time: t,
            clusters: vec![SnapshotCluster::new(t, members, points)],
        });
    }
    let cdb = ClusterDatabase::from_sets(sets);
    let crowd = Crowd::new(
        (0..spec.length as u32)
            .map(|t| ClusterId::new(t, 0))
            .collect(),
    );
    (cdb, crowd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_core::{detect_closed_gatherings, GatheringParams, TadVariant};

    #[test]
    fn spec_produces_requested_length() {
        let spec = SyntheticCrowdSpec::jam_like(1, 40);
        let (cdb, crowd) = synthetic_crowd(&spec);
        assert_eq!(cdb.len(), 40);
        assert_eq!(crowd.len(), 40);
        assert_eq!(cdb.total_clusters(), 40);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticCrowdSpec::jam_like(7, 25);
        let (a, _) = synthetic_crowd(&spec);
        let (b, _) = synthetic_crowd(&spec);
        for (sa, sb) in a.iter().zip(b.iter()) {
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn jam_like_crowds_contain_gatherings() {
        let spec = SyntheticCrowdSpec::jam_like(3, 35);
        let (cdb, crowd) = synthetic_crowd(&spec);
        let gatherings = detect_closed_gatherings(
            &crowd,
            &cdb,
            &GatheringParams::new(8, 10),
            15,
            TadVariant::TadStar,
        );
        assert!(!gatherings.is_empty());
    }

    #[test]
    fn variants_agree_on_synthetic_crowds() {
        for seed in 0..5 {
            let spec = SyntheticCrowdSpec {
                seed,
                length: 30,
                dedicated: 12,
                dedication: 0.85,
                churn_per_cluster: 5,
                disruption: 0.15,
            };
            let (cdb, crowd) = synthetic_crowd(&spec);
            let params = GatheringParams::new(6, 8);
            let tad = detect_closed_gatherings(&crowd, &cdb, &params, 10, TadVariant::Tad);
            let star = detect_closed_gatherings(&crowd, &cdb, &params, 10, TadVariant::TadStar);
            let brute = detect_closed_gatherings(&crowd, &cdb, &params, 10, TadVariant::BruteForce);
            assert_eq!(tad, star, "seed {seed}");
            assert_eq!(tad, brute, "seed {seed}");
        }
    }
}
