//! Out-of-core ingest: stream snapshot-cluster history through a
//! bounded-retention engine in budget-sized batches.
//!
//! The full-history pipeline keeps every tick's cluster arenas resident for
//! the whole run, which caps the workload size at whatever fits in RAM.
//! [`ingest_bounded`] instead
//!
//! 1. slices the incoming cluster sets into batches whose shared column
//!    arenas fit a fraction of the byte budget (see
//!    [`crate::env::mem_budget`]),
//! 2. runs the engine under [`RetentionPolicy::Bounded`](gpdt_core::RetentionPolicy) so ticks no future
//!    discovery step can touch are evicted between batches, and
//! 3. spills each batch's freshly finalized crowd records into a durable
//!    [`PatternStore`] *before* the eviction that would make their cluster
//!    references unresolvable, then drains them from the engine
//!    ([`GatheringEngine::drain_finalized`]) so the record history stops
//!    accumulating in RAM too.
//!
//! Discovery output is identical to a single-batch run: the engine's
//! resumed sweep is exact under any batch slicing, and the spilled records
//! plus the engine's final frontier together are exactly the single-batch
//! engine's closed crowds and gatherings.
//!
//! The *peak* of resident arena bytes still depends on the data, not only on
//! the budget: eviction cannot release ticks an open crowd still references,
//! so a crowd spanning the entire stream pins the entire stream.  Workloads
//! with finite crowd lifetimes (any realistic one) stay near the budget.

use std::io;

use gpdt_clustering::{ClusterDatabase, SnapshotClusterSet};
use gpdt_core::GatheringEngine;
use gpdt_store::PatternStore;

/// What one [`ingest_bounded`] run did, for logging and regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfCoreReport {
    /// The byte budget the batches were sized against.
    pub budget_bytes: usize,
    /// Number of ingest batches the stream was sliced into.
    pub batches: usize,
    /// Largest engine-resident cluster-arena footprint observed, measured
    /// right after each ingest (before the post-spill eviction).
    pub peak_arena_bytes: usize,
    /// Finalized crowd records spilled to the store.
    pub spilled_records: usize,
}

/// Streams `sets` into `engine` in batches sized to `budget_bytes`,
/// spilling finalized records into `store` as they close.
///
/// The engine should be configured with
/// [`RetentionPolicy::Bounded`](gpdt_core::RetentionPolicy::Bounded);
/// without it the driver still produces correct output but nothing is ever
/// evicted, so memory stays unbounded.  The engine's remaining frontier is
/// *not* archived — call [`PatternStore::archive_closed_frontier`] after the
/// stream ends if the store should become a complete archive.
///
/// # Errors
///
/// Propagates store I/O errors; records appended before a failure stay
/// appended.
pub fn ingest_bounded<I>(
    engine: &mut GatheringEngine,
    sets: I,
    budget_bytes: usize,
    store: &mut PatternStore,
) -> io::Result<OutOfCoreReport>
where
    I: IntoIterator<Item = SnapshotClusterSet>,
{
    // A batch gets a quarter of the budget: the rest is headroom for the
    // retained window (the trailing `kc` ticks plus whatever the frontier
    // still references) that coexists with each incoming batch.
    let batch_budget = (budget_bytes / 4).max(1);
    let mut report = OutOfCoreReport {
        budget_bytes,
        batches: 0,
        peak_arena_bytes: 0,
        spilled_records: 0,
    };
    let mut batch: Vec<SnapshotClusterSet> = Vec::new();
    let mut batch_bytes = 0usize;
    for set in sets {
        // A batch always takes at least one set, so a single tick larger
        // than the budget degrades to tick-at-a-time ingest instead of
        // stalling.
        batch_bytes += set.arena_bytes();
        batch.push(set);
        if batch_bytes >= batch_budget {
            flush(engine, store, &mut batch, &mut report)?;
            batch_bytes = 0;
        }
    }
    flush(engine, store, &mut batch, &mut report)?;
    Ok(report)
}

/// Ingests one pending batch, spills what it finalized, then evicts.
fn flush(
    engine: &mut GatheringEngine,
    store: &mut PatternStore,
    batch: &mut Vec<SnapshotClusterSet>,
    report: &mut OutOfCoreReport,
) -> io::Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    engine.ingest_clusters(ClusterDatabase::from_sets(std::mem::take(batch)));
    report.batches += 1;
    report.peak_arena_bytes = report
        .peak_arena_bytes
        .max(engine.cluster_database().arena_bytes());
    // Spill while the records' clusters are still resident: the engine's
    // deferred eviction has not run since these crowds closed.
    for record in engine.drain_finalized() {
        store.append_crowd_record(&record, engine.cluster_database())?;
        report.spilled_records += 1;
    }
    // The spilled records no longer pin history; reclaim eagerly instead of
    // waiting for the next ingest's deferred eviction.
    engine.evict_retired_clusters();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpdt_core::{
        ClusteringParams, CrowdParams, GatheringConfig, GatheringParams, RetentionPolicy,
    };
    use gpdt_trajectory::{ObjectId, Trajectory, TrajectoryDatabase};

    fn config() -> GatheringConfig {
        GatheringConfig::builder()
            .clustering(ClusteringParams::new(60.0, 3))
            .crowd(CrowdParams::new(3, 4, 100.0))
            .gathering(GatheringParams::new(3, 3))
            .build()
            .unwrap()
    }

    /// Objects that repeatedly gather for six ticks and scatter for three:
    /// crowds have finite lifetimes, so bounded retention actually evicts.
    fn gather_scatter_cdb(objects: u32, duration: u32) -> ClusterDatabase {
        let db = TrajectoryDatabase::from_trajectories((0..objects).map(|i| {
            Trajectory::from_points(
                ObjectId::new(i),
                (0..duration)
                    .map(|t| {
                        let x = if t % 9 < 6 {
                            f64::from(i) * 10.0 + f64::from(t / 9) * 700.0
                        } else {
                            f64::from(i) * 50_000.0 + f64::from(t)
                        };
                        (t, (x, 0.0))
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        ClusterDatabase::build(&db, &config().clustering)
    }

    #[test]
    fn bounded_ingest_matches_single_batch_output() {
        let cdb = gather_scatter_cdb(5, 45);

        let mut reference = GatheringEngine::new(config());
        reference.ingest_clusters(cdb.clone());
        let want_crowds = reference.closed_crowds();
        let want_gatherings = reference.gatherings();
        assert!(!want_crowds.is_empty(), "scenario must produce crowds");

        let dir = crate::env::scratch_dir("ooc-match");
        let mut store = PatternStore::open(&dir).unwrap();
        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        let report = ingest_bounded(&mut engine, cdb.into_sets(), 4 << 10, &mut store).unwrap();
        store.archive_closed_frontier(&engine).unwrap();

        assert!(report.batches > 1, "a 4 KiB budget must force batching");
        assert!(report.spilled_records > 0, "mid-stream crowds must spill");
        assert_eq!(store.len(), want_crowds.len());
        let mut got: Vec<_> = store.records().iter().map(|r| r.crowd.clone()).collect();
        got.sort_by(gpdt_core::canonical_crowd_order);
        assert_eq!(got, want_crowds);
        let stored_gatherings: usize = store.records().iter().map(|r| r.gatherings.len()).sum();
        assert_eq!(stored_gatherings, want_gatherings.len());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peak_arena_stays_under_budget() {
        let cdb = gather_scatter_cdb(6, 90);
        let full_bytes = cdb.arena_bytes();
        let budget = full_bytes / 4;

        let dir = crate::env::scratch_dir("ooc-budget");
        let mut store = PatternStore::open(&dir).unwrap();
        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        let report = ingest_bounded(&mut engine, cdb.into_sets(), budget, &mut store).unwrap();

        assert!(
            report.peak_arena_bytes <= budget,
            "peak {} exceeds budget {} (full history: {})",
            report.peak_arena_bytes,
            budget,
            full_bytes
        );
        assert!(report.peak_arena_bytes < full_bytes);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_survive_drained_engines() {
        // A drained, evicted engine is still valid checkpoint input (the
        // restore cross-checks tolerate missing pre-eviction history).
        use gpdt_store::EngineCheckpoint;
        let cdb = gather_scatter_cdb(5, 45);
        let dir = crate::env::scratch_dir("ooc-ckpt");
        let mut store = PatternStore::open(&dir).unwrap();
        let mut engine = GatheringEngine::new(config()).with_retention(RetentionPolicy::Bounded);
        ingest_bounded(&mut engine, cdb.into_sets(), 4 << 10, &mut store).unwrap();
        let bytes = gpdt_store::checkpoint_to_vec(&engine);
        let back = gpdt_store::restore_from_slice(&bytes).unwrap();
        assert_eq!(back.frontier(), engine.frontier());
        assert_eq!(
            bytes,
            {
                let mut again = Vec::new();
                back.checkpoint(&mut again).unwrap();
                again
            },
            "restore → checkpoint must be a fixed point"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
